#!/usr/bin/env python
"""Developing a new VNF: a custom Click element + a catalog entry.

The paper: "ESCAPE fosters VNF development by providing a simple,
Mininet-based API where service graphs, built from given VNFs, can be
instantiated and tested automatically."  The workflow here is what a
VNF developer would do:

1. write a new Click element in Python (a TTL-normalizing scrubber),
2. unit-test it standalone with a source/counter harness,
3. register a catalog entry wrapping it into a deployable VNF,
4. deploy it in a chain and watch its handlers.

Run:  python examples/vnf_development.py
"""

from repro.click import ClickPacket, Element, PUSH, Router, element_class
from repro.core import ESCAPE, CatalogEntry
from repro.core.sgfile import load_service_graph, load_topology
from repro.packet import IPv4


# -- step 1: the new element ------------------------------------------------

@element_class()
class TTLScrubber(Element):
    """``TTLScrubber(TTL)`` — normalize every IPv4 TTL to a fixed value.

    A privacy middlebox: uniform TTLs defeat OS fingerprinting and hop
    counting.  Handlers: ``scrubbed``, ``ttl`` (read), ``ttl`` (write).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name, config=""):
        super().__init__(name, config)
        self.ttl = 64
        self.scrubbed = 0
        self.add_read_handler("scrubbed", lambda: self.scrubbed)
        self.add_read_handler("ttl", lambda: self.ttl)
        self.add_write_handler("ttl", self._write_ttl)

    def _write_ttl(self, value):
        ttl = int(value)
        if not 1 <= ttl <= 255:
            raise ValueError("TTL out of range: %d" % ttl)
        self.ttl = ttl

    def configure(self, args, keywords):
        if len(args) > 1:
            raise ValueError("%s: at most one argument" % self.name)
        if args:
            self._write_ttl(args[0])

    def push(self, port, packet):
        eth = packet.eth()
        ip = eth.find(IPv4) if eth is not None else None
        if ip is not None and ip.ttl != self.ttl:
            ip.ttl = self.ttl
            packet.replace_header(eth)
            self.scrubbed += 1
        self.output_push(0, packet)


# -- step 2: standalone unit test --------------------------------------------

def test_standalone():
    from repro.packet import Ethernet, UDP
    router = Router.from_config(
        "Idle -> scrub :: TTLScrubber(42) -> out :: Counter -> Discard;")
    router.start()
    captured = []
    router.element("out").push = lambda port, pkt: captured.append(pkt)
    probe = ClickPacket.from_header(Ethernet(
        type=Ethernet.IP_TYPE,
        payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2", ttl=7,
                     protocol=IPv4.UDP_PROTOCOL, payload=UDP())))
    router.element("scrub").push(0, probe)
    assert captured[0].ip().ttl == 42, "scrubbing failed"
    assert router.read_handler("scrub.scrubbed") == "1"
    print("standalone test: TTL 7 -> %d, handlers OK"
          % captured[0].ip().ttl)


# -- steps 3+4: catalog entry and in-chain deployment --------------------------

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 2, "mem": 1024},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}


def main():
    test_standalone()

    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.catalog.register(CatalogEntry(
        "ttl_scrubber",
        "Normalize IPv4 TTLs to {ttl} (anti-fingerprinting).",
        "FromDevice(in0) -> cnt_in :: Counter"
        " -> scrub :: TTLScrubber({ttl})"
        " -> cnt_out :: Counter -> ToDevice(out0);",
        defaults={"ttl": "64"},
        cpu=0.2, mem=64.0,
        monitor_handlers=["cnt_in.count", "scrub.scrubbed"]))
    escape.start()

    chain = escape.deploy_service(load_service_graph({
        "name": "scrub-chain",
        "saps": ["h1", "h2"],
        "vnfs": [{"name": "scrub", "type": "ttl_scrubber",
                  "params": {"ttl": "99"}}],
        "chain": ["h1", "scrub", "h2"],
    }))

    h1, h2 = escape.net.get("h1"), escape.net.get("h2")
    result = h1.ping(h2.ip, count=5, interval=0.2)
    escape.run(3.0)
    print(result.summary())
    print("scrubbed in chain: %s packets"
          % chain.read_handler("scrub", "scrub.scrubbed"))

    # reconfigure the running VNF through its write handler (NETCONF)
    chain.write_handler("scrub", "scrub.ttl", "10")
    print("reconfigured TTL to %s at runtime"
          % chain.read_handler("scrub", "scrub.ttl"))
    chain.undeploy()


if __name__ == "__main__":
    main()
