#!/usr/bin/env python
"""Extending the Orchestrator with a custom mapping algorithm.

The paper: "a dedicated component maps abstract service graphs into
available resources based on different optimization algorithms (which
can be easily changed or customized)".  This example writes one — a
load-balancing mapper that always places on the least-utilized
container — plugs it into ESCAPE, and compares its placements with the
built-in strategies on a batch of chain requests.

Run:  python examples/custom_mapper.py
"""

from collections import Counter

from repro.core import ESCAPE, Mapper, Mapping, MappingError
from repro.core.mapping import GreedyMapper
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 8, "mem": 8192},
        {"name": "nc2", "role": "vnf_container", "cpu": 8, "mem": 8192},
        {"name": "nc3", "role": "vnf_container", "cpu": 8, "mem": 8192},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
    ] + [
        # plenty of interfaces per container, so placement is decided
        # by the mapper's policy rather than by port exhaustion
        {"from": "nc%d" % container, "to": "s1", "delay": 0.0005}
        for container in (1, 2, 3) for _ in range(20)
    ],
}


class LeastLoadedMapper(GreedyMapper):
    """Place every VNF on the container with the most free CPU.

    Subclassing GreedyMapper reuses its path routing and commit logic;
    only the container-choice policy changes — which is exactly the
    extension surface the Orchestrator exposes.
    """

    name = "least-loaded"

    def map(self, sg, view):
        sg.validate()
        mapping = Mapping(sg)
        trial = view.copy()
        reservations = []
        for vnf_name in sg.vnfs:
            cpu, mem, ports = self.demand_of(sg, vnf_name)
            candidates = [name for name in trial.containers()
                          if trial.container_fits(name, cpu, mem, ports)]
            if not candidates:
                raise MappingError("no container fits %r" % vnf_name)
            chosen = max(candidates, key=lambda name:
                         trial.graph.nodes[name]["cpu"]
                         - trial.graph.nodes[name]["cpu_used"])
            trial.reserve_container(chosen, cpu, mem, ports)
            mapping.vnf_placement[vnf_name] = chosen
            reservations.append((chosen, cpu, mem, ports))
        paths = self._route_links(sg, mapping, trial)
        self._commit(mapping, view, reservations, paths)
        return mapping


def chain_request(index):
    return load_service_graph({
        "name": "chain-%d" % index,
        "saps": ["h1", "h2"],
        "vnfs": [{"name": "fw%d" % index, "type": "firewall"}],
        "chain": ["h1", "fw%d" % index, "h2"],
    })


def main():
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    escape.add_mapper("least-loaded", LeastLoadedMapper(escape.catalog))

    print("deploying 9 single-VNF chains with each strategy:\n")
    for strategy in ("greedy", "least-loaded"):
        chains = []
        for index in range(9):
            chains.append(escape.deploy_service(chain_request(index),
                                                mapper=strategy))
        spread = Counter(next(iter(chain.mapping.vnf_placement.values()))
                         for chain in chains)
        print("%-14s placements: %s" % (strategy, dict(spread)))
        for chain in chains:
            chain.undeploy()

    print("\ngreedy packs the first container; least-loaded spreads "
          "evenly —\nthe policy is a ~20-line subclass.")


if __name__ == "__main__":
    main()
