#!/usr/bin/env python
"""A realistic multi-VNF web-service chain.

The scenario the paper's introduction motivates: client traffic to a
web service traverses firewall -> DPI -> rate-limiter before reaching
the server.  We deploy the three-VNF chain across two containers,
generate a mixed workload (legitimate requests, an attack signature,
and a flood), and read each VNF's verdict from its handlers.

Run:  python examples/web_service_chain.py
"""

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology
from repro.openflow import Match
from repro.packet import Ethernet, IPv4

TOPOLOGY = {
    "nodes": [
        {"name": "client", "role": "host"},
        {"name": "server", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "edge", "role": "vnf_container", "cpu": 4, "mem": 4096},
        {"name": "core", "role": "vnf_container", "cpu": 4, "mem": 4096},
    ],
    "links": [
        {"from": "client", "to": "s1", "bandwidth": 100e6,
         "delay": 0.002},
        {"from": "s1", "to": "s2", "bandwidth": 1e9, "delay": 0.001},
        {"from": "server", "to": "s2", "bandwidth": 100e6,
         "delay": 0.0005},
        {"from": "edge", "to": "s1", "delay": 0.0002},
        {"from": "edge", "to": "s1", "delay": 0.0002},
        {"from": "edge", "to": "s1", "delay": 0.0002},
        {"from": "edge", "to": "s1", "delay": 0.0002},
        {"from": "core", "to": "s2", "delay": 0.0002},
        {"from": "core", "to": "s2", "delay": 0.0002},
    ],
}

SERVICE_GRAPH = {
    "name": "web-chain",
    "saps": ["client", "server"],
    "vnfs": [
        {"name": "fw", "type": "firewall",
         "params": {"rules": "allow udp dst port 8080, drop all"}},
        {"name": "ids", "type": "dpi",
         "params": {"signatures": '"ATTACK", "WORM"'}},
        {"name": "limiter", "type": "rate_limiter",
         "params": {"rate": "200"}},
    ],
    "chain": ["client", "fw", "ids", "limiter", "server"],
    "requirements": [{"from": "client", "to": "server",
                      "max_delay": 0.1}],
}


def main():
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()

    client = escape.net.get("client")
    server = escape.net.get("server")

    # Steer only the web traffic (UDP:8080) through the chain.
    web_match = Match(dl_type=Ethernet.IP_TYPE, nw_src=client.ip,
                      nw_dst=server.ip, nw_proto=IPv4.UDP_PROTOCOL,
                      tp_dst=8080)
    chain = escape.deploy_service(load_service_graph(SERVICE_GRAPH),
                                  mapper="backtracking", match=web_match)
    print("placement:", chain.mapping.vnf_placement)

    # Workload 1: a burst of legitimate requests.
    for index in range(20):
        client.send_udp(server.ip, 8080,
                        b"GET /page-%d HTTP/1.0" % index)
    escape.run(1.0)

    # Workload 2: requests carrying an IDS signature.
    for _ in range(5):
        client.send_udp(server.ip, 8080, b"GET /?q=ATTACK payload")
    escape.run(1.0)

    # Workload 3: traffic to a non-web port (firewall territory).
    for _ in range(10):
        client.send_udp(server.ip, 31337, b"scan probe")
    escape.run(1.0)

    # Workload 4: a flood that should trip the rate limiter.
    flood = client.start_udp_flow(server.ip, 8080, rate_pps=2000,
                                  duration=1.0, payload_size=200)
    escape.run(3.0)

    print("\n--- verdicts (read from VNF handlers over NETCONF) ---")
    print("firewall : passed=%s dropped=%s"
          % (chain.read_handler("fw", "fw.passed"),
             chain.read_handler("fw", "fw.dropped")))
    print("IDS      : matched=%s clean=%s"
          % (chain.read_handler("ids", "matched.count"),
             chain.read_handler("ids", "cnt_out.count")))
    print("limiter  : in=%s out=%s queue-drops=%s"
          % (chain.read_handler("limiter", "cnt_in.count"),
             chain.read_handler("limiter", "cnt_out.count"),
             chain.read_handler("limiter", "q.drops")))
    print("server   : %d datagrams delivered (flood sent %d)"
          % (server.udp_rx_count, flood.sent + 25))

    for report in escape.service_layer.verify_sla("web-chain"):
        delay_text = ("%.2f ms" % (report.measured_delay * 1e3)
                      if report.measured_delay is not None else "n/a")
        print("SLA      : delay %s -> %s"
              % (delay_text,
                 "OK" if report.satisfied else "VIOLATED"))

    chain.undeploy()


if __name__ == "__main__":
    main()
