#!/usr/bin/env python
"""The Mininet-style console over a running ESCAPE topology.

Scripted by default (so it runs under CI); pass ``--interactive`` for a
real REPL.  Commands: nodes, net, links, dump, ping, pingall, flows,
vnfs, resources, metrics, trace.

Run:  python examples/interactive_cli.py [--interactive]
"""

import sys

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "h3", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "h3", "to": "s2", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

SERVICE_GRAPH = {
    "name": "cli-demo-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow all"}}],
    "chain": ["h1", "fw", "h2"],
}

SCRIPT = [
    "help",
    "nodes",
    "net",
    "ping h1 h2 2",
    "pingall",
    "flows s1",
    "vnfs",
    "resources",
    "services",
    "catalog",
    "topology",
    "metrics prom",
    "trace",
]


def main():
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    escape.deploy_service(load_service_graph(SERVICE_GRAPH))
    cli = escape.cli()

    if "--interactive" in sys.argv:
        cli.interact()
        return

    for command in SCRIPT:
        print("escape> %s" % command)
        output = cli.run_command(command)
        if output:
            print(output)
        print()


if __name__ == "__main__":
    main()
