#!/usr/bin/env python
"""Quickstart: the paper's demo in ~60 lines.

Builds a small topology with one VNF container, deploys a firewall
service chain between two hosts, sends live traffic through it, and
reads the VNF's counters — demo steps (1) through (5).

Run:  python examples/quickstart.py
"""

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "bandwidth": 100e6, "delay": 0.001},
        {"from": "h2", "to": "s1", "bandwidth": 100e6, "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

SERVICE_GRAPH = {
    "name": "quickstart-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
    "requirements": [{"from": "h1", "to": "h2", "max_delay": 0.05}],
}


def main():
    # Step 1: define VNF containers and the rest of the topology.
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    print("started:", escape)

    # Steps 2+3: build the service graph and map + deploy it.
    chain = escape.deploy_service(load_service_graph(SERVICE_GRAPH))
    print("deployed:", chain.mapping.vnf_placement)

    # Step 4: send and inspect live traffic.
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")
    result = h1.ping(h2.ip, count=5, interval=0.2)
    escape.run(3.0)
    print(result.summary())

    h1.send_udp(h2.ip, 9999, b"will the firewall let me through?")
    escape.run(0.5)
    print("UDP datagrams delivered to h2: %d (firewall says no)"
          % h2.udp_rx_count)

    # Step 5: monitor the VNF (Clicky-style handler reads).
    print("firewall passed=%s dropped=%s"
          % (chain.read_handler("fw", "fw.passed"),
             chain.read_handler("fw", "fw.dropped")))

    # SLA check against the requirement in the service graph.
    for report in escape.service_layer.verify_sla("quickstart-chain"):
        print("SLA: measured one-way delay %.2f ms (limit %.0f ms) -> %s"
              % (report.measured_delay * 1e3,
                 report.requirement.max_delay * 1e3,
                 "OK" if report.satisfied else "VIOLATED"))

    chain.undeploy()
    print("chain torn down; bye")


if __name__ == "__main__":
    main()
