#!/usr/bin/env python
"""Live VNF migration — the "dynamics and flexibility" the paper's
introduction says today's hardware-bound service deployment lacks.

A firewall chain runs between two hosts while we move the firewall
from an edge container to a core container mid-traffic.  The
orchestrator does make-before-break: the replacement instance starts,
the steering re-routes, then the old instance stops — and the ping
train running across the event keeps completing.

Run:  python examples/chain_migration.py
"""

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "edge", "role": "vnf_container", "cpu": 2, "mem": 1024},
        {"name": "core", "role": "vnf_container", "cpu": 8, "mem": 8192},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "edge", "to": "s1", "delay": 0.0005},
        {"from": "edge", "to": "s1", "delay": 0.0005},
        {"from": "core", "to": "s2", "delay": 0.0005},
        {"from": "core", "to": "s2", "delay": 0.0005},
    ],
}

SERVICE_GRAPH = {
    "name": "mig-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
}


def main():
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    chain = escape.deploy_service(load_service_graph(SERVICE_GRAPH),
                                  mapper="shortest-path")
    source = chain.mapping.vnf_placement["fw"]
    target = "core" if source == "edge" else "edge"
    print("firewall initially on %r" % source)

    h1, h2 = escape.net.get("h1"), escape.net.get("h2")

    # a long ping train that spans the migration
    train = h1.ping(h2.ip, count=20, interval=0.25)
    escape.run(2.0)  # ~8 pings done on the old placement
    before_count = int(chain.read_handler("fw", "cnt_in.count"))
    print("mid-train: %d packets seen by the old instance"
          % before_count)

    print("migrating fw -> %r ..." % target)
    chain.migrate("fw", target)
    escape.run(4.0)  # the rest of the train runs on the new placement

    print(train.summary())
    after_count = int(chain.read_handler("fw", "cnt_in.count"))
    print("new instance on %r has seen %d packets"
          % (chain.mapping.vnf_placement["fw"], after_count))
    print("old container now hosts %d VNFs, new hosts %d"
          % (len(escape.net.get(source).vnfs),
             len(escape.net.get(target).vnfs)))

    # and the policy still holds after the move
    h1.send_udp(h2.ip, 9999, b"probe")
    escape.run(0.5)
    print("UDP still blocked after migration: %s"
          % ("yes" if h2.udp_rx_count == 0 else "NO (bug!)"))
    chain.undeploy()


if __name__ == "__main__":
    main()
