#!/usr/bin/env python
"""Chaos-testing the self-healing orchestration.

A firewall chain carries a ping train while a seeded chaos scenario
beats on all three layers: the firewall process crashes, the primary
inter-switch trunk goes down and later flaps, a NETCONF management
session blackholes, and the firewall's whole container goes down.  The
recovery manager restarts, re-routes and fails over — the demo checks
that traffic flows again after every fault and prints the recovery
ledger with per-fault MTTR.

Run:  python examples/chaos_demo.py [--seed N] [--protection]
      python examples/chaos_demo.py --compare-protection [--seed N]

With ``--protection`` the orchestrator pre-computes link-disjoint
backup paths and installs FAST_FAILOVER groups, so trunk failures are
repaired by a local dataplane bucket flip instead of a control-plane
reroute.  ``--compare-protection`` runs the *same* seeded scenario in
both modes and gates on the protected p50 link-failover MTTR being at
least 5x lower than the reactive one (the CI chaos-soak criterion).

Exits non-zero when any chain stays unrecovered (the CI chaos soak
gate), traffic is dead after the scenario ends, or — in comparison
mode — protection does not beat reactive recovery by the 5x margin.
"""

import argparse
import sys

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "s3", "role": "switch"},  # the detour path
        {"name": "c1", "role": "vnf_container", "cpu": 4, "mem": 4096},
        {"name": "c2", "role": "vnf_container", "cpu": 4, "mem": 4096},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},   # primary trunk
        {"from": "s1", "to": "s3", "delay": 0.003},
        {"from": "s3", "to": "s2", "delay": 0.003},
        {"from": "c1", "to": "s1", "delay": 0.0005},
        {"from": "c1", "to": "s1", "delay": 0.0005},
        {"from": "c2", "to": "s2", "delay": 0.0005},
        {"from": "c2", "to": "s2", "delay": 0.0005},
    ],
}

SERVICE_GRAPH = {
    "name": "chaos-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
}

# kinds in the recovery ledger that repair a *link* failure: these are
# the actions whose MTTR the protection comparison is about
LINK_REPAIR_KINDS = ("link", "edge")


def build_scenario(escape, seed, fw_container):
    """The fault schedule; the trunk link and the firewall's container
    are resolved from the live deployment, the crash and blackhole
    targets from the seeded RNG."""
    trunk = escape.net.links_between("s1", "s2")[0].name
    return {
        "name": "crash-flap-blackhole",
        "seed": seed,
        "faults": [
            {"kind": "vnf_crash", "at": 1.0},
            {"kind": "link_down", "at": 4.0, "duration": 2.0,
             "target": trunk},
            {"kind": "netconf_blackhole", "at": 8.0, "duration": 1.5},
            # the firewall's own container dies: restart-in-place is
            # impossible, recovery must fail over to the other one
            {"kind": "container_down", "at": 11.0, "duration": 3.0,
             "target": fw_container},
            {"kind": "link_degrade", "at": 16.0, "duration": 2.0,
             "loss": 0.2},
            # carrier bounce on the trunk: reactive recovery chases
            # every transition, protection rides it out in-dataplane
            {"kind": "link_flap", "at": 19.0, "target": trunk,
             "period": 0.4, "flaps": 2},
        ],
    }


def probe(escape, h1, h2, label):
    """Ping across the chain; returns True when replies arrive."""
    train = h1.ping(h2.ip, count=5, interval=0.1)
    escape.run(1.5)
    ok = train.received > 0
    print("  [%s] ping %d/%d %s" % (label, train.received, train.sent,
                                    "ok" if ok else "DEAD"))
    return ok


def _percentile(values, q):
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       int(round(q * (len(ordered) - 1))))]


def run_once(seed, protection):
    """One full chaos run; returns the gate-relevant summary."""
    mode = "protected" if protection else "reactive"
    print("=== %s run (seed %d) ===" % (mode, seed))
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY),
                                  protection=protection)
    escape.start()
    escape.deploy_service(load_service_graph(SERVICE_GRAPH),
                          mapper="shortest-path")
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")
    placement = escape.orchestrator.deployed["chaos-chain"] \
        .mapping.vnf_placement
    print("chain deployed: %r" % placement)
    if protection:
        print("protected paths: %r" % escape.steering.protected_paths())

    # continuous carrier traffic: protection only matters for packets
    # in flight, so keep frames crossing the chain the whole scenario —
    # a dataplane flip fires the first time a frame hits a dead bucket
    carrier = h1.ping(h2.ip, count=2400, interval=0.01)

    engine = escape.inject_chaos(
        build_scenario(escape, seed, placement["fw"]))
    print("scenario armed: %d faults, seed %d"
          % (len(engine.scenario.faults), seed))

    checks = []
    windows = [
        (3.0, "after VNF crash recovery"),
        (7.5, "after trunk outage"),
        (10.5, "after NETCONF blackhole"),
        (15.5, "after container failover"),
        (18.5, "after degradation healed"),
        (21.5, "after trunk flap"),
    ]
    for until, label in windows:
        if escape.sim.now < until:
            escape.run(until - escape.sim.now)
        checks.append(probe(escape, h1, h2, label))

    engine.heal_all()
    escape.run(2.0)  # let trailing repairs settle

    print("\ninjection ledger (deterministic for seed %d):" % seed)
    for record in engine.injections:
        note = (" (skipped: %s)" % record["skipped"]
                if "skipped" in record else "")
        print("  %7.3f %-18s %s%s" % (record["time"], record["kind"],
                                      record["target"], note))

    print("\nrecovery ledger:")
    for action in escape.recovery.actions:
        if not action.get("ok"):
            print("  %7.3f %-9s %-28s GAVE UP: %s"
                  % (action["time"], action["kind"], action["target"],
                     action["error"]))
        elif action.get("mttr") is None:  # reprotect: no outage to time
            print("  %7.3f %-9s %-28s (make-before-break)"
                  % (action["time"], action["kind"], action["target"]))
        else:
            print("  %7.3f %-9s %-28s mttr=%6.3fs attempts=%d"
                  % (action["time"], action["kind"], action["target"],
                     action["mttr"], action["attempts"]))

    mttr = escape.telemetry.metrics.get(
        "core.recovery.mttr", labels={"fault": "vnf.crashed"})
    if mttr is not None:
        print("\nvnf.crashed MTTR: n=%d avg=%.3fs"
              % (mttr.count, mttr.sum / max(mttr.count, 1)))

    actions = list(escape.recovery.actions)
    flip_mttrs = [a["mttr"] for a in actions
                  if a["kind"] == "flip" and a.get("mttr") is not None]
    reroute_mttrs = [a["mttr"] for a in actions
                     if a["kind"] in LINK_REPAIR_KINDS and a.get("ok")
                     and a.get("mttr") is not None]
    flips = sum(switch.datapath.group_flip_count
                for switch in escape.net.switches())
    unrecovered = escape.recovery.unrecovered()
    pending = escape.recovery.pending()
    final_ok = checks[-1] if checks else False
    print("\ncarrier traffic:    %d/%d delivered"
          % (carrier.received, carrier.sent))
    print("unrecovered chains: %s" % (unrecovered or "none"))
    print("pending repairs:    %s" % (pending or "none"))
    if flip_mttrs:
        print("dataplane flips:    %d, mttr p50=%.4fs"
              % (flips, _percentile(flip_mttrs, 0.5)))
    if reroute_mttrs:
        print("reactive reroutes:  %d, mttr p50=%.4fs"
              % (len(reroute_mttrs), _percentile(reroute_mttrs, 0.5)))
    escape.stop()
    print("")
    return {
        "mode": mode,
        "ok": bool(final_ok and not unrecovered and not pending),
        "unrecovered": unrecovered,
        "pending": pending,
        "final_ok": final_ok,
        "flips": flips,
        "flip_mttr_p50": _percentile(flip_mttrs, 0.5),
        "reroute_mttr_p50": _percentile(reroute_mttrs, 0.5),
        "reroutes": len(reroute_mttrs),
    }


def compare(seed):
    """The CI gate: same scenario reactive vs protected; protection
    must win the link-failover p50 MTTR by at least 5x."""
    reactive = run_once(seed, protection=False)
    protected = run_once(seed, protection=True)

    problems = []
    for result in (reactive, protected):
        if not result["ok"]:
            problems.append("%s run did not fully self-heal "
                            "(unrecovered=%s pending=%s traffic=%s)"
                            % (result["mode"], result["unrecovered"],
                               result["pending"],
                               "ok" if result["final_ok"] else "DEAD"))
    if protected["flips"] < 1:
        problems.append("protected run performed no dataplane flips")
    # the experiment: how long is protected traffic down when a link
    # dies (a bucket flip) vs how long reactive traffic is down (a
    # control-plane reroute over NETCONF/POX)
    p50_reactive = reactive["reroute_mttr_p50"]
    p50_protected = protected["flip_mttr_p50"]
    if p50_reactive is None or p50_protected is None:
        problems.append("missing link-failover MTTR samples "
                        "(reactive p50=%r, protected flip p50=%r)"
                        % (p50_reactive, p50_protected))
    else:
        ratio = p50_reactive / p50_protected if p50_protected else \
            float("inf")
        print("=== protection comparison (seed %d) ===" % seed)
        print("reactive  link-failover p50 MTTR: %.4fs (%d reroutes)"
              % (p50_reactive, reactive["reroutes"]))
        print("protected link-failover p50 MTTR: %.4fs (%d flips)"
              % (p50_protected, protected["flips"]))
        print("speedup: %.1fx (gate: >= 5x)" % ratio)
        if ratio < 5.0:
            problems.append("protected p50 MTTR %.4fs is not 5x below "
                            "reactive %.4fs (%.1fx)"
                            % (p50_protected, p50_reactive, ratio))

    if problems:
        for problem in problems:
            print("FAIL: %s" % problem)
        return 1
    print("PASS: protection beats reactive recovery, both runs healed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42,
                        help="chaos RNG seed (default 42)")
    parser.add_argument("--protection", action="store_true",
                        help="run with proactive backup paths and "
                        "FAST_FAILOVER groups")
    parser.add_argument("--compare-protection", action="store_true",
                        help="run reactive and protected back to back "
                        "and gate on the p50 MTTR speedup")
    args = parser.parse_args()

    if args.compare_protection:
        return compare(args.seed)

    result = run_once(args.seed, args.protection)
    if not result["ok"]:
        print("FAIL: chain did not fully self-heal")
        return 1
    print("PASS: every fault repaired, traffic flowing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
