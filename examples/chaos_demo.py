#!/usr/bin/env python
"""Chaos-testing the self-healing orchestration.

A firewall chain carries a ping train while a seeded chaos scenario
beats on all three layers: the firewall process crashes, the primary
inter-switch trunk flaps, a NETCONF management session blackholes, and
finally the firewall's whole container goes down.  The recovery
manager restarts, re-routes and fails over — the demo checks that
traffic flows again after every fault and prints the recovery ledger
with per-fault MTTR.

Run:  python examples/chaos_demo.py [--seed N]

Exits non-zero when any chain stays unrecovered (the CI chaos soak
gate) or traffic is dead after the scenario ends.
"""

import argparse
import sys

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "s3", "role": "switch"},  # the detour path
        {"name": "c1", "role": "vnf_container", "cpu": 4, "mem": 4096},
        {"name": "c2", "role": "vnf_container", "cpu": 4, "mem": 4096},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},   # primary trunk
        {"from": "s1", "to": "s3", "delay": 0.003},
        {"from": "s3", "to": "s2", "delay": 0.003},
        {"from": "c1", "to": "s1", "delay": 0.0005},
        {"from": "c1", "to": "s1", "delay": 0.0005},
        {"from": "c2", "to": "s2", "delay": 0.0005},
        {"from": "c2", "to": "s2", "delay": 0.0005},
    ],
}

SERVICE_GRAPH = {
    "name": "chaos-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
}


def build_scenario(escape, seed, fw_container):
    """The fault schedule; the trunk link and the firewall's container
    are resolved from the live deployment, the crash and blackhole
    targets from the seeded RNG."""
    trunk = escape.net.links_between("s1", "s2")[0].name
    return {
        "name": "crash-flap-blackhole",
        "seed": seed,
        "faults": [
            {"kind": "vnf_crash", "at": 1.0},
            {"kind": "link_down", "at": 4.0, "duration": 2.0,
             "target": trunk},
            {"kind": "netconf_blackhole", "at": 8.0, "duration": 1.5},
            # the firewall's own container dies: restart-in-place is
            # impossible, recovery must fail over to the other one
            {"kind": "container_down", "at": 11.0, "duration": 3.0,
             "target": fw_container},
            {"kind": "link_degrade", "at": 16.0, "duration": 2.0,
             "loss": 0.2},
        ],
    }


def probe(escape, h1, h2, label):
    """Ping across the chain; returns True when replies arrive."""
    train = h1.ping(h2.ip, count=5, interval=0.1)
    escape.run(1.5)
    ok = train.received > 0
    print("  [%s] ping %d/%d %s" % (label, train.received, train.sent,
                                    "ok" if ok else "DEAD"))
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42,
                        help="chaos RNG seed (default 42)")
    args = parser.parse_args()

    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    escape.deploy_service(load_service_graph(SERVICE_GRAPH),
                          mapper="shortest-path")
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")
    placement = escape.orchestrator.deployed["chaos-chain"] \
        .mapping.vnf_placement
    print("chain deployed: %r" % placement)

    engine = escape.inject_chaos(
        build_scenario(escape, args.seed, placement["fw"]))
    print("scenario armed: %d faults, seed %d"
          % (len(engine.scenario.faults), args.seed))

    checks = []
    windows = [
        (3.0, "after VNF crash recovery"),
        (7.5, "after trunk flap re-route"),
        (10.5, "after NETCONF blackhole"),
        (15.5, "after container failover"),
        (20.0, "after degradation healed"),
    ]
    for until, label in windows:
        if escape.sim.now < until:
            escape.run(until - escape.sim.now)
        checks.append(probe(escape, h1, h2, label))

    engine.heal_all()
    escape.run(2.0)  # let trailing repairs settle

    print("\ninjection ledger (deterministic for seed %d):" % args.seed)
    for record in engine.injections:
        note = (" (skipped: %s)" % record["skipped"]
                if "skipped" in record else "")
        print("  %7.3f %-18s %s%s" % (record["time"], record["kind"],
                                      record["target"], note))

    print("\nrecovery ledger:")
    for action in escape.recovery.actions:
        if action.get("ok"):
            print("  %7.3f %-6s %-28s mttr=%6.3fs attempts=%d"
                  % (action["time"], action["kind"], action["target"],
                     action["mttr"], action["attempts"]))
        else:
            print("  %7.3f %-6s %-28s GAVE UP: %s"
                  % (action["time"], action["kind"], action["target"],
                     action["error"]))

    mttr = escape.telemetry.metrics.get(
        "core.recovery.mttr", labels={"fault": "vnf.crashed"})
    if mttr is not None:
        print("\nvnf.crashed MTTR: n=%d avg=%.3fs"
              % (mttr.count, mttr.sum / max(mttr.count, 1)))

    unrecovered = escape.recovery.unrecovered()
    pending = escape.recovery.pending()
    final_ok = checks[-1] if checks else False
    print("\nunrecovered chains: %s" % (unrecovered or "none"))
    print("pending repairs:    %s" % (pending or "none"))

    if unrecovered or pending or not final_ok:
        print("FAIL: chain did not fully self-heal")
        return 1
    print("PASS: every fault repaired, traffic flowing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
