#!/usr/bin/env python
"""Clicky-style live monitoring of a running chain (demo step 5).

Deploys a monitor VNF that classifies chain traffic per protocol, polls
its handlers over NETCONF twice a simulated second, and renders a
textual dashboard with per-handler rates — the data Clicky would graph.

Run:  python examples/monitoring_dashboard.py
"""

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 2, "mem": 1024},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

SERVICE_GRAPH = {
    "name": "tap-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "tap", "type": "monitor"}],
    "chain": ["h1", "tap", "h2"],
}


def main():
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    chain = escape.deploy_service(load_service_graph(SERVICE_GRAPH))

    monitor = escape.monitor(chain, interval=0.5)
    samples_seen = []
    monitor.on_sample(
        lambda vnf, handler, sample: samples_seen.append(handler))
    monitor.start()

    h1, h2 = escape.net.get("h1"), escape.net.get("h2")

    # phase 1: a ping train (ICMP)
    h1.ping(h2.ip, count=10, interval=0.1)
    escape.run(1.5)
    print("=== after the ping train ===")
    print(monitor.dashboard())

    # phase 2: a UDP flow
    h1.start_udp_flow(h2.ip, 5001, rate_pps=200, duration=2.0,
                      payload_size=500)
    escape.run(2.5)
    print("\n=== during/after the UDP flow ===")
    print(monitor.dashboard())

    monitor.stop()
    icmp = monitor.latest("tap", "icmp.count")
    udp = monitor.latest("tap", "udp.count")
    print("\nprotocol split seen by the tap: icmp=%s udp=%s"
          % (icmp.value, udp.value))
    print("monitor issued %d NETCONF polls (%d live samples)"
          % (monitor.polls, len(samples_seen)))
    chain.undeploy()


if __name__ == "__main__":
    main()
