#!/usr/bin/env python
"""Live monitoring of a running chain (demo step 5, extended).

Part 1 (Clicky analog): deploys a monitor VNF that classifies chain
traffic per protocol, polls its handlers over NETCONF twice a
simulated second, and renders a textual dashboard with per-handler
rates — the data Clicky would graph.

Part 2 (observability stack): deploys a chain with an end-to-end
max-delay requirement, lets the SLA monitor probe it, degrades a
substrate link until the chain goes VIOLATED, and shows the health
console, the correlated event log and a flight-recorder capture whose
probe frames join back to their ``sla.probe`` spans.

Run:  python examples/monitoring_dashboard.py
"""

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 2, "mem": 1024},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

SERVICE_GRAPH = {
    "name": "tap-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "tap", "type": "monitor"}],
    "chain": ["h1", "tap", "h2"],
}


SLA_TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 2, "mem": 1024},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.001},
        {"from": "s2", "to": "h2", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

SLA_SERVICE_GRAPH = {
    "name": "sla-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow all"}}],
    "chain": ["h1", "fw", "h2"],
    "requirements": [{"from": "h1", "to": "h2", "max_delay": 0.05}],
}


def sla_and_flight_recorder_demo():
    escape = ESCAPE.from_topology(load_topology(SLA_TOPOLOGY))
    escape.start()
    chain = escape.deploy_service(load_service_graph(SLA_SERVICE_GRAPH))
    escape.recorder.attach_chain(chain)  # record every mapped link
    console = escape.cli()

    escape.run(2.0)
    print("=== healthy chain ===")
    print(console.run_command("sla"))

    # degrade the core link past the 50 ms budget
    for link in escape.net.links_between("s1", "s2"):
        link.delay = 0.2
    escape.run(4.0)
    print("\n=== after degrading s1<->s2 to 200 ms ===")
    print(console.run_command("health"))
    print("\n--- WARN+ events (trace-correlated) ---")
    print(console.run_command("events warn"))

    # join a captured probe frame back to its pipeline span
    monitor = escape.sla_monitors["sla-chain"]
    report = monitor.last_report("h1", "h2")
    frames = escape.recorder.records(trace_id=report.trace_id)
    span = escape.recorder.find_span(frames[0])
    print("\n%d captured frames for probe trace %d; span: %s"
          % (len(frames), report.trace_id, span))
    print(console.run_command("record pcap sla-chain.pcap"))
    escape.stop()


def main():
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    chain = escape.deploy_service(load_service_graph(SERVICE_GRAPH))

    monitor = escape.monitor(chain, interval=0.5)
    samples_seen = []
    monitor.on_sample(
        lambda vnf, handler, sample: samples_seen.append(handler))
    monitor.start()

    h1, h2 = escape.net.get("h1"), escape.net.get("h2")

    # phase 1: a ping train (ICMP)
    h1.ping(h2.ip, count=10, interval=0.1)
    escape.run(1.5)
    print("=== after the ping train ===")
    print(monitor.dashboard())

    # phase 2: a UDP flow
    h1.start_udp_flow(h2.ip, 5001, rate_pps=200, duration=2.0,
                      payload_size=500)
    escape.run(2.5)
    print("\n=== during/after the UDP flow ===")
    print(monitor.dashboard())

    monitor.stop()
    icmp = monitor.latest("tap", "icmp.count")
    udp = monitor.latest("tap", "udp.count")
    print("\nprotocol split seen by the tap: icmp=%s udp=%s"
          % (icmp.value, udp.value))
    print("monitor issued %d NETCONF polls (%d live samples)"
          % (monitor.polls, len(samples_seen)))
    chain.undeploy()

    print("\n================================================")
    print("SLA conformance + flight recorder")
    print("================================================")
    sla_and_flight_recorder_demo()


if __name__ == "__main__":
    main()
