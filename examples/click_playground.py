#!/usr/bin/env python
"""The Click modular router, standalone — a VNF developer's playground.

The paper's pitch is that ESCAPE "fosters VNF development".  Before a
VNF ever reaches a container, its Click configuration can be built and
exercised directly.  This walk-through shows the language features the
reproduction supports: declarations, multi-port wiring, push/pull
boundaries, read/write handlers, and parameterized compound elements
(``elementclass``) — plus the test-harness idiom of hand-crafting
packets and pushing them into the graph.

Run:  python examples/click_playground.py
"""

from repro.click import ClickPacket, Router
from repro.packet import Ethernet, IPv4, TCP, UDP
from repro.sim import Simulator

CONFIG = """
// A reusable, parameterized building block: a rate limiter with its
// own queue and drop accounting.  $rate is bound per instance.
elementclass RateStage {
  $rate |
  input -> q :: Queue(64)
        -> sh :: Shaper($rate)
        -> Unqueue
        -> output;
}

// A reusable classifier block with two outputs.
elementclass ProtoSplit {
  input -> cl :: IPClassifier(udp, -);
  cl[0] -> [0]output;    // UDP on port 0
  cl[1] -> [1]output;    // everything else on port 1
}

// The pipeline under test.  Idle stands in for the device the VNF
// would attach to; the harness pushes crafted packets directly.
entry :: Idle -> sp :: ProtoSplit;
sp[0] -> udp_in :: Counter -> limited :: RateStage(100)
      -> udp_out :: Counter -> Discard;
sp[1] -> other :: Counter -> Discard;
"""


def udp_packet(index):
    return ClickPacket.from_header(Ethernet(
        src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
        type=Ethernet.IP_TYPE,
        payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                     protocol=IPv4.UDP_PROTOCOL,
                     payload=UDP(srcport=1000 + index, dstport=53,
                                 payload=b"query"))))


def tcp_packet():
    return ClickPacket.from_header(Ethernet(
        src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
        type=Ethernet.IP_TYPE,
        payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                     protocol=IPv4.TCP_PROTOCOL,
                     payload=TCP(srcport=1, dstport=80))))


def main():
    sim = Simulator()
    router = Router.from_config(CONFIG, sim=sim, name="playground")

    print("elements after elementclass expansion:")
    for name, element in sorted(router.elements.items()):
        print("  %-24s %s" % (name, type(element).__name__))

    router.start()
    split = router.element("sp/cl")

    # a 2-second burst: 500 UDP pps plus some TCP noise
    def burst(index=0):
        if index >= 1000:
            return
        split.push(0, udp_packet(index))
        if index % 10 == 0:
            split.push(0, tcp_packet())
        sim.schedule(0.002, burst, index + 1)

    burst()
    sim.run(until=3.0)

    print("\nhandlers after the burst:")
    for path in ("udp_in.count", "udp_out.count", "other.count",
                 "limited/q.drops", "limited/sh.rate"):
        print("  %-18s = %s" % (path, router.read_handler(path)))

    # runtime reconfiguration through a write handler inside a compound
    print("\nraising the limiter to 400 pps at runtime...")
    router.write_handler("limited/sh.rate", "400")
    before = int(router.read_handler("udp_out.count"))
    burst()
    sim.run(until=6.0)
    delta = int(router.read_handler("udp_out.count")) - before
    print("packets through the limiter this time: %d "
          "(vs ~200 at 100 pps)" % delta)


if __name__ == "__main__":
    main()
