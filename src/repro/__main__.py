"""``python -m repro`` — the ``escape`` CLI without installation."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
