"""Queues and the pull→push converters that drain them."""

from collections import deque
from typing import Dict, List, Optional

from repro.click.element import PULL, PUSH, Element
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class Queue(Element):
    """``Queue([CAPACITY])`` — the push→pull boundary.  Tail-drop.

    Handlers: ``length``, ``capacity``, ``drops``, ``highwater`` (read);
    ``reset`` (write).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PULL

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.capacity = 1000
        self.buffer: deque = deque()
        self.drops = 0
        self.highwater = 0
        self.add_read_handler("length", lambda: len(self.buffer))
        self.add_read_handler("capacity", lambda: self.capacity)
        self.add_read_handler("drops", lambda: self.drops)
        self.add_read_handler("highwater", lambda: self.highwater)
        self.add_write_handler("reset", lambda _value: self._reset())
        self.add_write_handler("capacity", self._write_capacity)

    def _reset(self) -> None:
        self.buffer.clear()
        self.drops = 0
        self.highwater = 0

    def _write_capacity(self, value: str) -> None:
        capacity = int(value)
        if capacity <= 0:
            raise ConfigError("%s: capacity must be positive" % self.name)
        self.capacity = capacity

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) > 1:
            raise ConfigError("%s: at most one argument (capacity)"
                              % self.name)
        if args:
            self._write_capacity(args[0])

    def push(self, port: int, packet: ClickPacket) -> None:
        if len(self.buffer) >= self.capacity:
            self.drop(packet)
            return
        self.buffer.append(packet)
        self.highwater = max(self.highwater, len(self.buffer))

    def drop(self, packet: ClickPacket) -> None:
        self.drops += 1

    def pull(self, port: int) -> Optional[ClickPacket]:
        return self.buffer.popleft() if self.buffer else None


@element_class()
class FrontDropQueue(Queue):
    """Queue that evicts the *oldest* packet when full (head-drop)."""

    def push(self, port: int, packet: ClickPacket) -> None:
        if len(self.buffer) >= self.capacity:
            self.buffer.popleft()
            self.drops += 1
        self.buffer.append(packet)
        self.highwater = max(self.highwater, len(self.buffer))


class _PullDriver(Element):
    """Shared machinery: pull upstream on a timer, push downstream."""

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PULL
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.interval = 1e-5
        self.burst = 1
        self.moved = 0
        self._task = None
        self.add_read_handler("count", lambda: self.moved)

    def initialize(self) -> None:
        self._arm()

    def cleanup(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _arm(self) -> None:
        self._task = self.router.sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        if not self.router.running:
            return
        for _ in range(self.burst):
            packet = self.input_pull(0)
            if packet is None:
                break
            self.moved += 1
            self.output_push(0, packet)
        self._arm()


@element_class()
class Unqueue(_PullDriver):
    """``Unqueue([BURST])`` — drain the upstream queue as fast as the
    scheduler allows, BURST packets per tick."""

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(args, ["BURST"])
        if positionals:
            self.burst = int(positionals[0])
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many arguments" % self.name)
        if "BURST" in kw:
            self.burst = int(kw["BURST"])
        if self.burst <= 0:
            raise ConfigError("%s: burst must be positive" % self.name)


@element_class()
class RatedUnqueue(_PullDriver):
    """``RatedUnqueue(RATE)`` — drain at RATE packets/second.

    Handlers: ``rate`` (read/write), ``count`` (read).
    """

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.rate = 100.0
        self.add_read_handler("rate", lambda: self.rate)
        self.add_write_handler("rate", self._write_rate)

    def _write_rate(self, value: str) -> None:
        rate = float(value)
        if rate <= 0:
            raise ConfigError("%s: rate must be positive" % self.name)
        self.rate = rate
        self.interval = 1.0 / rate

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(args, ["RATE"])
        if positionals:
            self._write_rate(positionals[0])
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many arguments" % self.name)
        if "RATE" in kw:
            self._write_rate(kw["RATE"])
