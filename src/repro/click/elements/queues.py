"""Queues and the pull→push converters that drain them."""

from collections import deque
from typing import Dict, List, Optional

from repro.click.element import (PULL, PUSH, Element, Notifier,
                                 PullActivation)
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class Queue(Element):
    """``Queue([CAPACITY])`` — the push→pull boundary.  Tail-drop.

    Owns the pull path's :class:`Notifier` (Click's empty-note): the
    0→1 push transition wakes sleeping pull drivers downstream, and the
    pull that drains the buffer puts them back to sleep.

    Handlers: ``length``, ``capacity``, ``drops``, ``highwater`` (read);
    ``reset`` (write).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PULL

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.capacity = 1000
        self.buffer: deque = deque()
        self.drops = 0
        self.highwater = 0
        self.notifier = Notifier()
        self.add_read_handler("length", lambda: len(self.buffer))
        self.add_read_handler("capacity", lambda: self.capacity)
        self.add_read_handler("drops", lambda: self.drops)
        self.add_read_handler("highwater", lambda: self.highwater)
        self.add_write_handler("reset", lambda _value: self._reset())
        self.add_write_handler("capacity", self._write_capacity)

    def _reset(self) -> None:
        self.buffer.clear()
        self.drops = 0
        self.highwater = 0
        self.notifier.sleep()

    def _write_capacity(self, value: str) -> None:
        capacity = int(value)
        if capacity <= 0:
            raise ConfigError("%s: capacity must be positive" % self.name)
        self.capacity = capacity

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) > 1:
            raise ConfigError("%s: at most one argument (capacity)"
                              % self.name)
        if args:
            self._write_capacity(args[0])

    def push(self, port: int, packet: ClickPacket) -> None:
        buffer = self.buffer
        if len(buffer) >= self.capacity:
            self.drop(packet)
            return
        buffer.append(packet)
        if len(buffer) > self.highwater:
            self.highwater = len(buffer)
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            flowtrace.record("queue.in",
                             "%s/%s" % (self.router.name, self.name),
                             self.router.sim.now, packet.data)
        if not self.notifier.active:
            self.notifier.wake()

    def drop(self, packet: ClickPacket) -> None:
        self.drops += 1

    def pull(self, port: int) -> Optional[ClickPacket]:
        buffer = self.buffer
        if not buffer:
            return None
        packet = buffer.popleft()
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            # the queue.out − queue.in delta is this packet's residency
            flowtrace.record("queue.out",
                             "%s/%s" % (self.router.name, self.name),
                             self.router.sim.now, packet.data)
        if not buffer:
            self.notifier.sleep()
        return packet

    def output_notifier(self, port: int) -> Optional[Notifier]:
        return self.notifier

    def pull_hint(self, port: int) -> Optional[float]:
        return None  # no timing constraint: the notifier is the truth

    def accepts_push(self, port: int) -> bool:
        return len(self.buffer) < self.capacity


@element_class()
class FrontDropQueue(Queue):
    """Queue that evicts the *oldest* packet when full (head-drop)."""

    def push(self, port: int, packet: ClickPacket) -> None:
        buffer = self.buffer
        if len(buffer) >= self.capacity:
            buffer.popleft()
            self.drops += 1
        buffer.append(packet)
        if len(buffer) > self.highwater:
            self.highwater = len(buffer)
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            flowtrace.record("queue.in",
                             "%s/%s" % (self.router.name, self.name),
                             self.router.sim.now, packet.data)
        if not self.notifier.active:
            self.notifier.wake()

    def accepts_push(self, port: int) -> bool:
        return True  # head-drop is the intended behavior, not a loss


class _PullDriver(Element):
    """Shared machinery: pull upstream, push downstream — event-driven.

    The driver sleeps while its upstream notifier is inactive, wakes on
    the 0→1 push transition, and drains up to ``burst`` packets per
    activation; when more remain it arms a same-timestamp continuation
    (a packet train in burst-sized slices), and when a rate stage
    blocks the chain it schedules one exact shot at the stage's pull
    hint.  Upstreams that report no notifier fall back to the legacy
    ``interval`` poll.
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PULL
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.interval = 1e-5
        self.burst = 1
        self.moved = 0
        self._activation: Optional[PullActivation] = None
        self.add_read_handler("count", lambda: self.moved)

    def initialize(self) -> None:
        self._activation = PullActivation(
            self, self._fire, interval=self.interval, floor=self._floor)
        self._activation.start()

    def cleanup(self) -> None:
        if self._activation is not None:
            self._activation.stop()
            self._activation = None

    def _floor(self) -> float:
        """Earliest useful activation; rated drivers raise this to the
        next credit instant."""
        return 0.0

    def _fire(self) -> None:
        if not self.router.running:
            return
        moved = 0
        burst = self.burst
        while moved < burst:
            packet = self.input_pull(0)
            if packet is None:
                break
            moved += 1
            self.output_push(0, packet)
        self.moved += moved
        self._reschedule(moved)

    def _reschedule(self, moved: int) -> None:
        self._activation.reschedule(moved >= self.burst)


@element_class()
class Unqueue(_PullDriver):
    """``Unqueue([BURST])`` — drain the upstream queue as fast as the
    scheduler allows, BURST packets per activation."""

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(args, ["BURST"])
        if positionals:
            self.burst = int(positionals[0])
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many arguments" % self.name)
        if "BURST" in kw:
            self.burst = int(kw["BURST"])
        if self.burst <= 0:
            raise ConfigError("%s: burst must be positive" % self.name)


@element_class()
class RatedUnqueue(_PullDriver):
    """``RatedUnqueue(RATE)`` — drain at RATE packets/second.

    Schedules exactly at credit instants (``1/RATE`` apart) instead of
    blind ticks; parks on an empty upstream and resumes at
    ``max(now, next_credit)`` on wake, so an idle spell never earns a
    catch-up burst.

    Handlers: ``rate`` (read/write), ``count`` (read).
    """

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.rate = 100.0
        self._next_credit = 0.0
        self.add_read_handler("rate", lambda: self.rate)
        self.add_write_handler("rate", self._write_rate)

    def _write_rate(self, value: str) -> None:
        rate = float(value)
        if rate <= 0:
            raise ConfigError("%s: rate must be positive" % self.name)
        self.rate = rate
        self.interval = 1.0 / rate

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(args, ["RATE"])
        if positionals:
            self._write_rate(positionals[0])
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many arguments" % self.name)
        if "RATE" in kw:
            self._write_rate(kw["RATE"])

    def _floor(self) -> float:
        return self._next_credit

    def _reschedule(self, moved: int) -> None:
        if moved:
            now = self.router.sim.now
            base = self._next_credit if self._next_credit > now else now
            self._next_credit = base + self.interval
        super()._reschedule(moved)
