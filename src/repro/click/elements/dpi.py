"""Payload-inspection (DPI) element."""

from typing import Dict, List

from repro.click.element import PUSH, Element
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class StringMatcher(Element):
    """``StringMatcher(pattern0, pattern1, ...)`` — scan the raw frame
    for each byte pattern; the first match routes the packet to that
    pattern's output.  Clean packets leave on the *last* output (so with
    N patterns the element has N+1 outputs, matching Click's
    StringMatcher convention of a fall-through port).

    This is the paper's stand-in "DPI" VNF: signature matching over
    payloads with per-signature counters.

    Handlers: ``match<i>_count``, ``total``, ``clean`` (read);
    ``reset`` (write).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.patterns: List[bytes] = []
        self.match_counts: List[int] = []
        self.total = 0
        self.clean = 0
        self.add_read_handler("total", lambda: self.total)
        self.add_read_handler("clean", lambda: self.clean)
        self.add_write_handler("reset", lambda _value: self._reset())

    def _reset(self) -> None:
        self.total = 0
        self.clean = 0
        self.match_counts = [0] * len(self.patterns)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if not args:
            raise ConfigError("%s: needs at least one pattern" % self.name)
        for index, pattern in enumerate(args):
            text = pattern.strip()
            if text.startswith('"') and text.endswith('"') and len(text) >= 2:
                text = text[1:-1]
            if not text:
                raise ConfigError("%s: empty pattern" % self.name)
            self.patterns.append(text.encode())
            self.match_counts.append(0)
            self.add_read_handler("match%d_count" % index,
                                  lambda i=index: self.match_counts[i])

    def push(self, port: int, packet: ClickPacket) -> None:
        self.total += 1
        data = packet.data
        for index, pattern in enumerate(self.patterns):
            if pattern in data:
                self.match_counts[index] += 1
                if index < self.noutputs:
                    self.output_push(index, packet)
                return
        self.clean += 1
        if self.noutputs:
            self.output_push(self.noutputs - 1, packet)
