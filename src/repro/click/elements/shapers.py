"""Rate limiting, delay and AQM elements."""

import random
from collections import deque
from typing import Dict, List, Optional

from repro.click.element import PULL, PUSH, Element, Notifier
from repro.click.errors import ConfigError
from repro.click.elements.queues import Queue
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class Shaper(Element):
    """``Shaper(RATE)`` — pull-path packet-rate limiter: passes at most
    RATE packets/second, returning None to downstream pulls beyond that.

    Handlers: ``rate`` (read/write), ``count`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PULL
    OUTPUT_PERSONALITY = PULL

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.rate = 1000.0
        self.count = 0
        self._next_allowed = 0.0
        self.add_read_handler("rate", lambda: self.rate)
        self.add_read_handler("count", lambda: self.count)
        self.add_write_handler("rate", self._write_rate)

    def _write_rate(self, value: str) -> None:
        rate = float(value)
        if rate <= 0:
            raise ConfigError("%s: rate must be positive" % self.name)
        self.rate = rate

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 1:
            raise ConfigError("%s: Shaper needs a rate" % self.name)
        self._write_rate(args[0])

    def pull(self, port: int) -> Optional[ClickPacket]:
        now = self.router.sim.now
        if now < self._next_allowed:
            return None
        packet = self.input_pull(0)
        if packet is None:
            return None
        self._next_allowed = max(self._next_allowed, now) + 1.0 / self.rate
        self.count += 1
        return packet

    def pull_hint(self, port: int) -> Optional[float]:
        """The upstream notifier is forwarded unchanged (default
        behavior); the hint adds the rate gate — a blocked driver
        should fire exactly at ``_next_allowed``."""
        upstream = self.input_hint(0)
        if upstream is None or upstream < self._next_allowed:
            return self._next_allowed
        return upstream


@element_class()
class BandwidthShaper(Element):
    """``BandwidthShaper(BYTES_PER_SEC)`` — token-bucket byte-rate
    limiter on the pull path.

    Handlers: ``rate`` (read/write), ``byte_count`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PULL
    OUTPUT_PERSONALITY = PULL

    BUCKET_DEPTH_SECONDS = 0.05  # burst tolerance

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.rate = 125000.0  # bytes/second (1 Mbit/s)
        self.byte_count = 0
        self._tokens = 0.0
        self._last_refill = 0.0
        self.add_read_handler("rate", lambda: self.rate)
        self.add_read_handler("byte_count", lambda: self.byte_count)
        self.add_write_handler("rate", self._write_rate)

    def _write_rate(self, value: str) -> None:
        rate = float(value)
        if rate <= 0:
            raise ConfigError("%s: rate must be positive" % self.name)
        self.rate = rate

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 1:
            raise ConfigError("%s: BandwidthShaper needs a byte rate"
                              % self.name)
        self._write_rate(args[0])

    def initialize(self) -> None:
        self._tokens = self.rate * self.BUCKET_DEPTH_SECONDS
        self._last_refill = self.router.sim.now

    def pull(self, port: int) -> Optional[ClickPacket]:
        now = self.router.sim.now
        self._tokens = min(
            self.rate * self.BUCKET_DEPTH_SECONDS,
            self._tokens + (now - self._last_refill) * self.rate)
        self._last_refill = now
        if self._tokens <= 0:
            return None
        packet = self.input_pull(0)
        if packet is None:
            return None
        self._tokens -= len(packet)
        self.byte_count += len(packet)
        return packet

    def pull_hint(self, port: int) -> Optional[float]:
        """Exact refill instant: the time at which the bucket crosses
        one byte of credit (``pull`` requires ``_tokens > 0``)."""
        if self._tokens > 0:
            mine = self.router.sim.now
        else:
            mine = self._last_refill + (1.0 - self._tokens) / self.rate
        upstream = self.input_hint(0)
        if upstream is None or upstream < mine:
            return mine
        return upstream


@element_class()
class DelayQueue(Element):
    """``DelayQueue(DELAY [, CAPACITY])`` — push in, pull out after each
    packet has aged DELAY seconds (a fixed-latency stage).

    Handlers: ``delay`` (read/write), ``length``, ``drops`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PULL

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.delay = 0.001
        self.capacity = 1000
        self.drops = 0
        self._buffer: deque = deque()  # (ready_time, packet)
        self.notifier = Notifier()
        self.add_read_handler("delay", lambda: self.delay)
        self.add_read_handler("length", lambda: len(self._buffer))
        self.add_read_handler("drops", lambda: self.drops)
        self.add_write_handler("delay", self._write_delay)

    def _write_delay(self, value: str) -> None:
        delay = float(value)
        if delay < 0:
            raise ConfigError("%s: delay must be non-negative" % self.name)
        self.delay = delay

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if not 1 <= len(args) <= 2:
            raise ConfigError("%s: DelayQueue needs DELAY [, CAPACITY]"
                              % self.name)
        self._write_delay(args[0])
        if len(args) == 2:
            self.capacity = int(args[1])

    def push(self, port: int, packet: ClickPacket) -> None:
        if len(self._buffer) >= self.capacity:
            self.drops += 1
            return
        self._buffer.append((self.router.sim.now + self.delay, packet))
        if not self.notifier.active:
            self.notifier.wake()

    def pull(self, port: int) -> Optional[ClickPacket]:
        buffer = self._buffer
        if not buffer:
            return None
        ready_time, packet = buffer[0]
        if self.router.sim.now < ready_time:
            return None
        buffer.popleft()
        if not buffer:
            self.notifier.sleep()
        return packet

    def output_notifier(self, port: int) -> Optional[Notifier]:
        return self.notifier

    def pull_hint(self, port: int) -> Optional[float]:
        """The head packet's age-out instant (the notifier alone can't
        tell a blocked driver when the delay expires)."""
        if not self._buffer:
            return None
        return self._buffer[0][0]

    def accepts_push(self, port: int) -> bool:
        return len(self._buffer) < self.capacity


@element_class()
class RED(Queue):
    """``RED(MIN_THRESH, MAX_THRESH, MAX_P [, CAPACITY])`` — random early
    detection queue: beyond MIN_THRESH the drop probability ramps
    linearly to MAX_P at MAX_THRESH; above MAX_THRESH everything drops.

    Inherits Queue's handlers, adds ``early_drops`` (read).
    """

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.min_thresh = 5
        self.max_thresh = 50
        self.max_p = 0.02
        self.early_drops = 0
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)
        self.add_read_handler("early_drops", lambda: self.early_drops)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if not 3 <= len(args) <= 4:
            raise ConfigError(
                "%s: RED needs (min_thresh, max_thresh, max_p[, capacity])"
                % self.name)
        self.min_thresh = int(args[0])
        self.max_thresh = int(args[1])
        self.max_p = float(args[2])
        if len(args) == 4:
            self.capacity = int(args[3])
        if not 0 <= self.min_thresh < self.max_thresh:
            raise ConfigError("%s: need 0 <= min_thresh < max_thresh"
                              % self.name)
        if not 0.0 < self.max_p <= 1.0:
            raise ConfigError("%s: max_p out of (0,1]" % self.name)

    def push(self, port: int, packet: ClickPacket) -> None:
        length = len(self.buffer)
        if length >= self.max_thresh or length >= self.capacity:
            self.drops += 1
            return
        if length > self.min_thresh:
            ramp = ((length - self.min_thresh)
                    / float(self.max_thresh - self.min_thresh))
            if self._rng.random() < ramp * self.max_p:
                self.early_drops += 1
                self.drops += 1
                return
        super().push(port, packet)
