"""Counting elements — the handlers the Clicky-style monitor reads."""

from typing import Dict, List, Optional

from repro.click.element import Element
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class Counter(Element):
    """Pass-through packet/byte counter.

    Handlers: ``count``, ``byte_count``, ``rate`` (packets/s over the
    element's lifetime), ``bit_rate`` (read); ``reset`` (write).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 1

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.count = 0
        self.byte_count = 0
        self._first_seen: Optional[float] = None
        self._last_seen: Optional[float] = None
        self.add_read_handler("count", lambda: self.count)
        self.add_read_handler("byte_count", lambda: self.byte_count)
        self.add_read_handler("rate", self._rate)
        self.add_read_handler("bit_rate", self._bit_rate)
        self.add_write_handler("reset", lambda _value: self.reset())

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def reset(self) -> None:
        self.count = 0
        self.byte_count = 0
        self._first_seen = None
        self._last_seen = None

    def _elapsed(self) -> float:
        if self._first_seen is None or self._last_seen is None:
            return 0.0
        return self._last_seen - self._first_seen

    def _rate(self) -> float:
        elapsed = self._elapsed()
        return self.count / elapsed if elapsed > 0 else 0.0

    def _bit_rate(self) -> float:
        elapsed = self._elapsed()
        return self.byte_count * 8 / elapsed if elapsed > 0 else 0.0

    def _note(self, packet: ClickPacket) -> None:
        self.count += 1
        self.byte_count += len(packet)
        now = self.router.sim.now if self.router else 0.0
        if self._first_seen is None:
            self._first_seen = now
        self._last_seen = now

    def push(self, port: int, packet: ClickPacket) -> None:
        self._note(packet)
        self.output_push(0, packet)

    def pull(self, port: int) -> Optional[ClickPacket]:
        packet = self.input_pull(0)
        if packet is not None:
            self._note(packet)
        return packet


@element_class()
class AverageCounter(Counter):
    """Counter that also reports exponentially-weighted short-term rates.

    Extra handlers: ``ewma_rate`` (read), with smoothing factor ALPHA
    (default 0.3) configurable.
    """

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.alpha = 0.3
        self._ewma = 0.0
        self._window_start: Optional[float] = None
        self._window_count = 0
        self.window = 0.1  # seconds
        self.add_read_handler("ewma_rate", lambda: self._ewma)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(args, ["ALPHA", "WINDOW"])
        if positionals:
            self.alpha = float(positionals[0])
            positionals = positionals[1:]
        if positionals:
            raise ValueError("%s: too many arguments" % self.name)
        if "ALPHA" in kw:
            self.alpha = float(kw["ALPHA"])
        if "WINDOW" in kw:
            self.window = float(kw["WINDOW"])

    def _note(self, packet: ClickPacket) -> None:
        super()._note(packet)
        now = self.router.sim.now if self.router else 0.0
        if self._window_start is None:
            self._window_start = now
        self._window_count += 1
        elapsed = now - self._window_start
        if elapsed >= self.window:
            sample = self._window_count / elapsed
            self._ewma = (self.alpha * sample
                          + (1.0 - self.alpha) * self._ewma)
            self._window_start = now
            self._window_count = 0
