"""Stateless firewall element built on the IP filter expression compiler."""

from typing import Dict, List

from repro.click.element import PUSH, Element
from repro.click.errors import ConfigError
from repro.click.elements.classifiers import Predicate, compile_ip_filter
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class IPFilter(Element):
    """``IPFilter(allow <expr>, drop <expr>, ...)`` — first matching rule
    decides; packets matching no rule are dropped (default-deny, like
    Click's IPFilter).

    Allowed packets leave on output 0; dropped packets go to output 1
    when connected (for logging taps), otherwise vanish.

    Handlers: ``rules`` (read, the rule table), ``passed``, ``dropped``
    (read), ``add_rule`` (write, appends e.g. ``"drop src host 1.2.3.4"``).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH
    ALLOW_UNCONNECTED = True

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.rules: List[tuple] = []  # (action, expression text, predicate)
        self.passed = 0
        self.dropped = 0
        self.rule_hits: List[int] = []
        self.add_read_handler("rules", self._dump_rules)
        self.add_read_handler("passed", lambda: self.passed)
        self.add_read_handler("dropped", lambda: self.dropped)
        self.add_write_handler("add_rule", self._add_rule_handler)

    def _dump_rules(self) -> str:
        return "\n".join("%d %s %s (hits %d)" % (index, action, text, hits)
                         for index, ((action, text, _pred), hits)
                         in enumerate(zip(self.rules, self.rule_hits)))

    def _parse_rule(self, rule: str) -> tuple:
        action, _, expression = rule.strip().partition(" ")
        if action not in ("allow", "drop", "deny"):
            raise ConfigError("%s: rule must start with allow/drop, got %r"
                              % (self.name, rule))
        if action == "deny":
            action = "drop"
        expression = expression.strip() or "all"
        return (action, expression, compile_ip_filter(expression))

    def _add_rule_handler(self, value: str) -> None:
        self.rules.append(self._parse_rule(value))
        self.rule_hits.append(0)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if not args:
            raise ConfigError("%s: needs at least one rule" % self.name)
        for rule in args:
            self.rules.append(self._parse_rule(rule))
            self.rule_hits.append(0)

    def push(self, port: int, packet: ClickPacket) -> None:
        for index, (action, _text, predicate) in enumerate(self.rules):
            if predicate(packet):
                self.rule_hits[index] += 1
                if action == "allow":
                    self.passed += 1
                    self.output_push(0, packet)
                else:
                    self.dropped += 1
                    if self.noutputs > 1:
                        self.output_push(1, packet)
                return
        self.dropped += 1
        if self.noutputs > 1:
            self.output_push(1, packet)
