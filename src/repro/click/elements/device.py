"""FromDevice / ToDevice — the splice between a Click VNF and the
emulated network.

The VNF container (:mod:`repro.netem.vnf`) creates one :class:`Device`
per virtual interface and installs the map on the router as
``router.device_map`` before :meth:`Router.start`.  ``FromDevice(eth0)``
then delivers frames arriving on that interface into the element graph,
and ``ToDevice(eth0)`` transmits frames out of it.
"""

from typing import Callable, Dict, List, Optional

from repro.click.element import (AGNOSTIC, PULL, PUSH, Element,
                                 PullActivation)
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


class Device:
    """A virtual interface endpoint shared by the container and the VNF.

    The container sets :attr:`transmit` to inject frames into the
    emulated link; the VNF's FromDevice sets :attr:`receiver` to accept
    frames coming the other way.
    """

    def __init__(self, name: str):
        self.name = name
        self.transmit: Optional[Callable[[bytes], None]] = None
        self.receiver: Optional[Callable[[bytes], None]] = None
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0

    def deliver(self, data: bytes) -> None:
        """Called by the container when a frame arrives for the VNF."""
        self.rx_packets += 1
        self.rx_bytes += len(data)
        if self.receiver is not None:
            self.receiver(data)

    def send(self, data: bytes) -> None:
        """Called by the VNF (ToDevice) to transmit a frame."""
        self.tx_packets += 1
        self.tx_bytes += len(data)
        if self.transmit is not None:
            self.transmit(data)

    def __repr__(self) -> str:
        return "Device(%s, rx=%d, tx=%d)" % (self.name, self.rx_packets,
                                             self.tx_packets)


def _lookup_device(element: Element, devname: str) -> Device:
    device_map: Dict[str, Device] = getattr(element.router, "device_map", None)
    if not device_map or devname not in device_map:
        raise ConfigError(
            "%s: no device %r attached to router %r (available: %s)"
            % (element.name, devname, element.router.name,
               sorted(device_map) if device_map else "none"))
    return device_map[devname]


@element_class()
class FromDevice(Element):
    """``FromDevice(DEVNAME)`` — push frames arriving on DEVNAME into the
    graph.  Handlers: ``count`` (read)."""

    INPUT_COUNT = 0
    OUTPUT_COUNT = 1
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.devname = ""
        self.count = 0
        self._device: Optional[Device] = None
        self.add_read_handler("count", lambda: self.count)
        self.add_read_handler("device", lambda: self.devname)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 1:
            raise ConfigError("%s: FromDevice needs a device name"
                              % self.name)
        self.devname = args[0].strip()

    def initialize(self) -> None:
        self._device = _lookup_device(self, self.devname)
        self._device.receiver = self._receive

    def cleanup(self) -> None:
        if self._device is not None and self._device.receiver == self._receive:
            self._device.receiver = None

    def _receive(self, data: bytes) -> None:
        if not self.router.running:
            return
        self.count += 1
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            flowtrace.record("vnf.in", self.router.name,
                             self.router.sim.now, data)
        self.output_push(0, ClickPacket(data, timestamp=self.router.sim.now))


@element_class()
class ToDevice(Element):
    """``ToDevice(DEVNAME)`` — transmit frames out of DEVNAME.

    The input is agnostic: pushed frames go out immediately; with a pull
    upstream (``... -> Queue -> ToDevice``) the element sleeps on the
    upstream notifier and transmits a burst per wakeup, like Click's
    userlevel ToDevice behind an empty-note.  Handlers: ``count``
    (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 0
    INPUT_PERSONALITY = AGNOSTIC

    PULL_INTERVAL = 1e-5  # fallback poll when upstream has no notifier
    BURST = 32            # frames transmitted per activation

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.devname = ""
        self.count = 0
        self._device: Optional[Device] = None
        self._activation: Optional[PullActivation] = None
        self.add_read_handler("count", lambda: self.count)
        self.add_read_handler("device", lambda: self.devname)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 1:
            raise ConfigError("%s: ToDevice needs a device name" % self.name)
        self.devname = args[0].strip()

    def initialize(self) -> None:
        self._device = _lookup_device(self, self.devname)
        if self.inputs[0].resolved == PULL:
            self._activation = PullActivation(
                self, self._drain, interval=self.PULL_INTERVAL)
            self._activation.start()

    def cleanup(self) -> None:
        if self._activation is not None:
            self._activation.stop()
            self._activation = None

    def _transmit(self, packet: ClickPacket) -> None:
        self.count += 1
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            # vnf.out − vnf.in is the packet's whole element-graph
            # traversal, queue residency included
            flowtrace.record("vnf.out", self.router.name,
                             self.router.sim.now, packet.data)
        self._device.send(packet.data)

    def push(self, port: int, packet: ClickPacket) -> None:
        if self._device is None:
            self._device = _lookup_device(self, self.devname)
        self._transmit(packet)

    def _drain(self) -> None:
        if not self.router.running:
            return
        moved = 0
        while moved < self.BURST:
            packet = self.input_pull(0)
            if packet is None:
                break
            self._transmit(packet)
            moved += 1
        self._activation.reschedule(moved >= self.BURST)
