"""Traffic source elements (push personality, driven by simulator tasks)."""

from typing import Dict, List

from repro.click.element import PUSH, Element
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


class _ScheduledSource(Element):
    """Shared machinery: emit packets on a simulated-time schedule.

    Sources honor downstream backpressure: when the output's push chain
    reports it would drop (a full tail-drop queue), the emission is
    *suppressed* — no packet is synthesized just to die on arrival —
    and the schedule simply tries again next interval.  ``suppressed``
    (read handler) counts the skipped emissions.
    """

    INPUT_COUNT = 0
    OUTPUT_COUNT = 1
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.data = b"Random bulk data from source\x00\x00\x00\x00"
        self.limit = -1          # -1 means unlimited
        self.interval = 0.001    # seconds between emissions
        self.active = True
        self.emitted = 0
        self.suppressed = 0
        self._task = None
        self.add_read_handler("count", lambda: self.emitted)
        self.add_read_handler("suppressed", lambda: self.suppressed)
        self.add_read_handler("active", lambda: self.active)
        self.add_write_handler("active", self._write_active)
        self.add_write_handler("reset", lambda _value: self._reset())

    def _write_active(self, value: str) -> None:
        was = self.active
        self.active = self.parse_bool(value)
        if self.active and not was and self.router.running:
            self._arm()

    def _reset(self) -> None:
        self.emitted = 0
        self.suppressed = 0

    def initialize(self) -> None:
        if self.active:
            self._arm()

    def cleanup(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _arm(self) -> None:
        self._task = self.router.sim.schedule(self.interval, self._fire)

    def _fire(self) -> None:
        if not self.active or not self.router.running:
            return
        if self.limit >= 0 and self.emitted >= self.limit:
            self.active = False
            return
        if not self.downstream_accepts(0):
            # downstream queue is full: skip the emission (it would
            # tail-drop on arrival) and retry on the next tick
            self.suppressed += 1
            self._arm()
            return
        packet = self.make_packet()
        self.emitted += 1
        self.output_push(0, packet)
        self._arm()

    def make_packet(self) -> ClickPacket:
        return ClickPacket(self.data, timestamp=self.router.sim.now)


@element_class()
class InfiniteSource(_ScheduledSource):
    """``InfiniteSource([DATA, LIMIT, BURST])`` — emit as fast as the
    scheduler allows (one microsecond apart, deterministic).

    Handlers: ``count`` (read), ``active``/``reset`` (write).
    """

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(
            args, ["DATA", "LIMIT", "BURST", "ACTIVE"])
        if positionals:
            # Click allows DATA as the first positional.
            self.data = positionals[0].encode()
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many positional args" % self.name)
        if "DATA" in kw:
            self.data = kw["DATA"].encode()
        if "LIMIT" in kw:
            self.limit = int(kw["LIMIT"])
        if "ACTIVE" in kw:
            self.active = self.parse_bool(kw["ACTIVE"])
        self.interval = 1e-6


@element_class()
class RatedSource(_ScheduledSource):
    """``RatedSource([DATA, RATE, LIMIT])`` — emit RATE packets/second.

    Handlers: ``rate`` (read/write), ``count`` (read).
    """

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.rate = 10.0
        self.add_read_handler("rate", lambda: self.rate)
        self.add_write_handler("rate", self._write_rate)

    def _write_rate(self, value: str) -> None:
        rate = float(value)
        if rate <= 0:
            raise ConfigError("%s: rate must be positive" % self.name)
        self.rate = rate
        self.interval = 1.0 / rate

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(
            args, ["DATA", "RATE", "LIMIT", "ACTIVE"])
        if positionals:
            self.data = positionals[0].encode()
            positionals = positionals[1:]
        if positionals:
            self.rate = float(positionals[0])
            positionals = positionals[1:]
        if positionals:
            self.limit = int(positionals[0])
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many positional args" % self.name)
        if "DATA" in kw:
            self.data = kw["DATA"].encode()
        if "RATE" in kw:
            self.rate = float(kw["RATE"])
        if "LIMIT" in kw:
            self.limit = int(kw["LIMIT"])
        if "ACTIVE" in kw:
            self.active = self.parse_bool(kw["ACTIVE"])
        if self.rate <= 0:
            raise ConfigError("%s: rate must be positive" % self.name)
        self.interval = 1.0 / self.rate


@element_class()
class TimedSource(_ScheduledSource):
    """``TimedSource([INTERVAL, DATA])`` — one packet every INTERVAL s."""

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(
            args, ["INTERVAL", "DATA", "LIMIT"])
        if positionals:
            self.interval = float(positionals[0])
            positionals = positionals[1:]
        if positionals:
            self.data = positionals[0].encode()
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many positional args" % self.name)
        if "INTERVAL" in kw:
            self.interval = float(kw["INTERVAL"])
        if "DATA" in kw:
            self.data = kw["DATA"].encode()
        if "LIMIT" in kw:
            self.limit = int(kw["LIMIT"])
        if self.interval <= 0:
            raise ConfigError("%s: interval must be positive" % self.name)
