"""Header manipulation and protocol-responder elements."""

from typing import Dict, List, Optional

from repro.click.element import PUSH, Element
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class
from repro.packet import ARP, EthAddr, Ethernet, ICMP, IPAddr, IPv4
from repro.packet.base import PacketError


@element_class()
class Strip(Element):
    """``Strip(N)`` — remove the first N bytes of the frame."""

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.nbytes = 0

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 1:
            raise ConfigError("%s: Strip requires exactly one argument"
                              % self.name)
        self.nbytes = int(args[0])
        if self.nbytes < 0:
            raise ConfigError("%s: cannot strip negative bytes" % self.name)

    def _process(self, packet: ClickPacket) -> ClickPacket:
        packet.data = packet.data[self.nbytes:]
        return packet

    def push(self, port: int, packet: ClickPacket) -> None:
        self.output_push(0, self._process(packet))

    def pull(self, port: int) -> Optional[ClickPacket]:
        packet = self.input_pull(0)
        return self._process(packet) if packet is not None else None


@element_class()
class EtherEncap(Element):
    """``EtherEncap(ethertype, src, dst)`` — prepend an Ethernet header."""

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.ethertype = Ethernet.IP_TYPE
        self.src = EthAddr("00:00:00:00:00:00")
        self.dst = EthAddr("00:00:00:00:00:00")

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 3:
            raise ConfigError("%s: EtherEncap needs (ethertype, src, dst)"
                              % self.name)
        self.ethertype = int(args[0], 0)
        self.src = EthAddr(args[1])
        self.dst = EthAddr(args[2])

    def _process(self, packet: ClickPacket) -> ClickPacket:
        header = (self.dst.raw + self.src.raw
                  + self.ethertype.to_bytes(2, "big"))
        packet.data = header + packet.data
        return packet

    def push(self, port: int, packet: ClickPacket) -> None:
        self.output_push(0, self._process(packet))

    def pull(self, port: int) -> Optional[ClickPacket]:
        packet = self.input_pull(0)
        return self._process(packet) if packet is not None else None


@element_class()
class EtherMirror(Element):
    """Swap the Ethernet source and destination addresses."""

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def _process(self, packet: ClickPacket) -> ClickPacket:
        data = packet.data
        if len(data) >= 12:
            packet.data = data[6:12] + data[0:6] + data[12:]
        return packet

    def push(self, port: int, packet: ClickPacket) -> None:
        self.output_push(0, self._process(packet))

    def pull(self, port: int) -> Optional[ClickPacket]:
        packet = self.input_pull(0)
        return self._process(packet) if packet is not None else None


@element_class()
class CheckIPHeader(Element):
    """Verify the embedded IPv4 header; bad packets go to output 1 when
    connected, otherwise they are dropped.

    Handlers: ``drops`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH
    ALLOW_UNCONNECTED = True

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.drops = 0
        self.add_read_handler("drops", lambda: self.drops)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def push(self, port: int, packet: ClickPacket) -> None:
        if packet.ip() is not None:
            self.output_push(0, packet)
            return
        self.drops += 1
        if self.noutputs > 1:
            self.output_push(1, packet)


@element_class()
class DecIPTTL(Element):
    """Decrement the IPv4 TTL; expired packets go to output 1 when
    connected, otherwise they are dropped.

    Handlers: ``expired`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH
    ALLOW_UNCONNECTED = True

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.expired = 0
        self.add_read_handler("expired", lambda: self.expired)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def push(self, port: int, packet: ClickPacket) -> None:
        eth = packet.eth()
        ip = eth.find(IPv4) if eth is not None else None
        if ip is None:
            self.output_push(0, packet)
            return
        if ip.ttl <= 1:
            self.expired += 1
            if self.noutputs > 1:
                self.output_push(1, packet)
            return
        ip.ttl -= 1
        packet.replace_header(eth)
        self.output_push(0, packet)


@element_class()
class Paint(Element):
    """``Paint(color)`` — set the paint annotation."""

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.color = 0

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 1:
            raise ConfigError("%s: Paint requires one color" % self.name)
        self.color = int(args[0])
        if not 0 <= self.color <= 255:
            raise ConfigError("%s: color out of range" % self.name)

    def _process(self, packet: ClickPacket) -> ClickPacket:
        packet.paint = self.color
        return packet

    def push(self, port: int, packet: ClickPacket) -> None:
        self.output_push(0, self._process(packet))

    def pull(self, port: int) -> Optional[ClickPacket]:
        packet = self.input_pull(0)
        return self._process(packet) if packet is not None else None


@element_class()
class Print(Element):
    """``Print([LABEL, MAXLENGTH N])`` — record (and optionally echo) a
    one-line summary of each packet.  The log is exposed through the
    ``log`` read handler, so tests can assert on what flowed past.
    """

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.label = name
        self.maxlength = 24
        self.quiet = True
        self.log: List[str] = []
        self.add_read_handler("log", lambda: "\n".join(self.log))
        self.add_write_handler("clear", lambda _value: self.log.clear())

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(args, ["MAXLENGTH", "QUIET"])
        if positionals:
            self.label = positionals[0]
            positionals = positionals[1:]
        if positionals:
            raise ConfigError("%s: too many arguments" % self.name)
        if "MAXLENGTH" in kw:
            self.maxlength = int(kw["MAXLENGTH"])
        if "QUIET" in kw:
            self.quiet = self.parse_bool(kw["QUIET"])

    def _process(self, packet: ClickPacket) -> ClickPacket:
        summary = packet.data[: self.maxlength].hex()
        line = "%s: %4d | %s" % (self.label, len(packet), summary)
        self.log.append(line)
        if not self.quiet:
            print(line)
        return packet

    def push(self, port: int, packet: ClickPacket) -> None:
        self.output_push(0, self._process(packet))

    def pull(self, port: int) -> Optional[ClickPacket]:
        packet = self.input_pull(0)
        return self._process(packet) if packet is not None else None


@element_class()
class ICMPPingResponder(Element):
    """Turn ICMP echo requests around (swap MACs and IPs, emit replies).

    Non-echo packets are forwarded to output 1 when connected, otherwise
    dropped.  Handlers: ``replies`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH
    ALLOW_UNCONNECTED = True

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.replies = 0
        self.add_read_handler("replies", lambda: self.replies)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def push(self, port: int, packet: ClickPacket) -> None:
        eth = packet.eth()
        ip = eth.find(IPv4) if eth is not None else None
        icmp = ip.find(ICMP) if ip is not None else None
        if icmp is None or not icmp.is_echo_request:
            if self.noutputs > 1:
                self.output_push(1, packet)
            return
        reply = Ethernet(
            src=eth.dst, dst=eth.src, type=Ethernet.IP_TYPE,
            payload=IPv4(srcip=ip.dstip, dstip=ip.srcip,
                         protocol=IPv4.ICMP_PROTOCOL, ttl=64,
                         payload=icmp.make_reply()))
        self.replies += 1
        self.output_push(0, ClickPacket.from_header(
            reply, timestamp=packet.timestamp, anno=dict(packet.anno)))


@element_class()
class ARPResponder(Element):
    """``ARPResponder(ip mac, ...)`` — answer ARP who-has for the
    configured bindings.  Non-matching packets go to output 1 when
    connected, otherwise dropped."""

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH
    ALLOW_UNCONNECTED = True

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.table: Dict[IPAddr, EthAddr] = {}
        self.replies = 0
        self.add_read_handler("replies", lambda: self.replies)
        self.add_read_handler("table", self._dump_table)

    def _dump_table(self) -> str:
        return "\n".join("%s %s" % (ip, mac)
                         for ip, mac in sorted(self.table.items()))

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if not args:
            raise ConfigError("%s: needs at least one 'ip mac' binding"
                              % self.name)
        for binding in args:
            parts = binding.split()
            if len(parts) != 2:
                raise ConfigError("%s: bad binding %r" % (self.name, binding))
            try:
                self.table[IPAddr(parts[0])] = EthAddr(parts[1])
            except (ValueError, PacketError) as exc:
                raise ConfigError("%s: %s" % (self.name, exc))

    def push(self, port: int, packet: ClickPacket) -> None:
        eth = packet.eth()
        arp = eth.find(ARP) if eth is not None else None
        if (arp is None or arp.opcode != ARP.REQUEST
                or arp.protodst not in self.table):
            if self.noutputs > 1:
                self.output_push(1, packet)
            return
        mac = self.table[arp.protodst]
        reply = Ethernet(
            src=mac, dst=eth.src, type=Ethernet.ARP_TYPE,
            payload=ARP(opcode=ARP.REPLY, hwsrc=mac, protosrc=arp.protodst,
                        hwdst=arp.hwsrc, protodst=arp.protosrc))
        self.replies += 1
        self.output_push(0, ClickPacket.from_header(
            reply, timestamp=packet.timestamp))
