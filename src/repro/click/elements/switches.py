"""Fan-out and demultiplexing elements."""

import random
from typing import Dict, List

from repro.click.element import PUSH, Element
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class Tee(Element):
    """``Tee(N)`` — clone each input packet to all N outputs."""

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        # The output count comes from the connections; an explicit N is
        # accepted for Click compatibility but only validated, not forced.
        if len(args) > 1:
            raise ConfigError("%s: at most one argument" % self.name)
        self._declared = int(args[0]) if args else None

    def initialize(self) -> None:
        if self._declared is not None and self._declared != self.noutputs:
            raise ConfigError("%s: declared %d outputs but %d connected"
                              % (self.name, self._declared, self.noutputs))

    def push(self, port: int, packet: ClickPacket) -> None:
        for out in range(self.noutputs - 1):
            self.output_push(out, packet.clone())
        if self.noutputs:
            self.output_push(self.noutputs - 1, packet)


@element_class()
class Switch(Element):
    """``Switch([K])`` — forward every packet to output K (default 0).

    The ``switch`` write handler re-targets the output at runtime; -1
    drops everything.  This is the element ESCAPE uses to flip a VNF
    between chain branches without re-deploying.
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.target = 0
        self.add_read_handler("switch", lambda: self.target)
        self.add_write_handler("switch", self._write_switch)

    def _write_switch(self, value: str) -> None:
        target = int(value)
        if target >= self.noutputs:
            raise ConfigError("%s: no output %d" % (self.name, target))
        self.target = target

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) > 1:
            raise ConfigError("%s: at most one argument" % self.name)
        if args:
            self.target = int(args[0])

    def push(self, port: int, packet: ClickPacket) -> None:
        if 0 <= self.target < self.noutputs:
            self.output_push(self.target, packet)


@element_class()
class PaintSwitch(Element):
    """Route by the paint annotation: paint k -> output k (drop if out of
    range)."""

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def push(self, port: int, packet: ClickPacket) -> None:
        if 0 <= packet.paint < self.noutputs:
            self.output_push(packet.paint, packet)


@element_class()
class RoundRobinSwitch(Element):
    """Spread packets over the outputs in rotation (load balancer)."""

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self._next = 0
        self.add_read_handler("next", lambda: self._next)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def push(self, port: int, packet: ClickPacket) -> None:
        if not self.noutputs:
            return
        self.output_push(self._next, packet)
        self._next = (self._next + 1) % self.noutputs


@element_class()
class HashSwitch(Element):
    """``HashSwitch(OFFSET, LENGTH)`` — hash LENGTH bytes at OFFSET and
    route to ``hash % noutputs``.  Deterministic flow-affinity spreading
    (hash the 5-tuple region for per-flow load balancing)."""

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.offset = 0
        self.length = 4

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 2:
            raise ConfigError("%s: HashSwitch needs (offset, length)"
                              % self.name)
        self.offset = int(args[0])
        self.length = int(args[1])
        if self.offset < 0 or self.length <= 0:
            raise ConfigError("%s: bad offset/length" % self.name)

    def push(self, port: int, packet: ClickPacket) -> None:
        if not self.noutputs:
            return
        region = packet.data[self.offset: self.offset + self.length]
        digest = 5381
        for byte in region:
            digest = ((digest << 5) + digest + byte) & 0xFFFFFFFF
        self.output_push(digest % self.noutputs, packet)


@element_class()
class RandomSample(Element):
    """``RandomSample(P)`` — keep each packet with probability P on
    output 0; the rest go to output 1 when connected, else are dropped.
    Seeded per element name so runs stay reproducible.

    Handlers: ``sampled``, ``dropped`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH
    ALLOW_UNCONNECTED = True

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.probability = 0.5
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)
        self.sampled = 0
        self.dropped = 0
        self.add_read_handler("sampled", lambda: self.sampled)
        self.add_read_handler("dropped", lambda: self.dropped)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        positionals, kw = self.parse_keywords(args, ["SEED"])
        if len(positionals) != 1:
            raise ConfigError("%s: RandomSample needs a probability"
                              % self.name)
        self.probability = float(positionals[0])
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("%s: probability out of [0,1]" % self.name)
        if "SEED" in kw:
            self._rng = random.Random(int(kw["SEED"]))

    def push(self, port: int, packet: ClickPacket) -> None:
        if self._rng.random() < self.probability:
            self.sampled += 1
            self.output_push(0, packet)
        else:
            self.dropped += 1
            if self.noutputs > 1:
                self.output_push(1, packet)
