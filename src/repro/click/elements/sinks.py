"""Sink elements."""

from typing import Dict, List, Optional

from repro.click.element import AGNOSTIC, PULL, Element
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class Discard(Element):
    """Swallow every packet.  Works in push mode directly; in pull mode it
    runs a task that drains its upstream (like real Click's Discard).

    Handlers: ``count`` (read), ``reset`` (write).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 0
    INPUT_PERSONALITY = AGNOSTIC

    PULL_INTERVAL = 1e-4  # seconds between drain attempts in pull mode

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.count = 0
        self._task = None
        self.add_read_handler("count", lambda: self.count)
        self.add_write_handler("reset", lambda _value: self._reset())

    def _reset(self) -> None:
        self.count = 0

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass  # Discard takes no arguments but tolerates an empty config

    def initialize(self) -> None:
        if self.inputs[0].resolved == PULL:
            self._task = self.router.sim.schedule(self.PULL_INTERVAL,
                                                  self._drain)

    def cleanup(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _drain(self) -> None:
        if not self.router.running:
            return
        while True:
            packet = self.input_pull(0)
            if packet is None:
                break
            self.count += 1
        self._task = self.router.sim.schedule(self.PULL_INTERVAL, self._drain)

    def push(self, port: int, packet: ClickPacket) -> None:
        self.count += 1


@element_class()
class Idle(Element):
    """Never produces, silently consumes; any number of ports, all of
    which may stay unconnected.  Used to cap unused ports."""

    INPUT_COUNT = None
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = AGNOSTIC
    OUTPUT_PERSONALITY = AGNOSTIC
    ALLOW_UNCONNECTED = True

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def push(self, port: int, packet: ClickPacket) -> None:
        pass

    def pull(self, port: int) -> Optional[ClickPacket]:
        return None
