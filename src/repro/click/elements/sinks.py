"""Sink elements."""

from typing import Dict, List, Optional

from repro.click.element import AGNOSTIC, PULL, Element, PullActivation
from repro.click.packet import ClickPacket
from repro.click.registry import element_class


@element_class()
class Discard(Element):
    """Swallow every packet.  Works in push mode directly; in pull mode
    it sleeps on the upstream notifier and drains a burst per wakeup
    (like real Click's Discard behind an empty-note).

    Handlers: ``count`` (read), ``reset`` (write).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = 0
    INPUT_PERSONALITY = AGNOSTIC

    PULL_INTERVAL = 1e-4  # fallback poll when upstream has no notifier
    BURST = 32            # packets swallowed per activation

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.count = 0
        self._activation = None
        self.add_read_handler("count", lambda: self.count)
        self.add_write_handler("reset", lambda _value: self._reset())

    def _reset(self) -> None:
        self.count = 0

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass  # Discard takes no arguments but tolerates an empty config

    def initialize(self) -> None:
        if self.inputs[0].resolved == PULL:
            self._activation = PullActivation(
                self, self._drain, interval=self.PULL_INTERVAL)
            self._activation.start()

    def cleanup(self) -> None:
        if self._activation is not None:
            self._activation.stop()
            self._activation = None

    def _drain(self) -> None:
        if not self.router.running:
            return
        moved = 0
        while moved < self.BURST:
            packet = self.input_pull(0)
            if packet is None:
                break
            self.count += 1
            moved += 1
        self._activation.reschedule(moved >= self.BURST)

    def push(self, port: int, packet: ClickPacket) -> None:
        self.count += 1


@element_class()
class Idle(Element):
    """Never produces, silently consumes; any number of ports, all of
    which may stay unconnected.  Used to cap unused ports."""

    INPUT_COUNT = None
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = AGNOSTIC
    OUTPUT_PERSONALITY = AGNOSTIC
    ALLOW_UNCONNECTED = True

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        pass

    def push(self, port: int, packet: ClickPacket) -> None:
        pass

    def pull(self, port: int) -> Optional[ClickPacket]:
        return None
