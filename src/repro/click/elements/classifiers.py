"""Packet classifiers.

Two classifiers are provided, mirroring Click:

* :class:`Classifier` — raw byte patterns ``offset/hexvalue`` with ``-``
  as the catch-all, one output per pattern.
* :class:`IPClassifier` — a tcpdump-flavoured expression language, one
  output per expression.  The same compiler backs :class:`IPFilter`.

Expression grammar (subset of Click's)::

    expr   := or
    or     := and ('or' and)*
    and    := not (('and' | '&&') not)*
    not    := ['not' | '!'] prim
    prim   := '(' expr ')' | primitive
    primitive :=
          'ip' | 'tcp' | 'udp' | 'icmp' | 'arp'
        | ['src'|'dst'] 'host' <ip>
        | ['src'|'dst'] 'net' <ip>/<len>
        | ['src'|'dst'] 'port' <int>
        | 'ip' 'proto' <int>
        | 'icmp' 'type' <int>
        | 'vlan' [<id>]
        | 'all' | 'true' | 'none' | 'false'

``src``/``dst`` omitted means "either side matches".
"""

import re
from typing import Callable, Dict, List, Optional

from repro.click.element import PUSH, Element
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class
from repro.packet import ARP, Ethernet, ICMP, IPAddr, IPv4, Vlan

Predicate = Callable[[ClickPacket], bool]


# -- expression compiler -------------------------------------------------

_WORD_RE = re.compile(r"\(|\)|&&|\|\||!|[^\s()!]+")


def _tokenize_expr(text: str) -> List[str]:
    return _WORD_RE.findall(text)


class _ExprParser:
    def __init__(self, tokens: List[str], source: str):
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ConfigError("truncated filter expression %r" % self.source)
        self.pos += 1
        return token

    def parse(self) -> Predicate:
        pred = self.or_expr()
        if self.peek() is not None:
            raise ConfigError("trailing tokens in filter %r" % self.source)
        return pred

    def or_expr(self) -> Predicate:
        terms = [self.and_expr()]
        while self.peek() in ("or", "||"):
            self.next()
            terms.append(self.and_expr())
        if len(terms) == 1:
            return terms[0]
        return lambda pkt: any(term(pkt) for term in terms)

    def and_expr(self) -> Predicate:
        # Adjacent primitives conjoin implicitly, tcpdump-style:
        # "tcp dst port 80" == "tcp and dst port 80".
        terms = [self.not_expr()]
        while True:
            token = self.peek()
            if token in ("and", "&&"):
                self.next()
                terms.append(self.not_expr())
            elif token is None or token in ("or", "||", ")"):
                break
            else:
                terms.append(self.not_expr())
        if len(terms) == 1:
            return terms[0]
        return lambda pkt: all(term(pkt) for term in terms)

    def not_expr(self) -> Predicate:
        if self.peek() in ("not", "!"):
            self.next()
            inner = self.not_expr()
            return lambda pkt: not inner(pkt)
        return self.primary()

    def primary(self) -> Predicate:
        if self.peek() == "(":
            self.next()
            inner = self.or_expr()
            if self.next() != ")":
                raise ConfigError("missing ')' in filter %r" % self.source)
            return inner
        return self.primitive()

    def primitive(self) -> Predicate:
        token = self.next()
        if token in ("all", "true", "any", "-"):
            return lambda pkt: True
        if token in ("none", "false"):
            return lambda pkt: False
        if token in ("src", "dst"):
            return self._directional(token)
        if token == "host":
            return self._host(None, self.next())
        if token == "net":
            return self._net(None, self.next())
        if token == "port":
            return self._port(None, int(self.next()))
        if token == "ip":
            if self.peek() == "proto":
                self.next()
                proto = int(self.next())
                return lambda pkt: (pkt.ip() is not None
                                    and pkt.ip().protocol == proto)
            return lambda pkt: pkt.ip() is not None
        if token == "tcp":
            return lambda pkt: (pkt.ip() is not None
                                and pkt.ip().protocol == IPv4.TCP_PROTOCOL)
        if token == "udp":
            return lambda pkt: (pkt.ip() is not None
                                and pkt.ip().protocol == IPv4.UDP_PROTOCOL)
        if token == "icmp":
            if self.peek() == "type":
                self.next()
                icmp_type = int(self.next())
                return lambda pkt: _icmp_type_is(pkt, icmp_type)
            return lambda pkt: (pkt.ip() is not None
                                and pkt.ip().protocol == IPv4.ICMP_PROTOCOL)
        if token == "arp":
            return lambda pkt: _find(pkt, ARP) is not None
        if token == "vlan":
            nxt = self.peek()
            if nxt is not None and nxt.isdigit():
                vid = int(self.next())
                return lambda pkt: _vlan_id(pkt) == vid
            return lambda pkt: _vlan_id(pkt) is not None
        raise ConfigError("unknown filter primitive %r in %r"
                          % (token, self.source))

    def _directional(self, direction: str) -> Predicate:
        kind = self.next()
        if kind == "host":
            return self._host(direction, self.next())
        if kind == "net":
            return self._net(direction, self.next())
        if kind == "port":
            return self._port(direction, int(self.next()))
        raise ConfigError("expected host/net/port after %r in %r"
                          % (direction, self.source))

    @staticmethod
    def _host(direction: Optional[str], text: str) -> Predicate:
        addr = IPAddr(text)

        def pred(pkt: ClickPacket) -> bool:
            ip = pkt.ip()
            if ip is None:
                return False
            if direction == "src":
                return ip.srcip == addr
            if direction == "dst":
                return ip.dstip == addr
            return ip.srcip == addr or ip.dstip == addr
        return pred

    @staticmethod
    def _net(direction: Optional[str], text: str) -> Predicate:
        if "/" not in text:
            raise ConfigError("net requires CIDR notation, got %r" % text)

        def pred(pkt: ClickPacket) -> bool:
            ip = pkt.ip()
            if ip is None:
                return False
            if direction == "src":
                return ip.srcip.in_network(text)
            if direction == "dst":
                return ip.dstip.in_network(text)
            return (ip.srcip.in_network(text)
                    or ip.dstip.in_network(text))
        return pred

    @staticmethod
    def _port(direction: Optional[str], port: int) -> Predicate:
        def pred(pkt: ClickPacket) -> bool:
            l4 = pkt.tcp() or pkt.udp()
            if l4 is None:
                return False
            if direction == "src":
                return l4.srcport == port
            if direction == "dst":
                return l4.dstport == port
            return port in (l4.srcport, l4.dstport)
        return pred


def _find(pkt: ClickPacket, kind):
    parsed = pkt.parsed()
    return parsed.find(kind) if parsed is not None else None


def _icmp_type_is(pkt: ClickPacket, icmp_type: int) -> bool:
    icmp = _find(pkt, ICMP)
    return icmp is not None and icmp.type == icmp_type


def _vlan_id(pkt: ClickPacket) -> Optional[int]:
    vlan = _find(pkt, Vlan)
    return vlan.vid if vlan is not None else None


def compile_ip_filter(expression: str) -> Predicate:
    """Compile a filter expression into a predicate on ClickPacket."""
    return _ExprParser(_tokenize_expr(expression), expression).parse()


# -- elements -------------------------------------------------------------


@element_class()
class IPClassifier(Element):
    """``IPClassifier(expr0, expr1, ...)`` — route each packet to the
    output of the first matching expression; non-matching packets are
    dropped (add ``-`` as the last expression for a catch-all).

    Handlers: ``pattern<i>_count``, ``dropped`` (read).
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.predicates: List[Predicate] = []
        self.match_counts: List[int] = []
        self.dropped = 0
        self.add_read_handler("dropped", lambda: self.dropped)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if not args:
            raise ConfigError("%s: needs at least one expression" % self.name)
        for index, expression in enumerate(args):
            self.predicates.append(compile_ip_filter(expression))
            self.match_counts.append(0)
            self.add_read_handler(
                "pattern%d_count" % index,
                lambda i=index: self.match_counts[i])

    def initialize(self) -> None:
        if self.noutputs < len(self.predicates):
            # tolerate a tail of unconnected patterns only if none exist;
            # otherwise the router's dangling-port check already failed.
            pass

    def push(self, port: int, packet: ClickPacket) -> None:
        for index, predicate in enumerate(self.predicates):
            if predicate(packet):
                self.match_counts[index] += 1
                if index < self.noutputs:
                    self.output_push(index, packet)
                return
        self.dropped += 1


@element_class()
class Classifier(Element):
    """``Classifier(12/0800, 12/0806, -)`` — raw byte-pattern classifier.

    Each pattern is ``offset/hexbytes`` (``?`` nibbles are wildcards)
    with ``-`` matching anything.  First match wins; no match drops.
    """

    INPUT_COUNT = 1
    OUTPUT_COUNT = None
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.patterns: List[Optional[tuple]] = []  # None = catch-all
        self.dropped = 0
        self.add_read_handler("dropped", lambda: self.dropped)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if not args:
            raise ConfigError("%s: needs at least one pattern" % self.name)
        for pattern in args:
            pattern = pattern.strip()
            if pattern == "-":
                self.patterns.append(None)
                continue
            offset_text, _, hex_text = pattern.partition("/")
            if not hex_text:
                raise ConfigError("%s: bad pattern %r" % (self.name, pattern))
            offset = int(offset_text)
            hex_text = hex_text.strip()
            if len(hex_text) % 2:
                raise ConfigError("%s: odd-length hex in %r"
                                  % (self.name, pattern))
            values = bytearray()
            masks = bytearray()
            for i in range(0, len(hex_text), 2):
                value = 0
                mask = 0
                for shift, char in ((4, hex_text[i]), (0, hex_text[i + 1])):
                    if char == "?":
                        continue
                    value |= int(char, 16) << shift
                    mask |= 0xF << shift
                values.append(value)
                masks.append(mask)
            self.patterns.append((offset, bytes(values), bytes(masks)))

    def _matches(self, pattern: Optional[tuple], data: bytes) -> bool:
        if pattern is None:
            return True
        offset, values, masks = pattern
        if len(data) < offset + len(values):
            return False
        for i, (value, mask) in enumerate(zip(values, masks)):
            if data[offset + i] & mask != value:
                return False
        return True

    def push(self, port: int, packet: ClickPacket) -> None:
        for index, pattern in enumerate(self.patterns):
            if self._matches(pattern, packet.data):
                if index < self.noutputs:
                    self.output_push(index, packet)
                return
        self.dropped += 1


# Convenience patterns matching Click conventions.
ETHERTYPE_IP = "12/0800"
ETHERTYPE_ARP = "12/0806"
