"""Stock Click element library.

Importing this package registers every element class with the global
registry, making them usable from configuration strings.  The set covers
what the paper's VNF catalog needs: traffic sources/sinks for testing,
queues and shapers, classifiers, counters (the handlers Clicky reads),
header manipulation, NAT / firewall / DPI building blocks, and the
FromDevice/ToDevice splice that attaches a VNF to the emulated network.
"""

from repro.click.elements.classifiers import (Classifier, IPClassifier,
                                              compile_ip_filter)
from repro.click.elements.counters import AverageCounter, Counter
from repro.click.elements.device import Device, FromDevice, ToDevice
from repro.click.elements.dpi import StringMatcher
from repro.click.elements.firewall import IPFilter
from repro.click.elements.headerops import (ARPResponder, CheckIPHeader,
                                            DecIPTTL, EtherEncap,
                                            EtherMirror, ICMPPingResponder,
                                            Paint, Print, Strip)
from repro.click.elements.nat import IPRewriter
from repro.click.elements.queues import (FrontDropQueue, Queue, RatedUnqueue,
                                         Unqueue)
from repro.click.elements.shapers import (BandwidthShaper, DelayQueue, RED,
                                          Shaper)
from repro.click.elements.sinks import Discard, Idle
from repro.click.elements.sources import (InfiniteSource, RatedSource,
                                          TimedSource)
from repro.click.elements.switches import (HashSwitch, PaintSwitch,
                                           RandomSample, RoundRobinSwitch,
                                           Switch, Tee)

__all__ = [
    "ARPResponder",
    "AverageCounter",
    "BandwidthShaper",
    "CheckIPHeader",
    "Classifier",
    "Counter",
    "DecIPTTL",
    "DelayQueue",
    "Device",
    "Discard",
    "EtherEncap",
    "EtherMirror",
    "FromDevice",
    "FrontDropQueue",
    "HashSwitch",
    "ICMPPingResponder",
    "IPClassifier",
    "IPFilter",
    "IPRewriter",
    "Idle",
    "InfiniteSource",
    "Paint",
    "PaintSwitch",
    "Print",
    "Queue",
    "RED",
    "RandomSample",
    "RatedSource",
    "RatedUnqueue",
    "RoundRobinSwitch",
    "Shaper",
    "StringMatcher",
    "Strip",
    "Switch",
    "Tee",
    "TimedSource",
    "ToDevice",
    "Unqueue",
    "compile_ip_filter",
]
