"""Source-NAT element (a small stateful IPRewriter)."""

from typing import Dict, List, Optional, Tuple

from repro.click.element import PUSH, Element
from repro.click.errors import ConfigError
from repro.click.packet import ClickPacket
from repro.click.registry import element_class
from repro.packet import IPAddr, IPv4, TCP, UDP


@element_class()
class IPRewriter(Element):
    """``IPRewriter(NATIP)`` — stateful source NAT.

    * input/output 0 — *outbound*: rewrite the source address to NATIP
      and the source port to an allocated external port; remember the
      mapping.
    * input/output 1 — *inbound*: look up the destination port in the
      mapping table and rewrite destination address/port back to the
      internal endpoint.  Unknown inbound flows are dropped.

    Non-TCP/UDP packets pass through the outbound path with only the
    source address rewritten, and are dropped inbound (no mapping).

    Handlers: ``mappings`` (read, count), ``table`` (read, dump),
    ``flush`` (write).
    """

    INPUT_COUNT = 2
    OUTPUT_COUNT = 2
    INPUT_PERSONALITY = PUSH
    OUTPUT_PERSONALITY = PUSH

    FIRST_PORT = 10000

    def __init__(self, name: str, config: str = ""):
        super().__init__(name, config)
        self.nat_ip = IPAddr("0.0.0.0")
        # (proto, internal ip, internal port) -> external port
        self.out_map: Dict[Tuple[int, IPAddr, int], int] = {}
        # (proto, external port) -> (internal ip, internal port)
        self.in_map: Dict[Tuple[int, int], Tuple[IPAddr, int]] = {}
        self._next_port = self.FIRST_PORT
        self.inbound_drops = 0
        self.add_read_handler("mappings", lambda: len(self.out_map))
        self.add_read_handler("table", self._dump_table)
        self.add_read_handler("inbound_drops", lambda: self.inbound_drops)
        self.add_write_handler("flush", lambda _value: self._flush())

    def _flush(self) -> None:
        self.out_map.clear()
        self.in_map.clear()
        self._next_port = self.FIRST_PORT

    def _dump_table(self) -> str:
        lines = []
        for (proto, ip, port), ext_port in sorted(
                self.out_map.items(), key=lambda item: item[1]):
            lines.append("proto=%d %s:%d <-> %s:%d"
                         % (proto, ip, port, self.nat_ip, ext_port))
        return "\n".join(lines)

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        if len(args) != 1:
            raise ConfigError("%s: IPRewriter needs the NAT address"
                              % self.name)
        try:
            self.nat_ip = IPAddr(args[0])
        except ValueError as exc:
            raise ConfigError("%s: %s" % (self.name, exc))

    def _allocate(self, proto: int, ip: IPAddr, port: int) -> int:
        key = (proto, ip, port)
        ext_port = self.out_map.get(key)
        if ext_port is None:
            ext_port = self._next_port
            self._next_port += 1
            self.out_map[key] = ext_port
            self.in_map[(proto, ext_port)] = (ip, port)
        return ext_port

    @staticmethod
    def _l4(ip: IPv4):
        l4 = ip.find(TCP)
        if l4 is None:
            l4 = ip.find(UDP)
        return l4

    def push(self, port: int, packet: ClickPacket) -> None:
        eth = packet.eth()
        ip = eth.find(IPv4) if eth is not None else None
        if ip is None:
            if port == 0:
                self.output_push(0, packet)
            return
        l4 = self._l4(ip)
        if port == 0:
            ip.srcip = self.nat_ip if l4 is None else ip.srcip
            if l4 is not None:
                ext_port = self._allocate(ip.protocol, ip.srcip, l4.srcport)
                ip.srcip = self.nat_ip
                l4.srcport = ext_port
            else:
                ip.srcip = self.nat_ip
            packet.replace_header(eth)
            self.output_push(0, packet)
        else:
            if l4 is None:
                self.inbound_drops += 1
                return
            mapping = self.in_map.get((ip.protocol, l4.dstport))
            if mapping is None:
                self.inbound_drops += 1
                return
            internal_ip, internal_port = mapping
            ip.dstip = internal_ip
            l4.dstport = internal_port
            packet.replace_header(eth)
            self.output_push(1, packet)
