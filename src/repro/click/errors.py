"""Click subsystem exceptions."""


class ClickError(Exception):
    """Base class for Click-layer failures."""


class ConfigError(ClickError):
    """A router configuration could not be parsed or validated."""
