"""Parser for the Click configuration language (the subset ESCAPE needs).

Supported grammar::

    config      := statement (';' statement)* [';']
    statement   := declaration | connection | <empty>
    declaration := name (',' name)* '::' class ['(' args ')']
    connection  := endpoint ('->' endpoint)+
    endpoint    := ['[' int ']'] element ['[' int ']']
    element     := name                      -- previously declared
                 | class ['(' args ')']      -- anonymous inline element

plus ``//`` line comments and ``/* */`` block comments.  Anonymous
elements get Click-style generated names (``Counter@1``).  Argument
strings keep their raw text; splitting on top-level commas is done here,
per-argument interpretation is each element's job.

This mirrors enough of the real language that the catalog VNF configs in
:mod:`repro.core.catalog` are valid Click programs.
"""

import re
from typing import Dict, List, Optional, Tuple

from repro.click.errors import ConfigError


class ElementSpec:
    """A declared element: Click class name + raw config arguments."""

    def __init__(self, name: str, class_name: str, config: str = ""):
        self.name = name
        self.class_name = class_name
        self.config = config

    def config_args(self) -> List[str]:
        return split_args(self.config)

    def __repr__(self) -> str:
        return "ElementSpec(%s :: %s(%s))" % (self.name, self.class_name,
                                              self.config)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ElementSpec)
                and (self.name, self.class_name, self.config)
                == (other.name, other.class_name, other.config))


class ConnectionSpec:
    """A directed hookup: ``from[from_port] -> [to_port]to``."""

    def __init__(self, from_element: str, from_port: int,
                 to_element: str, to_port: int):
        self.from_element = from_element
        self.from_port = from_port
        self.to_element = to_element
        self.to_port = to_port

    def __repr__(self) -> str:
        return "ConnectionSpec(%s[%d] -> [%d]%s)" % (
            self.from_element, self.from_port, self.to_port, self.to_element)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ConnectionSpec)
                and (self.from_element, self.from_port,
                     self.to_element, self.to_port)
                == (other.from_element, other.from_port,
                    other.to_element, other.to_port))


class RouterConfig:
    """Parsed configuration: ordered element specs + connections."""

    def __init__(self):
        self.elements: Dict[str, ElementSpec] = {}
        self.connections: List[ConnectionSpec] = []
        self.elementclasses: Dict[str, str] = {}  # name -> body text

    def __repr__(self) -> str:
        return "RouterConfig(%d elements, %d connections)" % (
            len(self.elements), len(self.connections))


def strip_comments(text: str) -> str:
    """Remove ``//`` and ``/* */`` comments (strings are not special —
    the Click arg syntax has no quoted semicolons in our subset)."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def split_args(config: str) -> List[str]:
    """Split an argument string on top-level commas.

    Respects nesting in ``()``, ``[]`` and double quotes; trims
    whitespace; drops empty arguments.
    """
    args: List[str] = []
    depth = 0
    in_string = False
    current: List[str] = []
    for char in config:
        if in_string:
            current.append(char)
            if char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char in "([":
            depth += 1
            current.append(char)
        elif char in ")]":
            depth -= 1
            if depth < 0:
                raise ConfigError("unbalanced brackets in %r" % config)
            current.append(char)
        elif char == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0 or in_string:
        raise ConfigError("unbalanced brackets or quote in %r" % config)
    last = "".join(current).strip()
    if last:
        args.append(last)
    return [arg for arg in args if arg]


# -- tokenizer ----------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<arrow>->)
  | (?P<coloncolon>::)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_/@]*)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lparen>\()
  | (?P<lbrace>\{)
  | (?P<comma>,)
  | (?P<semi>;)
  | (?P<int>\d+)
  | (?P<ws>\s+)
""", re.VERBOSE)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConfigError("unexpected character %r at offset %d"
                              % (text[pos], pos))
        kind = match.lastgroup
        if kind == "lparen":
            # capture the balanced argument text raw
            depth = 1
            end = match.end()
            while end < len(text) and depth:
                if text[end] == "(":
                    depth += 1
                elif text[end] == ")":
                    depth -= 1
                end += 1
            if depth:
                raise ConfigError("unbalanced '(' at offset %d" % pos)
            tokens.append(("args", text[match.end():end - 1]))
            pos = end
            continue
        if kind == "lbrace":
            # capture a balanced elementclass body raw
            depth = 1
            end = match.end()
            while end < len(text) and depth:
                if text[end] == "{":
                    depth += 1
                elif text[end] == "}":
                    depth -= 1
                end += 1
            if depth:
                raise ConfigError("unbalanced '{' at offset %d" % pos)
            tokens.append(("body", text[match.end():end - 1]))
            pos = end
            continue
        if kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


COMPOUND_INPUT = "__CompoundInput__"
COMPOUND_OUTPUT = "__CompoundOutput__"


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]],
                 compound: bool = False,
                 elementclasses: Optional[Dict[str, str]] = None):
        self.tokens = tokens
        self.pos = 0
        self.config = RouterConfig()
        self.config.elementclasses.update(elementclasses or {})
        self._anon = 0
        if compound:
            # the pseudo ports of an elementclass body
            self.config.elements["input"] = ElementSpec(
                "input", COMPOUND_INPUT)
            self.config.elements["output"] = ElementSpec(
                "output", COMPOUND_OUTPUT)

    # token helpers
    def peek(self, offset: int = 0) -> Optional[Tuple[str, str]]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ConfigError("unexpected end of configuration")
        self.pos += 1
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise ConfigError("expected %s, got %r" % (kind, token[1]))
        return token[1]

    def accept(self, kind: str) -> Optional[str]:
        token = self.peek()
        if token is not None and token[0] == kind:
            self.pos += 1
            return token[1]
        return None

    # grammar
    def parse(self) -> RouterConfig:
        while self.peek() is not None:
            if self.accept("semi"):
                continue
            self.statement()
        return self.config

    def statement(self) -> None:
        token = self.peek()
        if token is not None and token == ("ident", "elementclass"):
            self.elementclass_definition()
            return
        # A comma before '::' (and before any '->') means a multi-name
        # declaration like ``a, b :: Counter;``.  Everything else is a
        # connection chain, whose endpoints may embed inline
        # declarations (``src :: Source(...) -> Counter -> sink``).
        offset = 0
        comma_declaration = False
        while True:
            token = self.peek(offset)
            if token is None or token[0] in ("semi", "arrow"):
                break
            if token[0] == "comma":
                comma_declaration = True
                break
            offset += 1
        if comma_declaration:
            self.declaration()
        else:
            self.connection()

    def elementclass_definition(self) -> None:
        self.expect("ident")  # the 'elementclass' keyword itself
        name = self.expect("ident")
        if name in self.config.elementclasses:
            raise ConfigError("elementclass %r defined twice" % name)
        kind, body = self.next()
        if kind != "body":
            raise ConfigError("elementclass %s: expected '{', got %r"
                              % (name, body))
        self.config.elementclasses[name] = body

    def declaration(self) -> None:
        names = [self.expect("ident")]
        while self.accept("comma"):
            names.append(self.expect("ident"))
        self.expect("coloncolon")
        class_name = self.expect("ident")
        config = self.accept("args") or ""
        for name in names:
            self._declare(name, class_name, config)

    def _declare(self, name: str, class_name: str, config: str) -> None:
        if name in self.config.elements:
            raise ConfigError("element %r declared twice" % name)
        self.config.elements[name] = ElementSpec(name, class_name,
                                                 config.strip())

    def _anonymous(self, class_name: str, config: str) -> str:
        self._anon += 1
        name = "%s@%d" % (class_name, self._anon)
        self._declare(name, class_name, config)
        return name

    def endpoint(self) -> Tuple[str, int, int, bool]:
        """Returns (element name, input port, output port, declared)."""
        declared = False
        in_port = 0
        if self.accept("lbracket"):
            in_port = int(self.expect("int"))
            self.expect("rbracket")
        ident = self.expect("ident")
        if self.accept("coloncolon"):
            # inline named declaration: name :: Class [args]
            class_name = self.expect("ident")
            config = self.accept("args") or ""
            self._declare(ident, class_name, config.strip())
            name = ident
            declared = True
        else:
            token = self.peek()
            if token is not None and token[0] == "args":
                name = self._anonymous(ident, self.next()[1])
                declared = True
            elif ident in self.config.elements:
                name = ident
            else:
                # bare class name used inline: anonymous, empty config.
                name = self._resolve_bare(ident)
                declared = True
        out_port = 0
        if self.accept("lbracket"):
            out_port = int(self.expect("int"))
            self.expect("rbracket")
        return name, in_port, out_port, declared

    def _resolve_bare(self, ident: str) -> str:
        from repro.click.registry import _REGISTRY
        if ident in _REGISTRY or ident in self.config.elementclasses:
            return self._anonymous(ident, "")
        raise ConfigError("reference to undeclared element %r" % ident)

    def connection(self) -> None:
        name, _in, out_port, declared = self.endpoint()
        prev = (name, out_port)
        hops = 0
        while self.accept("arrow"):
            name, in_port, out_port, _ = self.endpoint()
            self.config.connections.append(
                ConnectionSpec(prev[0], prev[1], name, in_port))
            prev = (name, out_port)
            hops += 1
        if hops == 0 and not declared:
            raise ConfigError("statement is neither a declaration nor a "
                              "connection (element %r alone)" % name)


def parse_config(text: str) -> RouterConfig:
    """Parse Click configuration ``text`` into a :class:`RouterConfig`.

    ``elementclass`` compound definitions are expanded in place: every
    instance is inlined with ``instance/inner`` element names, and its
    ``input[i]`` / ``output[j]`` pseudo ports are spliced to the outer
    connections, exactly like Click's macro expansion.
    """
    config = _Parser(_tokenize(strip_comments(text))).parse()
    _expand_compounds(config, {}, 0)
    return config


def _expand_compounds(config: RouterConfig, inherited: Dict[str, str],
                      depth: int) -> None:
    env = dict(inherited)
    env.update(config.elementclasses)
    if depth > 16:
        raise ConfigError("elementclass nesting too deep (recursive?)")
    while True:
        spec = next((candidate for candidate in config.elements.values()
                     if candidate.class_name in env), None)
        if spec is None:
            return
        _inline_compound(config, spec, env, depth)


def _split_compound_params(body: str) -> Tuple[List[str], str]:
    """Split an optional ``$a, $b |`` parameter prologue off a body."""
    bar = body.find("|")
    if bar < 0:
        return [], body
    head = body[:bar].strip()
    if not head or not head.startswith("$"):
        return [], body
    params = []
    for token in head.split(","):
        token = token.strip()
        if not token.startswith("$") or len(token) < 2:
            return [], body  # not a parameter prologue after all
        params.append(token)
    return params, body[bar + 1:]


def _substitute_params(body: str, params: List[str],
                       values: List[str], context: str) -> str:
    if len(values) != len(params):
        raise ConfigError(
            "%s: elementclass takes %d parameter(s) (%s), got %d"
            % (context, len(params), ", ".join(params), len(values)))
    # longest names first so $rate2 is not clobbered by $rate
    for name, value in sorted(zip(params, values),
                              key=lambda item: -len(item[0])):
        body = body.replace(name, value)
    if "$" in body:
        raise ConfigError("%s: unbound $-parameter remains in body"
                          % context)
    return body


def _inline_compound(config: RouterConfig, spec: ElementSpec,
                     env: Dict[str, str], depth: int) -> None:
    params, body_text = _split_compound_params(env[spec.class_name])
    values = spec.config_args() if spec.config else []
    if params or values:
        body_text = _substitute_params(body_text, params, values,
                                       "%s (%s)" % (spec.name,
                                                    spec.class_name))
    body = _Parser(_tokenize(strip_comments(body_text)),
                   compound=True, elementclasses=env).parse()
    _expand_compounds(body, env, depth + 1)
    prefix = spec.name + "/"

    # inline the body's real elements
    for inner in body.elements.values():
        if inner.class_name in (COMPOUND_INPUT, COMPOUND_OUTPUT):
            continue
        config.elements[prefix + inner.name] = ElementSpec(
            prefix + inner.name, inner.class_name, inner.config)

    # classify the body's connections
    in_bindings: Dict[int, List[Tuple[str, int]]] = {}
    out_bindings: Dict[int, List[Tuple[str, int]]] = {}
    passthrough: List[Tuple[int, int]] = []
    for conn in body.connections:
        from_pseudo = conn.from_element == "input"
        to_pseudo = conn.to_element == "output"
        if from_pseudo and to_pseudo:
            passthrough.append((conn.from_port, conn.to_port))
        elif from_pseudo:
            in_bindings.setdefault(conn.from_port, []).append(
                (prefix + conn.to_element, conn.to_port))
        elif to_pseudo:
            out_bindings.setdefault(conn.to_port, []).append(
                (prefix + conn.from_element, conn.from_port))
        elif conn.to_element == "input" or conn.from_element == "output":
            raise ConfigError(
                "elementclass %s: 'input' has no inputs and 'output' "
                "has no outputs" % spec.class_name)
        else:
            config.connections.append(ConnectionSpec(
                prefix + conn.from_element, conn.from_port,
                prefix + conn.to_element, conn.to_port))

    # collect + strip the outer connections touching the instance
    del config.elements[spec.name]
    outer_in: Dict[int, List[Tuple[str, int]]] = {}
    outer_out: Dict[int, List[Tuple[str, int]]] = {}
    remaining: List[ConnectionSpec] = []
    for conn in config.connections:
        touches = False
        if conn.to_element == spec.name:
            outer_in.setdefault(conn.to_port, []).append(
                (conn.from_element, conn.from_port))
            touches = True
        if conn.from_element == spec.name:
            outer_out.setdefault(conn.from_port, []).append(
                (conn.to_element, conn.to_port))
            touches = True
        if not touches:
            remaining.append(conn)
    config.connections = remaining

    # splice: outer feeders -> internal input bindings (+ passthrough)
    for port, feeders in outer_in.items():
        targets = list(in_bindings.get(port, []))
        pass_targets = []
        for in_port, out_port in passthrough:
            if in_port == port:
                pass_targets.extend(outer_out.get(out_port, []))
        if not targets and not pass_targets:
            raise ConfigError(
                "%s (%s) has no input port %d"
                % (spec.name, spec.class_name, port))
        for from_element, from_port in feeders:
            for to_element, to_port in targets + pass_targets:
                config.connections.append(ConnectionSpec(
                    from_element, from_port, to_element, to_port))

    # splice: internal output bindings -> outer consumers
    for port, consumers in outer_out.items():
        sources = out_bindings.get(port, [])
        fed_by_passthrough = any(out_port == port
                                 for _in, out_port in passthrough)
        if not sources and not fed_by_passthrough:
            raise ConfigError(
                "%s (%s) has no output port %d"
                % (spec.name, spec.class_name, port))
        for from_element, from_port in sources:
            for to_element, to_port in consumers:
                config.connections.append(ConnectionSpec(
                    from_element, from_port, to_element, to_port))
