"""Element base class: ports, processing personalities, handlers.

Click's processing model has two packet-transfer disciplines:

* **push** — the upstream element calls ``downstream.push(port, pkt)``,
* **pull** — the downstream element calls ``upstream.pull(port)``.

Every port has a *personality*: PUSH, PULL, or AGNOSTIC.  Agnostic
elements (e.g. ``Counter``) work either way; the router resolves their
effective direction from their neighbours at configuration time and
rejects graphs that connect a push output to a pull input without a
queue in between — the same check real Click performs.
"""

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.click.errors import ClickError, ConfigError
from repro.click.packet import ClickPacket

PUSH = "push"
PULL = "pull"
AGNOSTIC = "agnostic"


class HandlerError(ClickError):
    """A handler does not exist or rejected its input."""


class Notifier:
    """Edge-triggered activity signal on a PULL path (Click's
    empty-note).

    A pull *driver* (``Unqueue``, pull-mode ``ToDevice``…) used to poll
    its upstream on a fixed timer; with a notifier it can park: the
    queue that owns the notifier calls :meth:`wake` on its 0→1 push
    transition and :meth:`sleep` when a pull drains it.  Listeners are
    plain callables invoked synchronously on the inactive→active edge
    only — re-waking an already active notifier costs one attribute
    check, so the push hot path stays flat once a consumer is behind.

    Pass-through pull elements (``Shaper``, pull-path ``Counter``…)
    don't own a notifier: they *forward* their upstream's (see
    ``Element.output_notifier``), so a driver always listens to the
    queue at the head of its pull chain.
    """

    __slots__ = ("active", "_listeners")

    def __init__(self, active: bool = False):
        self.active = active
        self._listeners: List[Callable[[], None]] = []

    def listen(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` for inactive→active edges."""
        if callback not in self._listeners:
            self._listeners.append(callback)

    def unlisten(self, callback: Callable[[], None]) -> None:
        if callback in self._listeners:
            self._listeners.remove(callback)

    def wake(self) -> None:
        """Mark active; fire listeners on the edge only."""
        if self.active:
            return
        self.active = True
        for callback in self._listeners:
            callback()

    def sleep(self) -> None:
        """Mark inactive (listeners are not told; they find out by
        pulling None or by checking :attr:`active`)."""
        self.active = False

    def __repr__(self) -> str:
        return "Notifier(%s, %d listener(s))" % (
            "active" if self.active else "idle", len(self._listeners))


class PullActivation:
    """Sleep/wake scheduling for one pull consumer (``Unqueue``,
    pull-mode ``ToDevice``/``Discard``).

    Owns the consumer's re-armable :class:`repro.sim.Wakeup` and its
    subscription to the upstream notifier.  The consumer's drain
    callback ends by calling :meth:`reschedule` (or the lower-level
    :meth:`poll`/:meth:`park`/:meth:`wake_at`), which picks the next
    activation:

    * upstream notifier inactive → **park** (zero events until the
      queue's 0→1 push transition wakes us),
    * burst exhausted with more queued → **continuation shot** at the
      current instant (packet trains; FIFO seq keeps it deterministic),
    * blocked by a rate limiter → one **exact shot** at its pull hint,
    * no notifier at all → legacy blind **poll** every ``interval``.

    ``floor`` (optional callable → absolute sim time) is the earliest
    useful activation — a rated driver returns its next credit instant
    so wakes never fire before credit accrues.  Wakeups and polls are
    counted into the always-on ``DispatchAccounting`` so the
    event-driven win stays attributable.
    """

    __slots__ = ("element", "fire", "port", "interval", "floor",
                 "notifier", "wakeup", "sim")

    def __init__(self, element: "Element", fire: Callable[[], None],
                 port: int = 0, interval: float = 1e-5,
                 floor: Optional[Callable[[], float]] = None):
        self.element = element
        self.fire = fire
        self.port = port
        self.interval = interval
        self.floor = floor
        self.notifier: Optional[Notifier] = None
        self.wakeup = None
        self.sim = None

    # -- lifecycle (initialize/cleanup of the owning element) ---------------

    def start(self) -> None:
        sim = self.element.router.sim
        self.sim = sim
        self.wakeup = sim.wakeup(self.fire)
        self.notifier = self.element.input_notifier(self.port)
        if self.notifier is None:
            self.poll()
            return
        self.notifier.listen(self._on_wake)
        if self.notifier.active:
            self._on_wake()
        # else parked: the first push transition wakes us

    def stop(self) -> None:
        if self.notifier is not None:
            self.notifier.unlisten(self._on_wake)
            self.notifier = None
        if self.wakeup is not None:
            self.wakeup.disarm()
            self.wakeup = None

    # -- activation primitives ----------------------------------------------

    def _target(self) -> float:
        """Earliest useful fire time: now, raised to the floor."""
        now = self.sim.now
        if self.floor is not None:
            floor = self.floor()
            if floor > now:
                return floor
        return now

    def _on_wake(self) -> None:
        """Upstream went non-empty: schedule a drain (never pull
        synchronously from inside the producer's push)."""
        self.sim.accounting.wakeups += 1
        self.wakeup.arm_before(self._target())

    def wake_at(self, when: float) -> None:
        """One exact event-driven shot (hint, credit instant,
        continuation train), clamped to the floor and to now."""
        floor = self._target()
        if when < floor:
            when = floor
        self.sim.accounting.wakeups += 1
        self.wakeup.arm_at(when)

    def poll(self) -> None:
        """Legacy blind re-arm after ``interval`` (no notifier, or no
        usable hint)."""
        self.sim.accounting.polls += 1
        self.wakeup.arm(self.interval)

    def park(self) -> None:
        self.wakeup.disarm()

    # -- the standard post-drain decision ------------------------------------

    def reschedule(self, exhausted_burst: bool) -> None:
        notifier = self.notifier
        if notifier is None:
            self.poll()
            return
        if not notifier.active:
            self.park()
            return
        if exhausted_burst:
            # more queued than one burst: continuation shot, same
            # timestamp (a packet train in slices)
            self.wake_at(self._target())
            return
        # upstream active but the pull came back empty: a rate stage is
        # holding packets back — fire exactly when it says
        hint = self.element.input_hint(self.port)
        if hint is not None and hint > self.sim.now:
            self.wake_at(hint)
        else:
            self.poll()

    def __repr__(self) -> str:
        return "PullActivation(%s[%d], %s)" % (
            self.element.name, self.port,
            self.notifier if self.notifier is not None else "no notifier")


class Port:
    """One endpoint of an element; wired to peer port(s) by the router.

    Click allows fan-in on push inputs (several upstream outputs feeding
    one input), so an input port keeps a *list* of peers; an output port
    has at most one.  ``peer`` exposes the single/first peer for the
    pull path.
    """

    __slots__ = ("element", "index", "is_input", "personality", "peers",
                 "resolved")

    def __init__(self, element: "Element", index: int, is_input: bool,
                 personality: str):
        self.element = element
        self.index = index
        self.is_input = is_input
        self.personality = personality
        self.resolved: Optional[str] = None  # PUSH or PULL after analysis
        self.peers: List["Port"] = []

    @property
    def peer(self) -> Optional["Port"]:
        return self.peers[0] if self.peers else None

    @peer.setter
    def peer(self, port: Optional["Port"]) -> None:
        self.peers = [port] if port is not None else []

    @property
    def connected(self) -> bool:
        return bool(self.peers)

    def __repr__(self) -> str:
        direction = "in" if self.is_input else "out"
        return "Port(%s[%d] %s/%s)" % (self.element.name, self.index,
                                       direction,
                                       self.resolved or self.personality)


class Element:
    """Base class for all Click elements.

    Subclasses declare their port layout via class attributes:

    * ``INPUT_COUNT`` / ``OUTPUT_COUNT`` — fixed counts, or ``None`` for
      "any number" (resolved from the configuration's connections),
    * ``INPUT_PERSONALITY`` / ``OUTPUT_PERSONALITY`` — PUSH / PULL /
      AGNOSTIC applied to every port of that side,

    and implement :meth:`configure` (parse the config-string arguments),
    :meth:`push` and/or :meth:`pull`, and optionally :meth:`initialize`
    (called once the graph is wired, with the router available).
    """

    INPUT_COUNT: Optional[int] = 1
    OUTPUT_COUNT: Optional[int] = 1
    INPUT_PERSONALITY = AGNOSTIC
    OUTPUT_PERSONALITY = AGNOSTIC

    def __init__(self, name: str, config: str = ""):
        self.name = name
        self.config = config
        self.router = None  # set by Router
        self.inputs: List[Port] = []
        self.outputs: List[Port] = []
        self._read_handlers: Dict[str, Callable[[], str]] = {}
        self._write_handlers: Dict[str, Callable[[str], None]] = {}
        # per-element transfer counters (hot path: plain ints, pulled
        # into the telemetry registry by a snapshot-time collector)
        self.pushed_count = 0
        self.pulled_count = 0
        # profiler/flowtrace handles bound once; each disabled path
        # costs one attribute check per transfer
        self._profiler = telemetry.current().profiler
        self._flowtrace = telemetry.current().flowtrace
        self.add_read_handler("config", lambda: self.config)
        self.add_read_handler("class", lambda: type(self).__name__)

    # -- lifecycle ---------------------------------------------------------

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        """Parse configuration arguments.  Default: reject any."""
        if args or keywords:
            raise ConfigError("%s: unexpected configuration %r %r"
                              % (self.name, args, keywords))

    def initialize(self) -> None:
        """Called once ports are wired and ``self.router`` is set."""

    def cleanup(self) -> None:
        """Called when the router stops."""

    # -- port construction (router-internal) -------------------------------

    def _build_ports(self, n_inputs: int, n_outputs: int) -> None:
        self.inputs = [Port(self, i, True, self.INPUT_PERSONALITY)
                       for i in range(n_inputs)]
        self.outputs = [Port(self, i, False, self.OUTPUT_PERSONALITY)
                        for i in range(n_outputs)]

    @property
    def ninputs(self) -> int:
        return len(self.inputs)

    @property
    def noutputs(self) -> int:
        return len(self.outputs)

    # -- packet transfer ----------------------------------------------------

    def push(self, port: int, packet: ClickPacket) -> None:
        """Receive a pushed packet on input ``port``."""
        raise ClickError("%s (%s) does not support push"
                         % (self.name, type(self).__name__))

    def pull(self, port: int) -> Optional[ClickPacket]:
        """Produce a packet for output ``port`` (None when empty)."""
        raise ClickError("%s (%s) does not support pull"
                         % (self.name, type(self).__name__))

    def output_push(self, port: int, packet: ClickPacket) -> None:
        """Push ``packet`` out of output ``port`` to the wired peer."""
        out = self.outputs[port]
        if out.peer is None:
            return  # unconnected output silently drops, like Idle
        self.pushed_count += 1
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("click.element.push"):
                out.peer.element.push(out.peer.index, packet)
        else:
            out.peer.element.push(out.peer.index, packet)

    def input_pull(self, port: int) -> Optional[ClickPacket]:
        """Pull a packet from whatever feeds input ``port``."""
        inp = self.inputs[port]
        if inp.peer is None:
            return None
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("click.element.pull"):
                packet = inp.peer.element.pull(inp.peer.index)
        else:
            packet = inp.peer.element.pull(inp.peer.index)
        if packet is not None:
            self.pulled_count += 1
        return packet

    # -- pull-path activation (notifiers, sleep hints, backpressure) --------

    def output_notifier(self, port: int) -> Optional[Notifier]:
        """The :class:`Notifier` signalling that output ``port`` may
        have packets to pull.

        ``None`` means "unknown — poll me".  Queues own and return
        their notifier; one-input pass-through elements (``Counter``,
        ``Shaper``, ``Tee``…) forward their upstream's by default, so a
        driver always ends up listening to the queue at the head of its
        pull chain.
        """
        if len(self.inputs) == 1:
            return self.input_notifier(0)
        return None

    def input_notifier(self, port: int) -> Optional[Notifier]:
        """Forwarding helper: the notifier of whatever feeds input
        ``port``."""
        inp = self.inputs[port]
        peer = inp.peer
        if peer is None:
            return None
        return peer.element.output_notifier(peer.index)

    def pull_hint(self, port: int) -> Optional[float]:
        """Earliest simulated time a pull on output ``port`` can
        succeed, or ``None`` for "whenever the notifier wakes".

        Rate limiters know this exactly (``Shaper._next_allowed``,
        token refill instants, ``DelayQueue`` head age-out); a driver
        blocked on an *active* upstream schedules one shot at the hint
        instead of polling every tick.  One-input pass-throughs forward
        upstream's hint by default; constrained elements combine it
        with their own.
        """
        if len(self.inputs) == 1:
            return self.input_hint(0)
        return None

    def input_hint(self, port: int) -> Optional[float]:
        """Forwarding helper: the pull hint of whatever feeds input
        ``port``."""
        inp = self.inputs[port]
        peer = inp.peer
        if peer is None:
            return None
        return peer.element.pull_hint(peer.index)

    def accepts_push(self, port: int) -> bool:
        """Would a packet pushed into input ``port`` right now be
        accepted rather than dropped?  Tail-drop queues answer from
        their fill level; one-output pass-throughs ask downstream;
        everything else is optimistic.  This is a *hint* for source
        backpressure, not a guarantee."""
        if len(self.outputs) == 1:
            return self.downstream_accepts(0)
        return True

    def downstream_accepts(self, port: int) -> bool:
        """Backpressure helper: does output ``port``'s peer currently
        accept pushes?  Unconnected outputs drop silently, so they
        "accept" everything."""
        out = self.outputs[port]
        peer = out.peer
        if peer is None:
            return True
        return peer.element.accepts_push(peer.index)

    # -- handlers ------------------------------------------------------------

    def add_read_handler(self, name: str, func: Callable[[], Any]) -> None:
        self._read_handlers[name] = func

    def add_write_handler(self, name: str,
                          func: Callable[[str], None]) -> None:
        self._write_handlers[name] = func

    def read_handler(self, name: str) -> str:
        func = self._read_handlers.get(name)
        if func is None:
            raise HandlerError("%s has no read handler %r" % (self.name, name))
        return str(func())

    def write_handler(self, name: str, value: str) -> None:
        func = self._write_handlers.get(name)
        if func is None:
            raise HandlerError("%s has no write handler %r"
                               % (self.name, name))
        func(value)

    def handler_names(self) -> Tuple[List[str], List[str]]:
        """(read handler names, write handler names), sorted."""
        return (sorted(self._read_handlers), sorted(self._write_handlers))

    # -- config-string helpers -----------------------------------------------

    @staticmethod
    def parse_keywords(args: List[str],
                       keys: List[str]) -> Tuple[List[str], Dict[str, str]]:
        """Split Click-style positional args from ``KEY value`` pairs.

        Click configurations mix positionals with all-caps keywords:
        ``RatedSource(DATA xyz, RATE 10, LIMIT -1)``.  ``keys`` lists the
        recognised keyword names.
        """
        positionals: List[str] = []
        keywords: Dict[str, str] = {}
        for arg in args:
            head, _, tail = arg.partition(" ")
            if head in keys:
                keywords[head] = tail.strip()
            else:
                positionals.append(arg)
        return positionals, keywords

    @staticmethod
    def parse_bool(text: str) -> bool:
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise ConfigError("not a boolean: %r" % text)

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.name)
