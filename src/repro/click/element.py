"""Element base class: ports, processing personalities, handlers.

Click's processing model has two packet-transfer disciplines:

* **push** — the upstream element calls ``downstream.push(port, pkt)``,
* **pull** — the downstream element calls ``upstream.pull(port)``.

Every port has a *personality*: PUSH, PULL, or AGNOSTIC.  Agnostic
elements (e.g. ``Counter``) work either way; the router resolves their
effective direction from their neighbours at configuration time and
rejects graphs that connect a push output to a pull input without a
queue in between — the same check real Click performs.
"""

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.click.errors import ClickError, ConfigError
from repro.click.packet import ClickPacket

PUSH = "push"
PULL = "pull"
AGNOSTIC = "agnostic"


class HandlerError(ClickError):
    """A handler does not exist or rejected its input."""


class Port:
    """One endpoint of an element; wired to peer port(s) by the router.

    Click allows fan-in on push inputs (several upstream outputs feeding
    one input), so an input port keeps a *list* of peers; an output port
    has at most one.  ``peer`` exposes the single/first peer for the
    pull path.
    """

    __slots__ = ("element", "index", "is_input", "personality", "peers",
                 "resolved")

    def __init__(self, element: "Element", index: int, is_input: bool,
                 personality: str):
        self.element = element
        self.index = index
        self.is_input = is_input
        self.personality = personality
        self.resolved: Optional[str] = None  # PUSH or PULL after analysis
        self.peers: List["Port"] = []

    @property
    def peer(self) -> Optional["Port"]:
        return self.peers[0] if self.peers else None

    @peer.setter
    def peer(self, port: Optional["Port"]) -> None:
        self.peers = [port] if port is not None else []

    @property
    def connected(self) -> bool:
        return bool(self.peers)

    def __repr__(self) -> str:
        direction = "in" if self.is_input else "out"
        return "Port(%s[%d] %s/%s)" % (self.element.name, self.index,
                                       direction,
                                       self.resolved or self.personality)


class Element:
    """Base class for all Click elements.

    Subclasses declare their port layout via class attributes:

    * ``INPUT_COUNT`` / ``OUTPUT_COUNT`` — fixed counts, or ``None`` for
      "any number" (resolved from the configuration's connections),
    * ``INPUT_PERSONALITY`` / ``OUTPUT_PERSONALITY`` — PUSH / PULL /
      AGNOSTIC applied to every port of that side,

    and implement :meth:`configure` (parse the config-string arguments),
    :meth:`push` and/or :meth:`pull`, and optionally :meth:`initialize`
    (called once the graph is wired, with the router available).
    """

    INPUT_COUNT: Optional[int] = 1
    OUTPUT_COUNT: Optional[int] = 1
    INPUT_PERSONALITY = AGNOSTIC
    OUTPUT_PERSONALITY = AGNOSTIC

    def __init__(self, name: str, config: str = ""):
        self.name = name
        self.config = config
        self.router = None  # set by Router
        self.inputs: List[Port] = []
        self.outputs: List[Port] = []
        self._read_handlers: Dict[str, Callable[[], str]] = {}
        self._write_handlers: Dict[str, Callable[[str], None]] = {}
        # per-element transfer counters (hot path: plain ints, pulled
        # into the telemetry registry by a snapshot-time collector)
        self.pushed_count = 0
        self.pulled_count = 0
        # profiler handle bound once; the disabled path costs one
        # attribute check per transfer
        self._profiler = telemetry.current().profiler
        self.add_read_handler("config", lambda: self.config)
        self.add_read_handler("class", lambda: type(self).__name__)

    # -- lifecycle ---------------------------------------------------------

    def configure(self, args: List[str], keywords: Dict[str, str]) -> None:
        """Parse configuration arguments.  Default: reject any."""
        if args or keywords:
            raise ConfigError("%s: unexpected configuration %r %r"
                              % (self.name, args, keywords))

    def initialize(self) -> None:
        """Called once ports are wired and ``self.router`` is set."""

    def cleanup(self) -> None:
        """Called when the router stops."""

    # -- port construction (router-internal) -------------------------------

    def _build_ports(self, n_inputs: int, n_outputs: int) -> None:
        self.inputs = [Port(self, i, True, self.INPUT_PERSONALITY)
                       for i in range(n_inputs)]
        self.outputs = [Port(self, i, False, self.OUTPUT_PERSONALITY)
                        for i in range(n_outputs)]

    @property
    def ninputs(self) -> int:
        return len(self.inputs)

    @property
    def noutputs(self) -> int:
        return len(self.outputs)

    # -- packet transfer ----------------------------------------------------

    def push(self, port: int, packet: ClickPacket) -> None:
        """Receive a pushed packet on input ``port``."""
        raise ClickError("%s (%s) does not support push"
                         % (self.name, type(self).__name__))

    def pull(self, port: int) -> Optional[ClickPacket]:
        """Produce a packet for output ``port`` (None when empty)."""
        raise ClickError("%s (%s) does not support pull"
                         % (self.name, type(self).__name__))

    def output_push(self, port: int, packet: ClickPacket) -> None:
        """Push ``packet`` out of output ``port`` to the wired peer."""
        out = self.outputs[port]
        if out.peer is None:
            return  # unconnected output silently drops, like Idle
        self.pushed_count += 1
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("click.element.push"):
                out.peer.element.push(out.peer.index, packet)
        else:
            out.peer.element.push(out.peer.index, packet)

    def input_pull(self, port: int) -> Optional[ClickPacket]:
        """Pull a packet from whatever feeds input ``port``."""
        inp = self.inputs[port]
        if inp.peer is None:
            return None
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("click.element.pull"):
                packet = inp.peer.element.pull(inp.peer.index)
        else:
            packet = inp.peer.element.pull(inp.peer.index)
        if packet is not None:
            self.pulled_count += 1
        return packet

    # -- handlers ------------------------------------------------------------

    def add_read_handler(self, name: str, func: Callable[[], Any]) -> None:
        self._read_handlers[name] = func

    def add_write_handler(self, name: str,
                          func: Callable[[str], None]) -> None:
        self._write_handlers[name] = func

    def read_handler(self, name: str) -> str:
        func = self._read_handlers.get(name)
        if func is None:
            raise HandlerError("%s has no read handler %r" % (self.name, name))
        return str(func())

    def write_handler(self, name: str, value: str) -> None:
        func = self._write_handlers.get(name)
        if func is None:
            raise HandlerError("%s has no write handler %r"
                               % (self.name, name))
        func(value)

    def handler_names(self) -> Tuple[List[str], List[str]]:
        """(read handler names, write handler names), sorted."""
        return (sorted(self._read_handlers), sorted(self._write_handlers))

    # -- config-string helpers -----------------------------------------------

    @staticmethod
    def parse_keywords(args: List[str],
                       keys: List[str]) -> Tuple[List[str], Dict[str, str]]:
        """Split Click-style positional args from ``KEY value`` pairs.

        Click configurations mix positionals with all-caps keywords:
        ``RatedSource(DATA xyz, RATE 10, LIMIT -1)``.  ``keys`` lists the
        recognised keyword names.
        """
        positionals: List[str] = []
        keywords: Dict[str, str] = {}
        for arg in args:
            head, _, tail = arg.partition(" ")
            if head in keys:
                keywords[head] = tail.strip()
            else:
                positionals.append(arg)
        return positionals, keywords

    @staticmethod
    def parse_bool(text: str) -> bool:
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise ConfigError("not a boolean: %r" % text)

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.name)
