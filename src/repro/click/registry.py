"""Global registry mapping Click element class names to Python classes."""

from typing import Dict, List, Type

from repro.click.element import Element
from repro.click.errors import ConfigError

_REGISTRY: Dict[str, Type[Element]] = {}


def element_class(name: str = None):
    """Class decorator registering an :class:`Element` subclass.

    The Click-language name defaults to the Python class name::

        @element_class()
        class Counter(Element): ...
    """
    def register(cls: Type[Element]) -> Type[Element]:
        click_name = name or cls.__name__
        existing = _REGISTRY.get(click_name)
        if existing is not None and existing is not cls:
            raise ConfigError("element class %r already registered to %r"
                              % (click_name, existing))
        _REGISTRY[click_name] = cls
        return cls
    return register


def lookup_element(name: str) -> Type[Element]:
    """The registered class for ``name``; raises ConfigError if unknown."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ConfigError("unknown element class %r" % name)
    return cls


def registered_elements() -> List[str]:
    """Sorted list of every registered element class name."""
    return sorted(_REGISTRY)
