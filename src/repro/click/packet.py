"""The packet object flowing between Click elements.

Click elements operate on raw frame bytes (so ``Strip``/``EtherEncap``
keep their usual semantics) but frequently need parsed header views and
per-packet annotations (paint, timestamps).  :class:`ClickPacket` wraps
the bytes with a lazily-parsed header cache and an annotation dict.
"""

from typing import Any, Dict, Optional

from repro.packet import Ethernet, IPv4, TCP, UDP
from repro.packet.base import Header, PacketError


class ClickPacket:
    """Raw bytes + annotations, with cached parsed views.

    Mutating :attr:`data` invalidates the cache automatically because the
    cache is keyed on the bytes object identity.
    """

    __slots__ = ("_data", "anno", "timestamp", "_parsed", "_parsed_for")

    def __init__(self, data: bytes = b"",
                 anno: Optional[Dict[str, Any]] = None,
                 timestamp: float = 0.0):
        self._data = bytes(data)
        self.anno: Dict[str, Any] = dict(anno or {})
        self.timestamp = timestamp
        self._parsed: Optional[Header] = None
        self._parsed_for: Optional[bytes] = None

    @classmethod
    def from_header(cls, header: Header, timestamp: float = 0.0,
                    anno: Optional[Dict[str, Any]] = None) -> "ClickPacket":
        return cls(header.pack(), anno=anno, timestamp=timestamp)

    @property
    def data(self) -> bytes:
        return self._data

    @data.setter
    def data(self, value: bytes) -> None:
        self._data = bytes(value)

    def __len__(self) -> int:
        return len(self._data)

    # -- parsed views ------------------------------------------------------

    def parsed(self) -> Optional[Header]:
        """The frame parsed as Ethernet, or None when unparseable."""
        if self._parsed_for is not self._data:
            try:
                self._parsed = Ethernet.unpack(self._data)
            except PacketError:
                self._parsed = None
            self._parsed_for = self._data
        return self._parsed

    def eth(self) -> Optional[Ethernet]:
        parsed = self.parsed()
        return parsed if isinstance(parsed, Ethernet) else None

    def ip(self) -> Optional[IPv4]:
        parsed = self.parsed()
        return parsed.find(IPv4) if parsed is not None else None

    def udp(self) -> Optional[UDP]:
        parsed = self.parsed()
        return parsed.find(UDP) if parsed is not None else None

    def tcp(self) -> Optional[TCP]:
        parsed = self.parsed()
        return parsed.find(TCP) if parsed is not None else None

    def replace_header(self, header: Header) -> None:
        """Re-serialize ``header`` into this packet's bytes."""
        self._data = header.pack()

    # -- annotations --------------------------------------------------------

    @property
    def paint(self) -> int:
        return self.anno.get("paint", 0)

    @paint.setter
    def paint(self, color: int) -> None:
        self.anno["paint"] = color

    def clone(self) -> "ClickPacket":
        """Copy for Tee-style fan-out; annotations are shallow-copied."""
        return ClickPacket(self._data, anno=dict(self.anno),
                           timestamp=self.timestamp)

    def __repr__(self) -> str:
        return "ClickPacket(%d bytes, anno=%r)" % (len(self._data), self.anno)
