"""Click modular router, in Python.

The paper implements VNFs as Click configurations, manages them through
NETCONF, and monitors them with Clicky (which reads Click *handlers*).
This package reproduces the Click programming model:

* :class:`Element` — processing stage with push/pull ports and
  read/write handlers,
* the Click configuration language parser
  (``src :: RatedSource(10); src -> Counter -> Discard;``),
* :class:`Router` — builds the element graph from a config, validates
  port personalities, drives pull paths as simulator tasks, and exposes
  the ``element.handler`` namespace Clicky polls,
* an element library covering the catalog the paper's VNFs need
  (classifiers, queues, shapers, counters, NAT, firewall, DPI, splicing
  to emulated network devices).

Example::

    from repro.sim import Simulator
    from repro.click import Router

    sim = Simulator()
    router = Router.from_config(
        "src :: InfiniteSource(DATA abc, LIMIT 5)"
        " -> cnt :: Counter -> Discard;", sim=sim)
    router.start()
    sim.run(until=1.0)
    assert router.read_handler("cnt.count") == "5"
"""

from repro.click.element import (AGNOSTIC, PULL, PUSH, Element,
                                 HandlerError, Port)
from repro.click.errors import ClickError, ConfigError
from repro.click.packet import ClickPacket
from repro.click.parser import (ConnectionSpec, ElementSpec,
                                RouterConfig, parse_config)
from repro.click.registry import (element_class, lookup_element,
                                  registered_elements)
from repro.click.router import Router

# Importing the library registers every stock element class.
from repro.click import elements  # noqa: F401  (import for side effect)

__all__ = [
    "AGNOSTIC",
    "ClickError",
    "ClickPacket",
    "ConfigError",
    "ConnectionSpec",
    "Element",
    "ElementSpec",
    "HandlerError",
    "PULL",
    "PUSH",
    "Port",
    "Router",
    "RouterConfig",
    "element_class",
    "lookup_element",
    "parse_config",
    "registered_elements",
]
