"""Router: instantiate, wire, validate and drive a Click element graph."""

from typing import Dict, List, Optional, Tuple

from repro.click.element import AGNOSTIC, PULL, PUSH, Element, HandlerError
from repro.click.errors import ConfigError
from repro.click.parser import RouterConfig, parse_config
from repro.click.registry import lookup_element
from repro.sim import Simulator


class Router:
    """A running Click configuration.

    Construction wires the element graph and performs the same static
    checks real Click does: port counts, no dangling ports, and
    push/pull personality consistency (a push output may not feed a pull
    input directly — a queue is required at every such boundary).
    """

    def __init__(self, config: RouterConfig, sim: Optional[Simulator] = None,
                 name: str = "router"):
        self.name = name
        self.sim = sim or Simulator()
        self.config = config
        self.elements: Dict[str, Element] = {}
        self.running = False
        self._instantiate()
        self._wire()
        self._resolve_personalities()
        self._check_connected()

    @classmethod
    def from_config(cls, text: str, sim: Optional[Simulator] = None,
                    name: str = "router") -> "Router":
        """Parse Click-language ``text`` and build the router."""
        return cls(parse_config(text), sim=sim, name=name)

    # -- construction ------------------------------------------------------

    def _instantiate(self) -> None:
        for spec in self.config.elements.values():
            element_cls = lookup_element(spec.class_name)
            element = element_cls(spec.name, spec.config)
            element.router = self
            try:
                element.configure(spec.config_args(), {})
            except (ValueError, TypeError) as exc:
                raise ConfigError("%s (%s): bad configuration: %s"
                                  % (spec.name, spec.class_name, exc))
            self.elements[spec.name] = element

    def _port_counts(self, name: str) -> Tuple[int, int]:
        element = self.elements[name]
        max_in = -1
        max_out = -1
        for conn in self.config.connections:
            if conn.to_element == name:
                max_in = max(max_in, conn.to_port)
            if conn.from_element == name:
                max_out = max(max_out, conn.from_port)
        cls = type(element)
        n_in = cls.INPUT_COUNT if cls.INPUT_COUNT is not None else max_in + 1
        n_out = (cls.OUTPUT_COUNT if cls.OUTPUT_COUNT is not None
                 else max_out + 1)
        if max_in >= n_in:
            raise ConfigError("%s has %d input(s), port %d used"
                              % (name, n_in, max_in))
        if max_out >= n_out:
            raise ConfigError("%s has %d output(s), port %d used"
                              % (name, n_out, max_out))
        return n_in, n_out

    def _wire(self) -> None:
        for name, element in self.elements.items():
            n_in, n_out = self._port_counts(name)
            element._build_ports(n_in, n_out)
        for conn in self.config.connections:
            source = self.elements.get(conn.from_element)
            target = self.elements.get(conn.to_element)
            if source is None:
                raise ConfigError("unknown element %r" % conn.from_element)
            if target is None:
                raise ConfigError("unknown element %r" % conn.to_element)
            out_port = source.outputs[conn.from_port]
            in_port = target.inputs[conn.to_port]
            if out_port.peer is not None:
                raise ConfigError("output %s[%d] connected twice"
                                  % (source.name, conn.from_port))
            out_port.peer = in_port
            in_port.peers.append(out_port)

    def _resolve_personalities(self) -> None:
        """Assign PUSH/PULL to every port, erroring on conflicts.

        Ports of an agnostic element form one mode-group (simplified
        flow-code: the element relays packets in whatever discipline its
        neighbours use, uniformly).  Connections force both endpoints
        into the same mode.  Union-find over groups, then conflict check.
        """
        parent: Dict[int, int] = {}
        fixed: Dict[int, str] = {}

        def find(key: int) -> int:
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        def union(a: int, b: int, context: str) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            mode_a, mode_b = fixed.get(ra), fixed.get(rb)
            if mode_a and mode_b and mode_a != mode_b:
                raise ConfigError(
                    "push/pull conflict at %s (insert a Queue between the "
                    "push and pull sides)" % context)
            parent[rb] = ra
            if mode_b and not mode_a:
                fixed[ra] = mode_b

        ports: List = []
        for element in self.elements.values():
            group_root: Optional[int] = None
            for port in list(element.inputs) + list(element.outputs):
                key = len(ports)
                ports.append(port)
                parent[key] = key
                if port.personality != AGNOSTIC:
                    fixed[key] = port.personality
                    continue
                if group_root is None:
                    group_root = key
                else:
                    union(group_root, key, element.name)

        index_of = {id(port): key for key, port in enumerate(ports)}
        for element in self.elements.values():
            for port in element.outputs:
                if port.peer is not None:
                    union(index_of[id(port)], index_of[id(port.peer)],
                          "%s -> %s" % (port.element.name,
                                        port.peer.element.name))

        for key, port in enumerate(ports):
            port.resolved = fixed.get(find(key), PUSH)

    def _check_connected(self) -> None:
        for element in self.elements.values():
            for port in element.inputs:
                # Fan-in is a push-only privilege (as in real Click).
                if port.resolved == PULL and len(port.peers) > 1:
                    raise ConfigError(
                        "pull input [%d]%s has %d upstream connections"
                        % (port.index, element.name, len(port.peers)))
            if getattr(type(element), "ALLOW_UNCONNECTED", False):
                continue
            for port in element.inputs:
                if not port.connected:
                    raise ConfigError("input [%d]%s is unconnected"
                                      % (port.index, element.name))
            for port in element.outputs:
                if not port.connected:
                    raise ConfigError("output %s[%d] is unconnected"
                                      % (element.name, port.index))

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Initialize every element (sources begin scheduling work)."""
        if self.running:
            return
        self.running = True
        for element in self.elements.values():
            element.initialize()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        for element in self.elements.values():
            element.cleanup()

    # -- handler namespace ----------------------------------------------------

    def element(self, name: str) -> Element:
        element = self.elements.get(name)
        if element is None:
            raise HandlerError("no element named %r" % name)
        return element

    def _split_handler(self, path: str) -> Tuple[Element, str]:
        element_name, sep, handler = path.partition(".")
        if not sep:
            raise HandlerError("handler path must be 'element.handler', "
                               "got %r" % path)
        return self.element(element_name), handler

    def read_handler(self, path: str) -> str:
        """Read ``"element.handler"`` — the Clicky monitoring interface."""
        element, handler = self._split_handler(path)
        return element.read_handler(handler)

    def write_handler(self, path: str, value: str) -> None:
        element, handler = self._split_handler(path)
        element.write_handler(handler, value)

    def handlers(self) -> Dict[str, Tuple[List[str], List[str]]]:
        """Map element name -> (read handler names, write handler names)."""
        return {name: element.handler_names()
                for name, element in self.elements.items()}

    # -- telemetry -------------------------------------------------------------

    def transfer_counts(self) -> Tuple[int, int]:
        """(total pushes, total pulls) across every element."""
        pushes = sum(e.pushed_count for e in self.elements.values())
        pulls = sum(e.pulled_count for e in self.elements.values())
        return pushes, pulls

    def element_counts(self) -> Dict[str, Tuple[int, int]]:
        """Per-element (pushed, pulled) packet-transfer counters."""
        return {name: (element.pushed_count, element.pulled_count)
                for name, element in self.elements.items()}

    def flat_config(self) -> str:
        """Regenerate a canonical config string (Click's flatconfig)."""
        lines = []
        for spec in self.config.elements.values():
            lines.append("%s :: %s(%s);" % (spec.name, spec.class_name,
                                            spec.config))
        for conn in self.config.connections:
            lines.append("%s [%d] -> [%d] %s;"
                         % (conn.from_element, conn.from_port,
                            conn.to_port, conn.to_element))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Router(%s, %d elements, %s)" % (
            self.name, len(self.elements),
            "running" if self.running else "stopped")
