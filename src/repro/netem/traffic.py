"""Traffic measurement objects: ping results, UDP flow reports, and a
tcpdump-style capture (demo step 4's "standard tools")."""

import struct
from typing import Iterable, List, Optional

from repro.packet import Ethernet


def write_pcap(path: str, entries: Iterable, snaplen: int = 65535) -> int:
    """Write timestamped frames as a classic pcap file (linktype
    Ethernet), loadable in Wireshark/tcpdump.

    ``entries`` is any iterable of records with ``time`` (seconds) and
    ``frame`` (an :class:`Ethernet`) attributes — host captures and
    flight-recorder taps both qualify.  Returns the record count.
    """
    written = 0
    with open(path, "wb") as handle:
        handle.write(struct.pack("!IHHiIII", 0xA1B2C3D4, 2, 4,
                                 0, 0, snaplen, 1))
        for entry in entries:
            wire = entry.frame.pack()
            ts_sec = int(entry.time)
            ts_usec = int((entry.time - ts_sec) * 1e6)
            captured = wire[:snaplen]
            handle.write(struct.pack("!IIII", ts_sec, ts_usec,
                                     len(captured), len(wire)))
            handle.write(captured)
            written += 1
    return written


class PingResult:
    """Fills in while the simulation runs; read it afterwards."""

    def __init__(self, src: str, dst: str, count: int):
        self.src = src
        self.dst = dst
        self.count = count
        self.sent = 0
        self.received = 0
        self.rtts: List[float] = []

    def record_sent(self) -> None:
        self.sent += 1

    def record_reply(self, rtt: float) -> None:
        self.received += 1
        self.rtts.append(rtt)

    @property
    def loss_percent(self) -> float:
        if self.sent == 0:
            return 0.0
        return 100.0 * (self.sent - self.received) / self.sent

    @property
    def min_rtt(self) -> Optional[float]:
        return min(self.rtts) if self.rtts else None

    @property
    def avg_rtt(self) -> Optional[float]:
        return sum(self.rtts) / len(self.rtts) if self.rtts else None

    @property
    def max_rtt(self) -> Optional[float]:
        return max(self.rtts) if self.rtts else None

    def summary(self) -> str:
        lines = ["--- %s -> %s ping statistics ---" % (self.src, self.dst),
                 "%d packets transmitted, %d received, %.0f%% packet loss"
                 % (self.sent, self.received, self.loss_percent)]
        if self.rtts:
            lines.append("rtt min/avg/max = %.3f/%.3f/%.3f ms"
                         % (self.min_rtt * 1e3, self.avg_rtt * 1e3,
                            self.max_rtt * 1e3))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "PingResult(%s->%s, %d/%d)" % (self.src, self.dst,
                                              self.received, self.sent)


class TrafficReport:
    """Sender-side record of a constant-rate UDP flow."""

    def __init__(self, src: str, dst: str, dport: int, rate_pps: float,
                 payload_size: int):
        self.src = src
        self.dst = dst
        self.dport = dport
        self.rate_pps = rate_pps
        self.payload_size = payload_size
        self.sent = 0
        self.finished = False

    def __repr__(self) -> str:
        return "TrafficReport(%s->%s:%d, sent=%d, %s)" % (
            self.src, self.dst, self.dport, self.sent,
            "done" if self.finished else "running")


class CapturedFrame:
    """One line of the capture."""

    def __init__(self, time: float, direction: str, frame: Ethernet):
        self.time = time
        self.direction = direction  # "rx" or "tx"
        self.frame = frame

    def __repr__(self) -> str:
        return "%.6f %s %r" % (self.time, self.direction, self.frame)


class PacketCapture:
    """tcpdump stand-in: attach to a Host to record its frames.

    ``filter_fn`` (Ethernet -> bool) limits what is kept; ``limit``
    bounds memory.
    """

    def __init__(self, filter_fn=None, limit: int = 10000):
        self.filter_fn = filter_fn
        self.limit = limit
        self.frames: List[CapturedFrame] = []
        self.matched = 0
        self.observed = 0

    def observe(self, time: float, direction: str, frame: Ethernet) -> None:
        self.observed += 1
        if self.filter_fn is not None and not self.filter_fn(frame):
            return
        self.matched += 1
        if len(self.frames) < self.limit:
            self.frames.append(CapturedFrame(time, direction, frame))

    def __len__(self) -> int:
        return len(self.frames)

    def dump(self) -> str:
        return "\n".join(repr(entry) for entry in self.frames)

    def write_pcap(self, path: str, snaplen: int = 65535) -> int:
        """Write the captured frames as a classic pcap file (linktype
        Ethernet), loadable in Wireshark/tcpdump.  Returns the number
        of records written."""
        return write_pcap(path, self.frames, snaplen)

    def __repr__(self) -> str:
        return "PacketCapture(%d kept / %d seen)" % (len(self.frames),
                                                     self.observed)
