"""Mininet-analog network emulator.

The paper's infrastructure layer is Mininet: hosts, OpenFlow switches
and (ESCAPE's extension) VNF containers, connected by shaped veth
links, all "in a laptop".  This package reproduces that layer on the
discrete-event simulator:

* :class:`Network` — the ``Mininet`` object: ``add_host`` /
  ``add_switch`` / ``add_vnf_container`` / ``add_link`` / ``start`` /
  ``ping_all``,
* :class:`Host` — a node with a tiny IP stack (ARP, ICMP ping, UDP),
* :class:`Switch` — a node wrapping an OpenFlow datapath,
* :class:`VNFContainer` — ESCAPE's managed node: hosts Click VNFs under
  cgroup-style CPU/memory budgets, with a management port for the
  NETCONF agent,
* :class:`Link` — bandwidth/delay/loss shaping like Mininet's TCLink,
* :mod:`~repro.netem.topo` — ``Topo`` builders (single, linear, tree),
* :mod:`~repro.netem.traffic` — ping / iperf / tcpdump equivalents,
* :class:`~repro.netem.cli.CLI` — the Mininet-style command console.
"""

from repro.netem.interface import Interface
from repro.netem.link import Link
from repro.netem.net import Network, NetworkError
from repro.netem.node import Host, Node, Switch
from repro.netem.recorder import (FlightRecorder, LinkTap, RecorderError,
                                  TapRecord)
from repro.netem.resources import ResourceBudget, ResourceError
from repro.netem.topo import LinearTopo, SingleSwitchTopo, Topo, TreeTopo
from repro.netem.traffic import PacketCapture, PingResult, TrafficReport
from repro.netem.vnf import VNFContainer, VNFProcess
from repro.netem.cli import CLI

__all__ = [
    "CLI",
    "FlightRecorder",
    "Host",
    "Interface",
    "LinearTopo",
    "Link",
    "LinkTap",
    "Network",
    "NetworkError",
    "Node",
    "PacketCapture",
    "RecorderError",
    "TapRecord",
    "PingResult",
    "ResourceBudget",
    "ResourceError",
    "SingleSwitchTopo",
    "Switch",
    "Topo",
    "TrafficReport",
    "TreeTopo",
    "VNFContainer",
    "VNFProcess",
]
