"""VNF containers — ESCAPE's extension of Mininet with managed nodes.

A :class:`VNFContainer` is a node that can host VNF processes (Click
routers) under a configurable isolation model.  The NETCONF agent's
"low-level instrumentation code" drives exactly the four operations the
paper lists: start/stop VNFs and connect/disconnect them to/from the
attached switch — implemented here as :meth:`start_vnf`,
:meth:`stop_vnf`, :meth:`connect_vnf`, :meth:`disconnect_vnf`.
"""

from typing import Dict, List, Optional

from repro import telemetry
from repro.click import Router
from repro.click.elements.device import Device
from repro.netem.interface import Interface
from repro.netem.node import Node
from repro.netem.resources import ResourceBudget, ResourceError
from repro.sim import Simulator

# VNF process states (mirrors the YANG model's status leaf).
INITIALIZING = "INITIALIZING"
UP = "UP"
STOPPED = "STOPPED"
FAILED = "FAILED"

# Isolation models for VNF processes inside a container.
ISOLATION_NONE = "none"        # no accounting (plain processes)
ISOLATION_CGROUP = "cgroup"    # enforce the CPU/memory budget


class VNFProcess:
    """One running VNF: a Click router plus its virtual devices."""

    def __init__(self, vnf_id: str, router: Router,
                 devices: Dict[str, Device], cpu: float, mem: float):
        self.vnf_id = vnf_id
        self.router = router
        self.devices = devices
        self.cpu = cpu
        self.mem = mem
        self.status = INITIALIZING
        self.started_at: Optional[float] = None

    def read_handler(self, path: str) -> str:
        """Clicky-style handler read (``element.handler``)."""
        return self.router.read_handler(path)

    def write_handler(self, path: str, value: str) -> None:
        self.router.write_handler(path, value)

    def handlers(self):
        return self.router.handlers()

    def __repr__(self) -> str:
        return "VNFProcess(%s, %s, %d devices)" % (self.vnf_id, self.status,
                                                   len(self.devices))


class VNFContainer(Node):
    """A managed node hosting VNFs.

    Interfaces fall in two groups: *data* interfaces wired to the
    assigned switch, and one optional *management* interface on the
    dedicated control network (where the NETCONF agent listens).
    """

    def __init__(self, name: str, sim: Simulator, cpu: float = 4.0,
                 mem: float = 4096.0, isolation: str = ISOLATION_CGROUP):
        super().__init__(name, sim)
        if isolation not in (ISOLATION_NONE, ISOLATION_CGROUP):
            raise ValueError("unknown isolation model %r" % isolation)
        self.budget = ResourceBudget(cpu, mem)
        self.isolation = isolation
        self.up = True
        self.vnfs: Dict[str, VNFProcess] = {}
        self.mgmt_interface: Optional[Interface] = None
        # (vnf_id, device-name) -> interface name for active splices
        self._splices: Dict[tuple, str] = {}

    # -- management plane -------------------------------------------------

    def set_mgmt_interface(self, intf: Interface) -> None:
        self.mgmt_interface = intf

    # -- VNF lifecycle ------------------------------------------------------

    def start_vnf(self, vnf_id: str, click_config: str,
                  device_names: List[str], cpu: float = 0.5,
                  mem: float = 256.0) -> VNFProcess:
        """Launch a Click-based VNF inside this container.

        ``device_names`` lists the virtual interfaces the config's
        FromDevice/ToDevice elements reference; they start detached and
        are wired to container interfaces with :meth:`connect_vnf`.
        """
        if not self.up:
            raise ResourceError("%s: container is down" % self.name)
        if vnf_id in self.vnfs:
            raise ValueError("%s: VNF %r already running"
                             % (self.name, vnf_id))
        if self.isolation == ISOLATION_CGROUP:
            self.budget.reserve(vnf_id, cpu, mem)
        devices = {devname: Device(devname) for devname in device_names}
        try:
            router = Router.from_config(click_config, sim=self.sim,
                                        name="%s/%s" % (self.name, vnf_id))
            router.device_map = devices
            process = VNFProcess(vnf_id, router, devices, cpu, mem)
            router.start()
        except Exception:
            if self.isolation == ISOLATION_CGROUP:
                self.budget.release(vnf_id)
            raise
        process.status = UP
        process.started_at = self.sim.now
        self.vnfs[vnf_id] = process
        return process

    def stop_vnf(self, vnf_id: str) -> None:
        process = self.vnfs.pop(vnf_id, None)
        if process is None:
            raise ValueError("%s: no VNF %r" % (self.name, vnf_id))
        for devname in list(process.devices):
            self._unsplice(vnf_id, devname)
        process.router.stop()
        if process.status != FAILED:
            process.status = STOPPED
        if self.isolation == ISOLATION_CGROUP:
            self.budget.release(vnf_id)

    def crash_vnf(self, vnf_id: str) -> VNFProcess:
        """Kill a VNF process in place: its Click router dies, its
        device splices drop, but the zombie stays registered (holding
        its budget) until reaped with :meth:`stop_vnf` — exactly the
        state a crashed process leaves on a real container.  Emits a
        ``vnf.crashed`` event for the recovery machinery."""
        process = self.get_vnf(vnf_id)
        if process.status == FAILED:
            return process
        for devname in list(process.devices):
            self._unsplice(vnf_id, devname)
        process.router.stop()
        process.status = FAILED
        telemetry.current().events.error(
            "netem.container", "vnf.crashed",
            "%s/%s" % (self.name, vnf_id),
            container=self.name, vnf_id=vnf_id)
        return process

    def set_up(self, up: bool) -> None:
        """Container outage primitive.  Going down crashes every
        running VNF (they do not come back on their own when the
        container returns — that is the recovery layer's job) and
        emits ``container.down`` / ``container.up`` events."""
        if up == self.up:
            return
        events = telemetry.current().events
        if not up:
            self.up = False
            for vnf_id, process in list(self.vnfs.items()):
                if process.status == UP:
                    self.crash_vnf(vnf_id)
            events.error("netem.container", "container.down", self.name,
                         container=self.name)
        else:
            self.up = True
            events.info("netem.container", "container.up", self.name,
                        container=self.name)

    def get_vnf(self, vnf_id: str) -> VNFProcess:
        process = self.vnfs.get(vnf_id)
        if process is None:
            raise ValueError("%s: no VNF %r" % (self.name, vnf_id))
        return process

    # -- splicing VNF devices to container interfaces -------------------------

    def connect_vnf(self, vnf_id: str, device_name: str,
                    intf_name: str) -> None:
        """Wire a VNF virtual device to one of this node's interfaces,
        making the VNF reachable through the attached switch port."""
        process = self.get_vnf(vnf_id)
        device = process.devices.get(device_name)
        if device is None:
            raise ValueError("%s/%s: no device %r"
                             % (self.name, vnf_id, device_name))
        intf = self.interfaces.get(intf_name)
        if intf is None:
            raise ValueError("%s: no interface %r" % (self.name, intf_name))
        for (owner, devname), iname in self._splices.items():
            if iname == intf_name:
                raise ValueError(
                    "%s: interface %r already spliced to %s/%s"
                    % (self.name, intf_name, owner, devname))
        if (vnf_id, device_name) in self._splices:
            raise ValueError("%s: %s/%s is already spliced"
                             % (self.name, vnf_id, device_name))
        device.transmit = intf.send
        intf.set_receiver(lambda _intf, data, dev=device: dev.deliver(data))
        self._splices[(vnf_id, device_name)] = intf_name

    def disconnect_vnf(self, vnf_id: str, device_name: str) -> None:
        process = self.get_vnf(vnf_id)
        if device_name not in process.devices:
            raise ValueError("%s/%s: no device %r"
                             % (self.name, vnf_id, device_name))
        self._unsplice(vnf_id, device_name)

    def _unsplice(self, vnf_id: str, device_name: str) -> None:
        intf_name = self._splices.pop((vnf_id, device_name), None)
        if intf_name is None:
            return
        process = self.vnfs.get(vnf_id)
        if process is not None:
            process.devices[device_name].transmit = None
        intf = self.interfaces.get(intf_name)
        if intf is not None:
            intf.set_receiver(self._receive)

    # -- state ----------------------------------------------------------------

    def free_interfaces(self) -> List[str]:
        """Data interfaces not currently spliced to any VNF device."""
        used = set(self._splices.values())
        return [name for name, intf in self.interfaces.items()
                if name not in used and intf is not self.mgmt_interface]

    def status_report(self) -> Dict[str, dict]:
        """Per-VNF status (what the NETCONF agent's <get> returns)."""
        report = {}
        for vnf_id, process in self.vnfs.items():
            report[vnf_id] = {
                "status": process.status,
                "cpu": process.cpu,
                "mem": process.mem,
                "devices": {devname: self._splices.get((vnf_id,
                                                               devname))
                            for devname in process.devices},
                "uptime": (self.sim.now - process.started_at
                           if process.started_at is not None else 0.0),
            }
        return report

    def stop(self) -> None:
        for vnf_id in list(self.vnfs):
            self.stop_vnf(vnf_id)

    def __repr__(self) -> str:
        return "VNFContainer(%s, %d VNFs, %r)" % (self.name, len(self.vnfs),
                                                  self.budget)
