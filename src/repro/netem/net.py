"""The ``Network`` object — ESCAPE's (and Mininet's) top-level API for
building and running an emulated topology."""

from typing import Dict, List, Optional, Tuple, Union

from repro.netem.interface import Interface
from repro.netem.link import Link
from repro.netem.node import Host, Node, Switch
from repro.netem.topo import Topo
from repro.netem.vnf import VNFContainer
from repro.openflow import ControllerChannel
from repro.packet import EthAddr, IPAddr
from repro.sim import Simulator


class NetworkError(Exception):
    pass


class Network:
    """Builds and runs the emulated infrastructure layer.

    Mirrors Mininet's API surface::

        net = Network()
        h1 = net.add_host("h1")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1, bandwidth=10e6, delay=0.001)
        net.add_controller(controller)
        net.start()
        result = h1.ping(h2.ip); net.run(5.0)

    IPs default to 10.0.0.0/8 assigned in creation order, MACs to
    00:00:00:00:00:xx, like Mininet's auto-assignment.
    """

    def __init__(self, sim: Optional[Simulator] = None,
                 ip_base: str = "10.0.0.0", prefix_len: int = 8):
        self.sim = sim or Simulator()
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.controllers: List = []
        self.started = False
        self._next_ip = IPAddr(ip_base) + 1
        self._next_mac = 1
        self._next_dpid = 1
        self.prefix_len = prefix_len
        # when True, control channels serialize every message through
        # the real OF 1.0 wire format (see repro.openflow.wire)
        self.serialize_openflow = False

    # -- address assignment ---------------------------------------------

    def _allocate_ip(self) -> IPAddr:
        ip = self._next_ip
        self._next_ip = self._next_ip + 1
        return ip

    def _allocate_mac(self) -> EthAddr:
        mac = EthAddr(self._next_mac)
        self._next_mac += 1
        return mac

    # -- node management ----------------------------------------------------

    def _register(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise NetworkError("node %r already exists" % node.name)
        self.nodes[node.name] = node
        return node

    def add_host(self, name: str, ip: Optional[Union[str, IPAddr]] = None,
                 mac: Optional[Union[str, EthAddr]] = None,
                 prefix_len: Optional[int] = None) -> Host:
        host = Host(name, self.sim,
                    ip if ip is not None else self._allocate_ip(),
                    mac if mac is not None else self._allocate_mac(),
                    prefix_len if prefix_len is not None else self.prefix_len)
        self._register(host)
        return host

    def add_switch(self, name: str, dpid: Optional[int] = None) -> Switch:
        if dpid is None:
            dpid = self._next_dpid
        self._next_dpid = max(self._next_dpid, dpid) + 1
        switch = Switch(name, self.sim, dpid)
        self._register(switch)
        return switch

    def add_vnf_container(self, name: str, cpu: float = 4.0,
                          mem: float = 4096.0,
                          isolation: str = "cgroup") -> VNFContainer:
        container = VNFContainer(name, self.sim, cpu, mem, isolation)
        self._register(container)
        return container

    def add_hub(self, name: str):
        """A plain repeater (for the dedicated control network)."""
        from repro.netem.hub import Hub
        hub = Hub(name, self.sim)
        self._register(hub)
        return hub

    def add_node(self, node: Node) -> Node:
        """Register an externally constructed node (e.g. a management
        endpoint)."""
        return self._register(node)

    def get(self, name: str) -> Node:
        node = self.nodes.get(name)
        if node is None:
            raise NetworkError("no node named %r" % name)
        return node

    def __getitem__(self, name: str) -> Node:
        return self.get(name)

    def hosts(self) -> List[Host]:
        return [node for node in self.nodes.values()
                if isinstance(node, Host)]

    def switches(self) -> List[Switch]:
        return [node for node in self.nodes.values()
                if isinstance(node, Switch)]

    def vnf_containers(self) -> List[VNFContainer]:
        return [node for node in self.nodes.values()
                if isinstance(node, VNFContainer)]

    # -- links ----------------------------------------------------------------

    def _link_endpoint(self, node: Node) -> Interface:
        """The interface a new link should use on ``node``.

        Hosts reuse their primary interface while it is unattached
        (single-homed hosts keep their configured IP); every other case
        gets a fresh interface.
        """
        if isinstance(node, Host):
            primary = node.default_interface()
            if not primary.connected:
                return primary
            return node.add_interface(self._allocate_mac(),
                                      self._allocate_ip(), self.prefix_len)
        return node.add_interface(self._allocate_mac())

    def add_link(self, node1: Union[str, Node], node2: Union[str, Node],
                 bandwidth: Optional[float] = None, delay: float = 0.0,
                 loss: float = 0.0, max_queue: int = 1000) -> Link:
        if isinstance(node1, str):
            node1 = self.get(node1)
        if isinstance(node2, str):
            node2 = self.get(node2)
        intf1 = self._link_endpoint(node1)
        intf2 = self._link_endpoint(node2)
        link = Link(self.sim, intf1, intf2, bandwidth, delay, loss,
                    max_queue)
        self.links.append(link)
        return link

    def links_of(self, node: Union[str, Node]) -> List[Link]:
        if isinstance(node, str):
            node = self.get(node)
        names = set(node.interfaces)
        return [link for link in self.links
                if link.intf1.name in names or link.intf2.name in names]

    def links_between(self, node1: Union[str, Node],
                      node2: Union[str, Node]) -> List[Link]:
        """All links directly connecting ``node1`` and ``node2``."""
        if isinstance(node1, str):
            node1 = self.get(node1)
        if isinstance(node2, str):
            node2 = self.get(node2)
        return [link for link in self.links
                if {link.intf1.node, link.intf2.node} == {node1, node2}]

    # -- topology construction ------------------------------------------------

    @classmethod
    def build(cls, topo: Topo, sim: Optional[Simulator] = None,
              **net_opts) -> "Network":
        """Instantiate a :class:`Topo` description."""
        net = cls(sim=sim, **net_opts)
        for name, (role, opts) in topo.nodes.items():
            if role == Topo.HOST:
                net.add_host(name, ip=opts.get("ip"), mac=opts.get("mac"))
            elif role == Topo.SWITCH:
                net.add_switch(name, dpid=opts.get("dpid"))
            elif role == Topo.VNF_CONTAINER:
                net.add_vnf_container(name, cpu=opts.get("cpu", 4.0),
                                      mem=opts.get("mem", 4096.0),
                                      isolation=opts.get("isolation",
                                                         "cgroup"))
            else:
                raise NetworkError("unknown role %r for node %r"
                                   % (role, name))
        for node1, node2, opts in topo.links:
            net.add_link(node1, node2, bandwidth=opts.get("bandwidth"),
                         delay=opts.get("delay", 0.0),
                         loss=opts.get("loss", 0.0),
                         max_queue=opts.get("max_queue", 1000))
        return net

    # -- lifecycle ------------------------------------------------------------

    def add_controller(self, controller) -> None:
        """Attach a controller platform (must expose
        ``accept_connection(channel)``, as the POX nexus does)."""
        self.controllers.append(controller)

    def start(self) -> None:
        """Connect every switch to the controller(s)."""
        if self.started:
            return
        self.started = True
        for switch in self.switches():
            for controller in self.controllers:
                channel = ControllerChannel(
                    self.sim, serialize=self.serialize_openflow)
                controller.accept_connection(channel)
                switch.datapath.connect_controller(channel)

    def stop(self) -> None:
        for node in self.nodes.values():
            node.stop()
        self.started = False

    def run(self, duration: float) -> None:
        """Advance the simulation ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def static_arp(self) -> None:
        """Pre-populate every host's ARP table (Mininet's --arp flag).

        With static ARP no broadcast resolution traffic exists, which
        keeps learning switches clean when chains re-inject frames at
        container ports.
        """
        hosts = self.hosts()
        for src in hosts:
            for dst in hosts:
                if src is not dst:
                    src.arp_table[dst.ip] = dst.mac

    # -- diagnostics ----------------------------------------------------------

    def link_stats(self) -> Dict[str, float]:
        """Aggregate link telemetry: delivery/drop totals and the peak
        utilisation across finite-bandwidth links (delivered bits over
        elapsed simulated time, as a fraction of link capacity)."""
        delivered = delivered_bytes = 0
        dropped_down = dropped_loss = dropped_queue = 0
        max_utilization = 0.0
        elapsed = self.sim.now
        for link in self.links:
            delivered += link.delivered
            dropped_down += link.dropped_down
            dropped_loss += link.dropped_loss
            dropped_queue += link.dropped_queue
            delivered_bytes += link.delivered_bytes
            if link.bandwidth and elapsed > 0:
                utilization = (link.delivered_bytes * 8.0
                               / (elapsed * link.bandwidth))
                if utilization > max_utilization:
                    max_utilization = utilization
        return {
            "delivered": delivered,
            "dropped": dropped_down + dropped_loss + dropped_queue,
            "dropped_down": dropped_down,
            "dropped_loss": dropped_loss,
            "dropped_queue": dropped_queue,
            "delivered_bytes": delivered_bytes,
            "max_utilization": max_utilization,
        }

    def find_link(self, name: str):
        """Look up a link by its name (``intf1<->intf2`` by default)."""
        for link in self.links:
            if link.name == name:
                return link
        raise NetworkError("no link named %r" % name)

    def ping_all(self, timeout: float = 5.0) -> Tuple[int, int]:
        """Ping between every ordered host pair (Mininet's pingall).

        Returns (sent, received) across all pairs; pairs are staggered
        slightly so ARP floods don't collide.
        """
        results = []
        offset = 0.0
        hosts = self.hosts()
        for src in hosts:
            for dst in hosts:
                if src is dst:
                    continue
                self.sim.schedule(offset, lambda s=src, d=dst:
                                  results.append(s.ping(d.ip, count=1)))
                offset += 0.001
        self.run(offset + timeout)
        sent = sum(result.sent for result in results)
        received = sum(result.received for result in results)
        return sent, received

    def __repr__(self) -> str:
        return "Network(%d nodes, %d links, %s)" % (
            len(self.nodes), len(self.links),
            "started" if self.started else "stopped")
