"""Emulated nodes: the Node base class, Host (with a small IP stack)
and Switch (wrapping an OpenFlow datapath)."""

import struct
from typing import Callable, Dict, List, Optional, Union

from repro.netem.interface import Interface
from repro.openflow import OpenFlowSwitch
from repro.packet import (ARP, BROADCAST, EthAddr, Ethernet, ICMP, IPAddr,
                          IPv4, UDP)
from repro.packet.base import PacketError
from repro.packet.probe import PROBE_MAGIC
from repro.sim import Simulator


class Node:
    """Base emulated node: a name plus a set of interfaces."""

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self.interfaces: Dict[str, Interface] = {}

    def add_interface(self, mac: Union[str, EthAddr],
                      ip: Optional[Union[str, IPAddr]] = None,
                      prefix_len: int = 8,
                      name: str = "") -> Interface:
        if not name:
            name = "%s-eth%d" % (self.name, len(self.interfaces))
        if name in self.interfaces:
            raise ValueError("%s: interface %r exists" % (self.name, name))
        intf = Interface(name, self, EthAddr(mac),
                         IPAddr(ip) if ip is not None else None, prefix_len)
        intf.set_receiver(self._receive)
        self.interfaces[name] = intf
        return intf

    def default_interface(self) -> Interface:
        if not self.interfaces:
            raise ValueError("%s has no interfaces" % self.name)
        return next(iter(self.interfaces.values()))

    def _receive(self, intf: Interface, data: bytes) -> None:
        """Frame arrived on ``intf``; subclasses dispatch."""

    def stop(self) -> None:
        """Shut the node down (subclasses release resources)."""

    def __repr__(self) -> str:
        return "%s(%s, %d intfs)" % (type(self).__name__, self.name,
                                     len(self.interfaces))


class PendingPing:
    """In-flight ping session state (owned by Host.ping's result)."""

    def __init__(self, result, remaining: int):
        self.result = result
        self.remaining = remaining
        self.sent_at: Dict[int, float] = {}  # seq -> send time


class Host(Node):
    """A host with ARP, ICMP echo, and UDP send/receive.

    This is the stand-in for "use standard tools to send and inspect
    live traffic" (demo step 4): :meth:`ping` is ``ping``,
    :meth:`send_udp` / :meth:`start_udp_flow` are the ``iperf`` side,
    and :mod:`repro.netem.traffic`'s PacketCapture is ``tcpdump``.
    """

    ARP_TIMEOUT = 1.0  # seconds before a pending ARP resolution drops
    RX_CACHE_CAP = 1024  # memoized parses of byte-identical datagrams

    def __init__(self, name: str, sim: Simulator,
                 ip: Union[str, IPAddr], mac: Union[str, EthAddr],
                 prefix_len: int = 8):
        super().__init__(name, sim)
        self.add_interface(mac, ip, prefix_len)
        self.arp_table: Dict[IPAddr, EthAddr] = {}
        self._arp_pending: Dict[IPAddr, List[Ethernet]] = {}
        self._udp_handlers: Dict[int, Callable] = {}
        self.udp_rx_count = 0
        self.udp_rx_bytes = 0
        # SLA probe datagrams are measurement traffic: counted apart so
        # they never skew user-traffic accounting
        self.probe_rx_count = 0
        self._pings: Dict[int, PendingPing] = {}
        self._next_ping_id = 1
        self._captures: List = []
        # rx fast path: constant-rate flows deliver byte-identical
        # frames, so the parse result is memoized per wire image
        self._udp_rx_cache: Dict[bytes, tuple] = {}

    # -- convenience accessors ------------------------------------------------

    @property
    def ip(self) -> IPAddr:
        return self.default_interface().ip

    @property
    def mac(self) -> EthAddr:
        return self.default_interface().mac

    def attach_capture(self, capture) -> None:
        """Register a PacketCapture to observe this host's frames."""
        self._captures.append(capture)

    # -- transmit path --------------------------------------------------------

    def send_frame(self, frame: Ethernet) -> None:
        for capture in self._captures:
            capture.observe(self.sim.now, "tx", frame)
        self.default_interface().send(frame.pack())

    def send_ip(self, packet: IPv4) -> None:
        """Resolve the destination and send (queues behind ARP)."""
        dst_mac = self.arp_table.get(packet.dstip)
        frame = Ethernet(src=self.mac, dst=dst_mac or BROADCAST,
                         type=Ethernet.IP_TYPE, payload=packet)
        if dst_mac is None:
            self._arp_resolve(packet.dstip, frame)
        else:
            self.send_frame(frame)

    def _arp_resolve(self, target: IPAddr, queued_frame: Ethernet) -> None:
        pending = self._arp_pending.setdefault(target, [])
        pending.append(queued_frame)
        if len(pending) > 1:
            return  # request already in flight
        request = Ethernet(src=self.mac, dst=BROADCAST,
                           type=Ethernet.ARP_TYPE,
                           payload=ARP(opcode=ARP.REQUEST, hwsrc=self.mac,
                                       protosrc=self.ip, protodst=target))
        self.send_frame(request)
        self.sim.schedule(self.ARP_TIMEOUT, self._arp_expire, target)

    def _arp_expire(self, target: IPAddr) -> None:
        self._arp_pending.pop(target, None)

    # -- receive path ---------------------------------------------------------

    def _receive(self, intf: Interface, data: bytes) -> None:
        # fast path: an identical UDP datagram was parsed before (the
        # memo is only safe single-homed and invisible to captures)
        if not self._captures and len(self.interfaces) == 1:
            cached = self._udp_rx_cache.get(data)
            if cached is not None:
                self._deliver_udp(*cached)
                return
        try:
            frame = Ethernet.unpack(data)
        except PacketError:
            return
        for capture in self._captures:
            capture.observe(self.sim.now, "rx", frame)
        if frame.dst != intf.mac and not frame.dst.is_multicast \
                and not frame.dst.is_broadcast:
            return
        arp = frame.find(ARP)
        if arp is not None:
            self._handle_arp(arp)
            return
        ip = frame.find(IPv4)
        if ip is not None and intf.ip is not None and ip.dstip == intf.ip:
            self._handle_ip(ip, wire=data)

    def _handle_arp(self, arp: ARP) -> None:
        if arp.opcode == ARP.REQUEST and arp.protodst == self.ip:
            self.arp_table[arp.protosrc] = arp.hwsrc
            reply = Ethernet(src=self.mac, dst=arp.hwsrc,
                             type=Ethernet.ARP_TYPE,
                             payload=ARP(opcode=ARP.REPLY, hwsrc=self.mac,
                                         protosrc=self.ip, hwdst=arp.hwsrc,
                                         protodst=arp.protosrc))
            self.send_frame(reply)
        elif arp.opcode == ARP.REPLY:
            self.arp_table[arp.protosrc] = arp.hwsrc
            for frame in self._arp_pending.pop(arp.protosrc, []):
                frame.dst = arp.hwsrc
                self.send_frame(frame)

    def _handle_ip(self, ip: IPv4, wire: Optional[bytes] = None) -> None:
        icmp = ip.find(ICMP)
        if icmp is not None:
            self._handle_icmp(ip, icmp)
            return
        udp = ip.find(UDP)
        if udp is not None:
            payload = udp.raw_payload()
            is_probe = payload.startswith(PROBE_MAGIC)
            if wire is not None:
                if len(self._udp_rx_cache) >= self.RX_CACHE_CAP:
                    self._udp_rx_cache.clear()
                self._udp_rx_cache[wire] = (ip.srcip, udp.srcport,
                                            udp.dstport, payload, is_probe)
            self._deliver_udp(ip.srcip, udp.srcport, udp.dstport,
                              payload, is_probe)

    def _deliver_udp(self, srcip: IPAddr, srcport: int, dstport: int,
                     payload: bytes, is_probe: bool) -> None:
        if is_probe:
            self.probe_rx_count += 1
        else:
            self.udp_rx_count += 1
            self.udp_rx_bytes += len(payload)
        handler = self._udp_handlers.get(dstport)
        if handler is not None:
            handler(srcip, srcport, payload)

    def _handle_icmp(self, ip: IPv4, icmp: ICMP) -> None:
        if icmp.is_echo_request:
            self.send_ip(IPv4(srcip=self.ip, dstip=ip.srcip,
                              protocol=IPv4.ICMP_PROTOCOL,
                              payload=icmp.make_reply()))
        elif icmp.is_echo_reply:
            session = self._pings.get(icmp.id)
            if session is None:
                return
            sent_at = session.sent_at.pop(icmp.seq, None)
            if sent_at is None:
                return
            session.result.record_reply(self.sim.now - sent_at)

    # -- application API ------------------------------------------------------

    def bind_udp(self, port: int,
                 handler: Callable[[IPAddr, int, bytes], None]) -> None:
        """Deliver UDP datagrams for ``port`` to ``handler``."""
        self._udp_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    def send_udp(self, dst: Union[str, IPAddr], dport: int,
                 payload: bytes, sport: int = 40000) -> None:
        self.send_ip(IPv4(srcip=self.ip, dstip=IPAddr(dst),
                          protocol=IPv4.UDP_PROTOCOL,
                          payload=UDP(srcport=sport, dstport=dport,
                                      payload=payload)))

    def ping(self, dst: Union[str, IPAddr], count: int = 3,
             interval: float = 1.0, payload_size: int = 56):
        """Start a ping session; returns a PingResult that fills in as
        replies arrive while the simulation runs."""
        from repro.netem.traffic import PingResult
        dst = IPAddr(dst)
        result = PingResult(str(self.ip), str(dst), count)
        ping_id = self._next_ping_id
        self._next_ping_id += 1
        session = PendingPing(result, count)
        self._pings[ping_id] = session

        def send_next(seq: int) -> None:
            if seq > count:
                return
            session.sent_at[seq] = self.sim.now
            result.record_sent()
            # per-packet-unique payload (sender, session, seq, send
            # time) repeated to size: flow telemetry hashes frame
            # tails, and concurrent ping sessions must not collide
            head = struct.pack("!4sHId", self.ip.raw, ping_id & 0xFFFF,
                               seq, self.sim.now)
            padded = (head * (payload_size // len(head) + 1)
                      )[:payload_size] if payload_size else b""
            self.send_ip(IPv4(srcip=self.ip, dstip=dst,
                              protocol=IPv4.ICMP_PROTOCOL,
                              payload=ICMP(type=ICMP.TYPE_ECHO_REQUEST,
                                           id=ping_id, seq=seq,
                                           payload=padded)))
            if seq < count:
                self.sim.schedule(interval, send_next, seq + 1)

        send_next(1)
        return result

    def start_udp_flow(self, dst: Union[str, IPAddr], dport: int,
                       rate_pps: float, duration: float,
                       payload_size: int = 1000, sport: int = 40000):
        """Constant-rate UDP flow (the iperf stand-in).  Returns a
        TrafficReport that the *receiving* host's counters complete."""
        from repro.netem.traffic import TrafficReport
        dst = IPAddr(dst)
        report = TrafficReport(str(self.ip), str(dst), dport, rate_pps,
                               payload_size)
        interval = 1.0 / rate_pps
        total = max(1, int(round(duration * rate_pps)))
        payload = b"\x00" * payload_size
        # tx fast path: every datagram of the flow has identical headers
        # and payload, so once ARP resolves, the wire image is packed
        # once and replayed (keyed on the MAC so a re-resolve rebuilds)
        state = {"mac": None, "frame": None, "wire": None}

        def send_next(index: int) -> None:
            if index >= total:
                report.finished = True
                return
            dst_mac = self.arp_table.get(dst)
            if dst_mac is None:
                self.send_udp(dst, dport, payload, sport)  # queues on ARP
            else:
                if state["mac"] != dst_mac:
                    frame = Ethernet(
                        src=self.mac, dst=dst_mac, type=Ethernet.IP_TYPE,
                        payload=IPv4(srcip=self.ip, dstip=dst,
                                     protocol=IPv4.UDP_PROTOCOL,
                                     payload=UDP(srcport=sport,
                                                 dstport=dport,
                                                 payload=payload)))
                    state["mac"] = dst_mac
                    state["frame"] = frame
                    state["wire"] = frame.pack()
                for capture in self._captures:
                    capture.observe(self.sim.now, "tx", state["frame"])
                self.default_interface().send(state["wire"])
            report.sent += 1
            self.sim.schedule(interval, send_next, index + 1)

        send_next(0)
        return report


class Switch(Node):
    """A node whose interfaces are ports of an OpenFlow datapath."""

    def __init__(self, name: str, sim: Simulator, dpid: int):
        super().__init__(name, sim)
        self.datapath = OpenFlowSwitch(sim, dpid, name)
        self._port_of: Dict[str, int] = {}

    @property
    def dpid(self) -> int:
        return self.datapath.dpid

    def add_interface(self, mac: Union[str, EthAddr],
                      ip=None, prefix_len: int = 8,
                      name: str = "") -> Interface:
        intf = super().add_interface(mac, ip, prefix_len, name)
        port_no = len(self._port_of) + 1
        port = self.datapath.add_port(port_no, intf.name, str(intf.mac))
        port.transmit = intf.send
        self._port_of[intf.name] = port_no
        return intf

    def port_number(self, intf: Interface) -> int:
        return self._port_of[intf.name]

    def _receive(self, intf: Interface, data: bytes) -> None:
        self.datapath.ports[self._port_of[intf.name]].receive(data)

    def stop(self) -> None:
        self.datapath.disconnect_controller()
