"""Shaped point-to-point links (Mininet's TCLink equivalent).

Each direction models: serialization at ``bandwidth`` bits/s, a
transmit queue bounded by ``max_queue`` packets, fixed propagation
``delay``, and Bernoulli ``loss``.  The RNG is seeded from the link name
so packet-loss experiments replay identically.
"""

import random
from typing import Optional

from repro import telemetry
from repro.netem.interface import Interface
from repro.sim import Simulator


class _Direction:
    """Shaping state for one direction of the link."""

    __slots__ = ("busy_until", "queued_packets")

    def __init__(self):
        self.busy_until = 0.0
        self.queued_packets = 0


class Link:
    """Bidirectional link between two interfaces.

    ``bandwidth`` is in bits/second (None = infinite), ``delay`` in
    seconds, ``loss`` a probability in [0, 1], ``max_queue`` in packets
    (applies only when bandwidth is finite, like a real tx queue).
    """

    def __init__(self, sim: Simulator, intf1: Interface, intf2: Interface,
                 bandwidth: Optional[float] = None, delay: float = 0.0,
                 loss: float = 0.0, max_queue: int = 1000,
                 jitter: float = 0.0, name: str = ""):
        if loss < 0.0 or loss > 1.0:
            raise ValueError("loss must be in [0,1], got %r" % loss)
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive, got %r" % bandwidth)
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        if jitter < 0:
            raise ValueError("jitter must be non-negative, got %r" % jitter)
        self.sim = sim
        self.intf1 = intf1
        self.intf2 = intf2
        self.bandwidth = bandwidth
        self.delay = delay
        # uniform extra delay in [0, jitter] per frame; like netem's
        # jitter this can reorder back-to-back frames
        self.jitter = jitter
        self.loss = loss
        self.max_queue = max_queue
        self.name = name or "%s<->%s" % (intf1.name, intf2.name)
        self.up = True
        # Flight-recorder taps (see repro.netem.recorder).  Kept as a
        # plain list so the dataplane hot path pays one falsy check
        # when no recorder is attached.
        self.taps = []
        self._rng = random.Random(hash(self.name) & 0xFFFFFFFF)
        self._dir1 = _Direction()  # intf1 -> intf2
        self._dir2 = _Direction()  # intf2 -> intf1
        # (direction, target) resolved once per orientation — the
        # per-frame transmit path avoids re-deriving the far end
        self._fwd = (self._dir1, intf2)
        self._rev = (self._dir2, intf1)
        # profiler/flowtrace handles bound once, same contract as click
        # elements: each disabled path costs one attribute check per
        # frame (ESCAPE re-homes these for links built before its
        # bundle became current)
        self._profiler = telemetry.current().profiler
        self._flowtrace = telemetry.current().flowtrace
        # per-cause drop counters: chaos scenarios assert on *why*
        # frames died, not just how many
        self.dropped_down = 0
        self.dropped_loss = 0
        self.dropped_queue = 0
        self.delivered = 0
        self.delivered_bytes = 0
        intf1.link = self
        intf2.link = self

    @property
    def dropped(self) -> int:
        """Total drops across all causes (down + loss + queue-full)."""
        return self.dropped_down + self.dropped_loss + self.dropped_queue

    def other_end(self, intf: Interface) -> Interface:
        if intf is self.intf1:
            return self.intf2
        if intf is self.intf2:
            return self.intf1
        raise ValueError("interface %r not on link %r" % (intf.name,
                                                          self.name))

    def set_up(self, up: bool) -> None:
        if up == self.up:
            return
        self.up = up
        events = telemetry.current().events
        if up:
            events.info("netem.link", "link.up", self.name,
                        link=self.name)
        else:
            events.warn("netem.link", "link.down", self.name,
                        link=self.name)
        # Propagate carrier state into attached OpenFlow datapaths at
        # the same simulated instant: fast-failover groups watching the
        # port flip locally, and the switch raises a deterministic
        # PortStatus toward the controller (no discovery lag).
        for intf in (self.intf1, self.intf2):
            node = getattr(intf, "node", None)
            datapath = getattr(node, "datapath", None)
            if datapath is None:
                continue
            try:
                port_no = node.port_number(intf)
            except KeyError:
                continue
            datapath.set_port_up(port_no, up)

    def flap(self, down_for: float) -> None:
        """Take the link down now and bring it back ``down_for``
        simulated seconds later."""
        if down_for <= 0:
            raise ValueError("down_for must be positive, got %r"
                             % down_for)
        self.set_up(False)
        self.sim.schedule(down_for, self.set_up, True)

    def set_degradation(self, loss: Optional[float] = None,
                        delay: Optional[float] = None,
                        jitter: Optional[float] = None) -> None:
        """Change the link's shaping in place (netem-style fault
        injection); emits a ``link.degraded`` event with the new
        values so recovery/monitoring can correlate."""
        if loss is not None:
            if loss < 0.0 or loss > 1.0:
                raise ValueError("loss must be in [0,1], got %r" % loss)
            self.loss = loss
        if delay is not None:
            if delay < 0:
                raise ValueError("delay must be non-negative, got %r"
                                 % delay)
            self.delay = delay
        if jitter is not None:
            if jitter < 0:
                raise ValueError("jitter must be non-negative, got %r"
                                 % jitter)
            self.jitter = jitter
        telemetry.current().events.warn(
            "netem.link", "link.degraded", self.name, link=self.name,
            loss=self.loss, delay=self.delay, jitter=self.jitter)

    def _notify_taps(self, direction: str, intf: Interface,
                     data: bytes) -> None:
        for tap in self.taps:
            tap.observe(self.sim.now, self, direction, intf, data)

    def transmit(self, from_intf: Interface, data: bytes) -> None:
        """Queue a frame for delivery to the other end."""
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("netem.link.transmit"):
                self._transmit(from_intf, data)
        else:
            self._transmit(from_intf, data)

    def _transmit(self, from_intf: Interface, data: bytes) -> None:
        if self.taps:
            self._notify_taps("tx", from_intf, data)
        if not self.up:
            self.dropped_down += 1
            return
        if self.loss > 0 and self._rng.random() < self.loss:
            self.dropped_loss += 1
            return
        direction, target = (self._fwd if from_intf is self.intf1
                             else self._rev)
        now = self.sim.now
        if self.bandwidth is None:
            depart = now
        else:
            if direction.queued_packets >= self.max_queue:
                self.dropped_queue += 1
                return
            serialization = len(data) * 8.0 / self.bandwidth
            depart = max(now, direction.busy_until) + serialization
            direction.busy_until = depart
            direction.queued_packets += 1
        extra = self._rng.uniform(0.0, self.jitter) if self.jitter else 0.0
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            flowtrace.record("link.tx", self.name, now, data)
        self.sim.schedule(depart - now + self.delay + extra,
                          self._deliver, direction, target, data)

    def _deliver(self, direction: _Direction, target: Interface,
                 data: bytes) -> None:
        if self.bandwidth is not None:
            direction.queued_packets -= 1
        if not self.up:
            self.dropped_down += 1
            return
        self.delivered += 1
        self.delivered_bytes += len(data)
        if self.taps:
            self._notify_taps("rx", target, data)
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            flowtrace.record("link.rx", self.name, self.sim.now, data)
        target.deliver(data)

    def __repr__(self) -> str:
        bw = ("%.0fbit/s" % self.bandwidth) if self.bandwidth else "inf"
        return "Link(%s, bw=%s, delay=%.6fs, loss=%.3f)" % (
            self.name, bw, self.delay, self.loss)
