"""A dumb repeater hub.

The dedicated control network doesn't need OpenFlow (that would be a
bootstrap circularity: the controller managing the network its own
control traffic rides on).  ESCAPE's in-band management plane hangs
every agent off a plain hub instead.
"""

from repro.netem.interface import Interface
from repro.netem.node import Node


class Hub(Node):
    """Repeats every received frame out of all other interfaces."""

    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.frames_repeated = 0

    def _receive(self, intf: Interface, data: bytes) -> None:
        for other in self.interfaces.values():
            if other is not intf:
                self.frames_repeated += 1
                other.send(data)
