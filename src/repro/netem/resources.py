"""cgroup-style resource accounting for VNF containers.

Mininet's CPULimitedHost and ESCAPE's "configurable isolation models
(based on cgroups)" become an explicit budget object: a container is
created with CPU and memory capacity, every VNF started inside it
reserves its declared demand, and starting a VNF whose demand exceeds
the remaining budget fails — which is exactly the constraint the
orchestrator's mapping algorithms optimize against.
"""

from typing import Dict


class ResourceError(Exception):
    """A reservation exceeded the remaining budget."""


class ResourceBudget:
    """Track CPU (abstract cores) and memory (MB) reservations."""

    def __init__(self, cpu: float = 1.0, mem: float = 1024.0):
        if cpu <= 0 or mem <= 0:
            raise ValueError("capacities must be positive (cpu=%r, mem=%r)"
                             % (cpu, mem))
        self.cpu_capacity = float(cpu)
        self.mem_capacity = float(mem)
        self.reservations: Dict[str, tuple] = {}

    @property
    def cpu_used(self) -> float:
        return sum(cpu for cpu, _mem in self.reservations.values())

    @property
    def mem_used(self) -> float:
        return sum(mem for _cpu, mem in self.reservations.values())

    @property
    def cpu_free(self) -> float:
        return self.cpu_capacity - self.cpu_used

    @property
    def mem_free(self) -> float:
        return self.mem_capacity - self.mem_used

    def can_fit(self, cpu: float, mem: float) -> bool:
        return cpu <= self.cpu_free + 1e-9 and mem <= self.mem_free + 1e-9

    def reserve(self, owner: str, cpu: float, mem: float) -> None:
        """Reserve resources for ``owner``; raises ResourceError on
        overflow or double reservation."""
        if owner in self.reservations:
            raise ResourceError("owner %r already holds a reservation"
                                % owner)
        if cpu < 0 or mem < 0:
            raise ValueError("demands must be non-negative")
        if not self.can_fit(cpu, mem):
            raise ResourceError(
                "cannot reserve cpu=%.2f mem=%.0f for %r: "
                "free cpu=%.2f mem=%.0f"
                % (cpu, mem, owner, self.cpu_free, self.mem_free))
        self.reservations[owner] = (float(cpu), float(mem))

    def release(self, owner: str) -> None:
        """Release ``owner``'s reservation (no-op when absent)."""
        self.reservations.pop(owner, None)

    def snapshot(self) -> Dict[str, float]:
        """Utilization summary for monitoring / resource views."""
        return {
            "cpu_capacity": self.cpu_capacity,
            "cpu_used": self.cpu_used,
            "mem_capacity": self.mem_capacity,
            "mem_used": self.mem_used,
        }

    def __repr__(self) -> str:
        return "ResourceBudget(cpu %.2f/%.2f, mem %.0f/%.0f)" % (
            self.cpu_used, self.cpu_capacity, self.mem_used,
            self.mem_capacity)
