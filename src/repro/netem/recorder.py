"""Flight recorder: always-on-capable capture taps on substrate links.

A host-side :class:`~repro.netem.traffic.PacketCapture` sees what one
endpoint sees; debugging a *deployed chain* needs the view from the
middle — which frames crossed which substrate link, when, and on behalf
of which pipeline operation.  The flight recorder attaches bounded ring
buffers ("taps") to :class:`~repro.netem.link.Link` objects (optionally
narrowed to one switch port) and records every frame the link carries:

* ``tx`` records when a frame enters the link, ``rx`` when it is
  delivered — a frame that appears as ``tx`` but never ``rx`` was
  dropped or lost in flight;
* each record is lazily parsed, and frames carrying an SLA probe
  payload (:func:`repro.packet.frame_probe`) expose the **trace id** of
  the span that emitted them, so a captured packet can be joined back
  to its ``sla.probe`` span with ``Tracer.find_span``;
* rings are bounded (oldest evicted first) so taps can stay attached
  for the whole run — hence "flight recorder";
* :meth:`FlightRecorder.export_pcap` writes any selection of records
  through the shared classic-pcap writer for offline inspection with
  Wireshark/tcpdump (demo step 4's "standard tools").

The dataplane cost when **no** tap is attached is a single falsy check
in ``Link.transmit``/``Link._deliver``; with a tap attached, a record
is a timestamped append — parsing happens only on query or export.
"""

from collections import deque
from typing import Dict, List, Optional

from repro.netem.link import Link
from repro.netem.traffic import write_pcap
from repro.packet import Ethernet, frame_probe
from repro import telemetry


class RecorderError(Exception):
    pass


class TapRecord:
    """One captured frame: raw bytes plus where/when, parsed lazily."""

    __slots__ = ("seq", "time", "link_name", "direction", "port", "data",
                 "_frame", "_probe", "_probed")

    def __init__(self, seq: int, time: float, link_name: str,
                 direction: str, port: str, data: bytes):
        self.seq = seq
        self.time = time
        self.link_name = link_name
        self.direction = direction  # "tx" (entered link) / "rx" (delivered)
        self.port = port            # interface name at the observed end
        self.data = data
        self._frame = None
        self._probe = None
        self._probed = False

    @property
    def frame(self) -> Ethernet:
        if self._frame is None:
            self._frame = Ethernet.unpack(self.data)
        return self._frame

    @property
    def probe(self):
        """The SLA probe riding in this frame, or None."""
        if not self._probed:
            self._probed = True
            try:
                self._probe = frame_probe(self.frame)
            except Exception:
                self._probe = None
        return self._probe

    @property
    def trace_id(self) -> Optional[int]:
        """Span id of the pipeline operation that sent this frame."""
        probe = self.probe
        return probe.trace_id if probe is not None else None

    def render(self) -> str:
        text = "%.6f %-3s %-18s %-10s %d bytes" % (
            self.time, self.direction, self.link_name, self.port,
            len(self.data))
        probe = self.probe
        if probe is not None:
            text += "  probe %s #%d.%d trace=%d" % (
                probe.chain, probe.seq, probe.index, probe.trace_id)
        return text

    def __repr__(self) -> str:
        return "TapRecord(%s)" % self.render()


class LinkTap:
    """Bounded ring of :class:`TapRecord` on one link.

    ``port`` narrows the tap to frames entering or leaving one
    interface (a switch port); without it, both directions of every
    frame on the link are kept.
    """

    def __init__(self, link: Link, capacity: int = 2048,
                 port: Optional[str] = None, label: str = ""):
        if capacity <= 0:
            raise RecorderError("tap capacity must be positive, got %r"
                                % capacity)
        self.link = link
        self.capacity = capacity
        self.port = port
        self.label = label or (
            "%s:%s" % (link.name, port) if port else link.name)
        self.records = deque(maxlen=capacity)
        self.observed = 0
        self.matched = 0
        self.evicted = 0
        self._seq = 0

    def observe(self, time: float, link: Link, direction: str, intf,
                data: bytes) -> None:
        self.observed += 1
        if self.port is not None and intf.name != self.port:
            return
        self.matched += 1
        if len(self.records) == self.capacity:
            self.evicted += 1
        self.records.append(TapRecord(self._seq, time, link.name,
                                      direction, intf.name, data))
        self._seq += 1

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return "LinkTap(%s, %d kept / %d seen, %d evicted)" % (
            self.label, len(self.records), self.observed, self.evicted)


class FlightRecorder:
    """Manages taps across a :class:`~repro.netem.net.Network`.

    One recorder per ESCAPE instance; taps are attached per link, per
    switch port, or for every substrate link a deployed chain's mapped
    paths traverse.
    """

    def __init__(self, network, telemetry_bundle=None,
                 capacity: int = 2048):
        self.network = network
        self.telemetry = telemetry_bundle or telemetry.current()
        self.capacity = capacity
        self.taps: Dict[str, LinkTap] = {}
        tm = self.telemetry.metrics
        self._m_recorded = tm.counter("netem.recorder.frames",
                                      "frames recorded by flight taps")
        self._m_evicted = tm.counter("netem.recorder.evicted",
                                     "tap ring evictions")

    # -- attach / detach ------------------------------------------------------

    def _resolve_link(self, link) -> Link:
        if isinstance(link, Link):
            return link
        for candidate in self.network.links:
            if candidate.name == link:
                return candidate
        raise RecorderError("no link named %r" % (link,))

    def attach(self, link, capacity: Optional[int] = None,
               port: Optional[str] = None) -> LinkTap:
        """Tap a link (by object or name); idempotent per label."""
        link = self._resolve_link(link)
        label = "%s:%s" % (link.name, port) if port else link.name
        existing = self.taps.get(label)
        if existing is not None:
            return existing
        tap = LinkTap(link, capacity or self.capacity, port=port)
        link.taps.append(tap)
        self.taps[tap.label] = tap
        self.telemetry.events.info("netem.recorder", "recorder.attached",
                                   "tap on %s" % tap.label,
                                   link=link.name,
                                   capacity=tap.capacity)
        return tap

    def attach_port(self, switch, port_no: int,
                    capacity: Optional[int] = None) -> LinkTap:
        """Tap one switch port: frames entering/leaving that interface."""
        if isinstance(switch, str):
            switch = self.network.get(switch)
        for intf in switch.interfaces.values():
            if switch.port_number(intf) == port_no:
                if intf.link is None:
                    raise RecorderError("%s port %d is not connected"
                                        % (switch.name, port_no))
                return self.attach(intf.link, capacity, port=intf.name)
        raise RecorderError("%s has no port %d" % (switch.name, port_no))

    def attach_chain(self, chain, capacity: Optional[int] = None
                     ) -> List[LinkTap]:
        """Tap every substrate link on a deployed chain's mapped paths."""
        taps = []
        seen = set()
        for path in chain.mapping.link_paths.values():
            for here, there in zip(path, path[1:]):
                for link in self.network.links_between(here, there):
                    if link.name in seen:
                        continue
                    seen.add(link.name)
                    taps.append(self.attach(link, capacity))
        if not taps:
            raise RecorderError("chain %r has no mapped substrate links"
                                % chain.sg.name)
        return taps

    def detach(self, label: str) -> None:
        tap = self.taps.pop(label, None)
        if tap is None:
            raise RecorderError("no tap %r" % (label,))
        if tap in tap.link.taps:
            tap.link.taps.remove(tap)
        self._m_recorded.inc(tap.matched)
        self._m_evicted.inc(tap.evicted)
        self.telemetry.events.info("netem.recorder", "recorder.detached",
                                   "tap off %s (%d frames)" % (label,
                                                               tap.matched),
                                   link=tap.link.name)

    def detach_all(self) -> None:
        for label in list(self.taps):
            self.detach(label)

    # -- query / export -------------------------------------------------------

    def records(self, link: Optional[str] = None,
                trace_id: Optional[int] = None,
                flow_trace: Optional[int] = None,
                since: Optional[float] = None,
                limit: Optional[int] = None) -> List[TapRecord]:
        """Merged records across taps, in capture order.

        ``trace_id`` keeps only frames carrying an SLA probe emitted
        under that span (the trace-join query); ``flow_trace`` keeps
        only frames whose bytes hash to that flowtrace trace id, so
        ring captures and telemetry postcards correlate on the same
        packet.
        """
        selected = []
        for tap in self.taps.values():
            if link is not None and tap.link.name != link:
                continue
            for record in tap.records:
                if since is not None and record.time < since:
                    continue
                if trace_id is not None and record.trace_id != trace_id:
                    continue
                if flow_trace is not None and \
                        self.flow_trace_id(record) != flow_trace:
                    continue
                selected.append(record)
        selected.sort(key=lambda record: (record.time, record.seq))
        if limit is not None:
            selected = selected[-limit:]
        return selected

    def flow_trace_id(self, record: TapRecord) -> int:
        """The flowtrace trace id of a captured frame — the same
        seeded digest :class:`repro.telemetry.FlowTrace` derives at
        every hop, so a ring entry joins to its postcards."""
        return self.telemetry.flowtrace.digest(record.data)

    def find_span(self, record: TapRecord):
        """The pipeline span that emitted this frame, or None."""
        if record.trace_id is None:
            return None
        return self.telemetry.tracer.find_span(record.trace_id)

    def export_pcap(self, path: str, link: Optional[str] = None,
                    trace_id: Optional[int] = None,
                    direction: str = "rx") -> int:
        """Write matching records as classic pcap; returns the count.

        Defaults to ``rx`` records only so each frame appears once
        (every delivered frame has both a tx and an rx record);
        ``direction="both"`` keeps the duplicates, ``"tx"`` shows what
        entered the link (including frames later lost).
        """
        selected = self.records(link=link, trace_id=trace_id)
        if direction != "both":
            selected = [record for record in selected
                        if record.direction == direction]
        count = write_pcap(path, selected)
        self.telemetry.events.info("netem.recorder", "recorder.exported",
                                   "%d frames -> %s" % (count, path),
                                   path=path)
        return count

    # -- reporting ------------------------------------------------------------

    def status(self) -> Dict[str, Dict[str, float]]:
        return {label: {"kept": len(tap), "seen": tap.observed,
                        "matched": tap.matched, "evicted": tap.evicted}
                for label, tap in sorted(self.taps.items())}

    def render(self) -> str:
        if not self.taps:
            return "flight recorder: no taps attached"
        lines = ["%-24s %8s %8s %8s" % ("TAP", "KEPT", "SEEN", "EVICTED")]
        for label, tap in sorted(self.taps.items()):
            lines.append("%-24s %8d %8d %8d" % (label, len(tap),
                                                tap.observed, tap.evicted))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "FlightRecorder(%d taps)" % len(self.taps)
