"""Declarative topology descriptions (Mininet's ``Topo`` API).

A ``Topo`` is a pure description — node names, roles, options, links —
that :meth:`repro.netem.net.Network.build` turns into a live emulation.
This is also the format the GUI replacement (``repro.core.sgfile``)
loads topologies into.
"""

from typing import Dict, List, Optional, Tuple


class Topo:
    """A topology description: nodes with roles and attributed links."""

    HOST = "host"
    SWITCH = "switch"
    VNF_CONTAINER = "vnf_container"

    def __init__(self):
        self.nodes: Dict[str, Tuple[str, dict]] = {}
        self.links: List[Tuple[str, str, dict]] = []

    def _add_node(self, name: str, role: str, opts: dict) -> str:
        if name in self.nodes:
            existing_role, _opts = self.nodes[name]
            raise ValueError(
                "node %r already in topology (as %s); node names must "
                "be unique across roles" % (name, existing_role))
        self.nodes[name] = (role, opts)
        return name

    def add_host(self, name: str, ip: Optional[str] = None,
                 **opts) -> str:
        if ip is not None:
            opts["ip"] = ip
        return self._add_node(name, self.HOST, opts)

    def add_switch(self, name: str, **opts) -> str:
        return self._add_node(name, self.SWITCH, opts)

    def add_vnf_container(self, name: str, cpu: float = 4.0,
                          mem: float = 4096.0, **opts) -> str:
        opts.update(cpu=cpu, mem=mem)
        return self._add_node(name, self.VNF_CONTAINER, opts)

    def add_link(self, node1: str, node2: str,
                 bandwidth: Optional[float] = None, delay: float = 0.0,
                 loss: float = 0.0, **opts) -> None:
        """Attach an attributed link between two already-added nodes.

        Both endpoints must exist (add nodes before links) and must be
        distinct — a self-loop is always a topology bug.  Parallel
        links between the same pair are allowed; multi-port VNF
        containers rely on them.
        """
        for name in (node1, node2):
            if name not in self.nodes:
                raise ValueError(
                    "link %s--%s references unknown node %r; add nodes "
                    "before links (known: %d nodes)"
                    % (node1, node2, name, len(self.nodes)))
        if node1 == node2:
            raise ValueError("self-loop link %s--%s not allowed"
                             % (node1, node2))
        opts.update(bandwidth=bandwidth, delay=delay, loss=loss)
        self.links.append((node1, node2, opts))

    def hosts(self) -> List[str]:
        return [name for name, (role, _o) in self.nodes.items()
                if role == self.HOST]

    def switches(self) -> List[str]:
        return [name for name, (role, _o) in self.nodes.items()
                if role == self.SWITCH]

    def vnf_containers(self) -> List[str]:
        return [name for name, (role, _o) in self.nodes.items()
                if role == self.VNF_CONTAINER]

    def __repr__(self) -> str:
        return "%s(%d nodes, %d links)" % (type(self).__name__,
                                           len(self.nodes), len(self.links))


class SingleSwitchTopo(Topo):
    """``k`` hosts hanging off one switch."""

    def __init__(self, k: int = 2, **link_opts):
        super().__init__()
        switch = self.add_switch("s1")
        for index in range(1, k + 1):
            host = self.add_host("h%d" % index)
            self.add_link(host, switch, **link_opts)


class LinearTopo(Topo):
    """``k`` switches in a row, ``n`` hosts per switch."""

    def __init__(self, k: int = 2, n: int = 1, **link_opts):
        super().__init__()
        previous = None
        for s_index in range(1, k + 1):
            switch = self.add_switch("s%d" % s_index)
            if previous is not None:
                self.add_link(previous, switch, **link_opts)
            for h_index in range(1, n + 1):
                if n == 1:
                    host = self.add_host("h%d" % s_index)
                else:
                    host = self.add_host("h%ds%d" % (h_index, s_index))
                self.add_link(host, switch, **link_opts)
            previous = switch


class TreeTopo(Topo):
    """Complete tree of switches, ``depth`` levels, ``fanout`` children;
    hosts at the leaves."""

    def __init__(self, depth: int = 2, fanout: int = 2, **link_opts):
        super().__init__()
        self._switch_count = 0
        self._host_count = 0
        self._link_opts = link_opts
        self._build(depth, fanout)

    def _build(self, depth: int, fanout: int) -> str:
        if depth == 0:
            self._host_count += 1
            return self.add_host("h%d" % self._host_count)
        self._switch_count += 1
        switch = self.add_switch("s%d" % self._switch_count)
        for _ in range(fanout):
            child = self._build(depth - 1, fanout)
            self.add_link(switch, child, **self._link_opts)
        return switch
