"""Mininet-style command console over a Network.

``CLI(net).run_command("pingall")`` returns the textual output, and
``CLI(net).interact()`` reads from stdin — which is what the
interactive example uses.  Commands mirror the Mininet console the
paper's users would drive during demo steps (1) and (4).
"""

import shlex
from typing import Callable, Dict, List, Optional

from repro.netem.node import Host, Switch
from repro.netem.vnf import VNFContainer


class CLI:
    """Dispatch textual commands against a :class:`Network`."""

    def __init__(self, net):
        self.net = net
        self.commands: Dict[str, Callable[[List[str]], str]] = {
            "help": self._cmd_help,
            "nodes": self._cmd_nodes,
            "net": self._cmd_net,
            "links": self._cmd_links,
            "dump": self._cmd_dump,
            "pingall": self._cmd_pingall,
            "ping": self._cmd_ping,
            "flows": self._cmd_flows,
            "vnfs": self._cmd_vnfs,
            "resources": self._cmd_resources,
        }

    def run_command(self, line: str) -> str:
        """Execute one command line; returns its output (or an error)."""
        parts = shlex.split(line.strip())
        if not parts:
            return ""
        command, args = parts[0], parts[1:]
        handler = self.commands.get(command)
        if handler is None:
            return "*** Unknown command: %s (try 'help')" % command
        try:
            return handler(args)
        except Exception as exc:  # surfaced, not swallowed: CLI UX
            return "*** Error: %s" % exc

    def interact(self, input_fn=input, output_fn=print) -> None:
        """Simple REPL; 'exit'/'quit' leaves."""
        output_fn("*** ESCAPE console (type 'help')")
        while True:
            try:
                line = input_fn("escape> ")
            except EOFError:
                break
            if line.strip() in ("exit", "quit"):
                break
            output = self.run_command(line)
            if output:
                output_fn(output)

    # -- commands ---------------------------------------------------------

    def _cmd_help(self, args: List[str]) -> str:
        return "Commands: " + " ".join(sorted(self.commands))

    def _cmd_nodes(self, args: List[str]) -> str:
        return "available nodes are:\n" + " ".join(sorted(self.net.nodes))

    def _cmd_net(self, args: List[str]) -> str:
        lines = []
        for name, node in sorted(self.net.nodes.items()):
            peers = []
            for link in self.net.links_of(node):
                local = (link.intf1 if link.intf1.node is node
                         else link.intf2)
                remote = link.other_end(local)
                peers.append("%s:%s" % (remote.node.name, remote.name))
            lines.append("%s %s" % (name, " ".join(peers)))
        return "\n".join(lines)

    def _cmd_links(self, args: List[str]) -> str:
        return "\n".join(repr(link) for link in self.net.links)

    def _cmd_dump(self, args: List[str]) -> str:
        return "\n".join(repr(node)
                         for _name, node in sorted(self.net.nodes.items()))

    def _cmd_pingall(self, args: List[str]) -> str:
        sent, received = self.net.ping_all()
        dropped = 0.0 if sent == 0 else 100.0 * (sent - received) / sent
        return ("*** Results: %.0f%% dropped (%d/%d received)"
                % (dropped, received, sent))

    def _cmd_ping(self, args: List[str]) -> str:
        if len(args) < 2:
            return "usage: ping <src-host> <dst-host> [count]"
        src = self.net.get(args[0])
        dst = self.net.get(args[1])
        if not isinstance(src, Host) or not isinstance(dst, Host):
            return "*** ping needs two hosts"
        count = int(args[2]) if len(args) > 2 else 3
        result = src.ping(dst.ip, count=count)
        self.net.run(count * 1.0 + 2.0)
        return result.summary()

    def _cmd_flows(self, args: List[str]) -> str:
        lines = []
        for switch in self.net.switches():
            if args and switch.name not in args:
                continue
            lines.append("=== %s (dpid %d) ===" % (switch.name, switch.dpid))
            for entry in switch.datapath.table.entries:
                lines.append("  %r" % entry)
        return "\n".join(lines)

    def _cmd_vnfs(self, args: List[str]) -> str:
        lines = []
        for container in self.net.vnf_containers():
            lines.append("=== %s ===" % container.name)
            for vnf_id, info in sorted(container.status_report().items()):
                lines.append("  %s: %s cpu=%.2f mem=%.0f uptime=%.2fs"
                             % (vnf_id, info["status"], info["cpu"],
                                info["mem"], info["uptime"]))
        return "\n".join(lines) or "no VNF containers"

    def _cmd_resources(self, args: List[str]) -> str:
        lines = []
        for container in self.net.vnf_containers():
            snap = container.budget.snapshot()
            lines.append("%s: cpu %.2f/%.2f mem %.0f/%.0f"
                         % (container.name, snap["cpu_used"],
                            snap["cpu_capacity"], snap["mem_used"],
                            snap["mem_capacity"]))
        return "\n".join(lines) or "no VNF containers"
