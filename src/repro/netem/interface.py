"""Network interfaces (the veth endpoints of the emulation)."""

from typing import Callable, Optional

from repro.packet import EthAddr, IPAddr


class Interface:
    """One attachment point of a node.

    Frames leave through :meth:`send` (which hands them to the attached
    link) and arrive through :meth:`deliver` (which hands them to the
    owning node's receive hook).
    """

    def __init__(self, name: str, node, mac: EthAddr,
                 ip: Optional[IPAddr] = None, prefix_len: int = 8):
        self.name = name
        self.node = node
        self.mac = EthAddr(mac)
        self.ip = IPAddr(ip) if ip is not None else None
        self.prefix_len = prefix_len
        self.link = None  # set when a Link attaches
        self._receiver: Optional[Callable[["Interface", bytes], None]] = None
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0

    def set_receiver(self,
                     callback: Callable[["Interface", bytes], None]) -> None:
        self._receiver = callback

    def send(self, data: bytes) -> None:
        """Transmit a frame onto the attached link (no-op if detached)."""
        self.tx_packets += 1
        self.tx_bytes += len(data)
        if self.link is not None:
            self.link.transmit(self, data)

    def deliver(self, data: bytes) -> None:
        """A frame arrived from the link for this interface."""
        self.rx_packets += 1
        self.rx_bytes += len(data)
        if self._receiver is not None:
            self._receiver(self, data)

    @property
    def connected(self) -> bool:
        return self.link is not None

    def __repr__(self) -> str:
        ip_text = "%s/%d" % (self.ip, self.prefix_len) if self.ip else "-"
        return "Interface(%s, %s, %s)" % (self.name, self.mac, ip_text)
