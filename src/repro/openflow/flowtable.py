"""The OF 1.0 flow table: priority lookup, timeouts, statistics —
plus the group table extension backing fast-failover protection."""

from typing import Callable, Dict, List, Optional

from repro.openflow.actions import Action
from repro.openflow.match import Match


class FlowEntry:
    """One installed flow: match + actions + counters + timeouts."""

    def __init__(self, match: Match, actions: List[Action],
                 priority: int = 0x8000, idle_timeout: float = 0.0,
                 hard_timeout: float = 0.0, cookie: int = 0,
                 flags: int = 0, installed_at: float = 0.0):
        self.match = match
        self.actions = list(actions)
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.flags = flags
        self.installed_at = installed_at
        self.last_used = installed_at
        self.packet_count = 0
        self.byte_count = 0

    def note_hit(self, nbytes: int, now: float) -> None:
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_used = now

    def expired(self, now: float) -> Optional[int]:
        """FlowRemoved reason code if the entry has expired, else None."""
        from repro.openflow.messages import FlowRemoved
        if self.hard_timeout > 0 and now - self.installed_at \
                >= self.hard_timeout:
            return FlowRemoved.REASON_HARD_TIMEOUT
        if self.idle_timeout > 0 and now - self.last_used \
                >= self.idle_timeout:
            return FlowRemoved.REASON_IDLE_TIMEOUT
        return None

    def duration(self, now: float) -> float:
        return now - self.installed_at

    def __repr__(self) -> str:
        return "FlowEntry(prio=%d, %s, pkts=%d)" % (
            self.priority, self.match, self.packet_count)


class FlowTable:
    """Priority-ordered flow entries with OF 1.0 add/modify/delete
    semantics.  The owner supplies ``now`` (simulated seconds) on every
    call; expiry notifications go through the ``on_removed`` callback.
    """

    def __init__(self,
                 on_removed: Optional[Callable[[FlowEntry, int],
                                               None]] = None):
        self.entries: List[FlowEntry] = []
        self.on_removed = on_removed
        # bumped on every mutation (add/modify/delete/expiry removal);
        # the switch keys its microflow cache on this
        self.version = 0
        # earliest simulated time any entry *could* expire; expire()
        # early-exits before this.  Conservative: idle-timeout deadlines
        # only move later as note_hit refreshes last_used, so a stale
        # deadline triggers at worst one wasted scan, never a late one.
        self._next_expiry = float("inf")

    @staticmethod
    def _expiry_deadline(entry: FlowEntry) -> float:
        deadline = float("inf")
        if entry.hard_timeout > 0:
            deadline = entry.installed_at + entry.hard_timeout
        if entry.idle_timeout > 0:
            deadline = min(deadline, entry.last_used + entry.idle_timeout)
        return deadline

    def __len__(self) -> int:
        return len(self.entries)

    # -- modification -------------------------------------------------------

    def add(self, entry: FlowEntry) -> None:
        """OFPFC_ADD: replace any entry with identical match+priority."""
        self.entries = [existing for existing in self.entries
                        if not (existing.priority == entry.priority
                                and existing.match == entry.match)]
        self.entries.append(entry)
        # highest priority first; stable for equal priorities
        self.entries.sort(key=lambda flow: -flow.priority)
        self.version += 1
        self._next_expiry = min(self._next_expiry,
                                self._expiry_deadline(entry))

    def modify(self, match: Match, actions: List[Action],
               strict: bool = False, priority: int = 0x8000) -> int:
        """OFPFC_MODIFY[_STRICT]: update actions of matching entries.

        Returns the number of entries updated (0 means the caller should
        fall back to ADD, per the spec).
        """
        updated = 0
        for entry in self.entries:
            if strict:
                if entry.priority == priority and entry.match == match:
                    entry.actions = list(actions)
                    updated += 1
            elif entry.match.is_subset_of(match):
                entry.actions = list(actions)
                updated += 1
        if updated:
            self.version += 1
        return updated

    def delete(self, match: Match, strict: bool = False,
               priority: int = 0x8000, now: float = 0.0) -> int:
        """OFPFC_DELETE[_STRICT].  Returns the number removed."""
        from repro.openflow.messages import FlowRemoved
        keep: List[FlowEntry] = []
        removed: List[FlowEntry] = []
        for entry in self.entries:
            if strict:
                dead = entry.priority == priority and entry.match == match
            else:
                dead = entry.match.is_subset_of(match)
            (removed if dead else keep).append(entry)
        self.entries = keep
        if removed:
            self.version += 1
        for entry in removed:
            self._notify(entry, FlowRemoved.REASON_DELETE)
        return len(removed)

    def _notify(self, entry: FlowEntry, reason: int) -> None:
        if self.on_removed is not None:
            self.on_removed(entry, reason)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, packet, in_port: int, now: float) -> Optional[FlowEntry]:
        """Highest-priority matching, non-expired entry (hit counters
        updated by the caller via :meth:`FlowEntry.note_hit`)."""
        self.expire(now)
        concrete = Match.from_packet(packet, in_port)
        for entry in self.entries:
            if entry.match.matches(concrete):
                return entry
        return None

    def expire(self, now: float) -> int:
        """Remove timed-out entries, firing on_removed for each.

        Early-exits (no scan) while ``now`` is before the earliest
        possible deadline — with timeout-free tables this is one float
        compare per call, which matters because :meth:`lookup` runs it
        per packet.
        """
        if now < self._next_expiry:
            return 0
        keep: List[FlowEntry] = []
        expired: List[tuple] = []
        next_expiry = float("inf")
        for entry in self.entries:
            reason = entry.expired(now)
            if reason is None:
                keep.append(entry)
                next_expiry = min(next_expiry, self._expiry_deadline(entry))
            else:
                expired.append((entry, reason))
        self.entries = keep
        self._next_expiry = next_expiry
        if expired:
            self.version += 1
        for entry, reason in expired:
            self._notify(entry, reason)
        return len(expired)

    def stats(self, match: Optional[Match] = None,
              now: float = 0.0) -> List[FlowEntry]:
        """Entries covered by ``match`` (all when None), post-expiry."""
        self.expire(now)
        if match is None:
            return list(self.entries)
        return [entry for entry in self.entries
                if entry.match.is_subset_of(match)]


# -- groups -------------------------------------------------------------------


class GroupError(Exception):
    """Group table operation failure; ``code`` follows the OF 1.1
    ofp_group_mod_failed_code values so the switch can reply with a
    faithful error message."""

    GROUP_EXISTS = 0
    INVALID_GROUP = 1
    UNKNOWN_GROUP = 8

    def __init__(self, message: str, code: int = INVALID_GROUP):
        super().__init__(message)
        self.code = code


class GroupEntry:
    """One installed group: ordered action buckets.

    Only FAST_FAILOVER groups are executable: :meth:`select` walks the
    buckets in order and returns the first whose watched port is live.
    ``current_bucket`` remembers the last selection so the switch can
    detect a failover flip (and flip-back) without controller help.
    """

    # mirror of messages.GroupMod.TYPE_FAST_FAILOVER (kept local, as
    # this module only lazily imports repro.openflow.messages)
    FAST_FAILOVER = 3

    def __init__(self, group_id: int, group_type: int, buckets: List):
        self.group_id = group_id
        self.group_type = group_type
        self.buckets = list(buckets)
        self.packet_count = 0
        self.byte_count = 0
        self.current_bucket: Optional[int] = None

    def select(self, ports: Dict[int, object]) -> Optional[tuple]:
        """``(index, bucket)`` of the first live bucket, else None.

        A bucket is live when its watch port is up (WATCH_NONE buckets
        are always live).  Non-FF groups degrade to their first bucket
        — the switch refuses to install the other types, so this is
        only a defensive path.
        """
        if self.group_type == self.FAST_FAILOVER:
            for index, bucket in enumerate(self.buckets):
                watch = bucket.watch_port
                if watch == 0xFFFF:  # GroupBucket.WATCH_NONE
                    return index, bucket
                port = ports.get(watch)
                if port is not None and port.up:
                    return index, bucket
            return None
        if self.buckets:
            return 0, self.buckets[0]
        return None

    def __repr__(self) -> str:
        return "GroupEntry(%d, type=%d, %d buckets)" % (
            self.group_id, self.group_type, len(self.buckets))


class GroupTable:
    """The switch's group table: group_id -> :class:`GroupEntry` with
    OF 1.1 add/modify/delete semantics.  Mutations must invalidate any
    memoized group resolution — the owning switch flushes its microflow
    cache after every call that returns normally."""

    def __init__(self):
        self.groups: Dict[int, GroupEntry] = {}

    def __len__(self) -> int:
        return len(self.groups)

    def __contains__(self, group_id: int) -> bool:
        return group_id in self.groups

    def get(self, group_id: int) -> Optional[GroupEntry]:
        return self.groups.get(group_id)

    def add(self, group_id: int, group_type: int,
            buckets: List) -> GroupEntry:
        if group_id in self.groups:
            raise GroupError("group %d already exists" % group_id,
                             GroupError.GROUP_EXISTS)
        if group_type != GroupEntry.FAST_FAILOVER:
            raise GroupError("unsupported group type %d" % group_type,
                             GroupError.INVALID_GROUP)
        if not buckets:
            raise GroupError("group %d needs at least one bucket"
                             % group_id, GroupError.INVALID_GROUP)
        entry = GroupEntry(group_id, group_type, buckets)
        self.groups[group_id] = entry
        return entry

    def modify(self, group_id: int, group_type: int,
               buckets: List) -> GroupEntry:
        entry = self.groups.get(group_id)
        if entry is None:
            raise GroupError("no group %d to modify" % group_id,
                             GroupError.UNKNOWN_GROUP)
        if group_type != GroupEntry.FAST_FAILOVER:
            raise GroupError("unsupported group type %d" % group_type,
                             GroupError.INVALID_GROUP)
        if not buckets:
            raise GroupError("group %d needs at least one bucket"
                             % group_id, GroupError.INVALID_GROUP)
        entry.group_type = group_type
        entry.buckets = list(buckets)
        entry.current_bucket = None
        return entry

    def delete(self, group_id: int) -> Optional[GroupEntry]:
        """Remove ``group_id`` (no error when absent, per the spec's
        DELETE semantics)."""
        return self.groups.pop(group_id, None)
