"""OpenFlow 1.0 protocol messages (as Python objects).

The ESCAPE reproduction's controller channel is in-process, so messages
stay objects instead of OF wire bytes — the substitution is documented
in DESIGN.md.  Field names and semantics follow the OF 1.0 spec (and
POX's ``libopenflow_01``), so controller code reads the same.
"""

import itertools
from typing import List, Optional

from repro.openflow.actions import Action
from repro.openflow.match import Match

_xid_counter = itertools.count(1)


def next_xid() -> int:
    return next(_xid_counter)


class Message:
    """Base OpenFlow message; every message carries a transaction id."""

    def __init__(self, xid: Optional[int] = None):
        self.xid = xid if xid is not None else next_xid()

    def __repr__(self) -> str:
        return "%s(xid=%d)" % (type(self).__name__, self.xid)


class Hello(Message):
    pass


class EchoRequest(Message):
    def __init__(self, data: bytes = b"", xid: Optional[int] = None):
        super().__init__(xid)
        self.data = data


class EchoReply(Message):
    def __init__(self, data: bytes = b"", xid: Optional[int] = None):
        super().__init__(xid)
        self.data = data


class FeaturesRequest(Message):
    pass


class PortDescription:
    """One physical port in a FeaturesReply / PortStatus."""

    LINK_DOWN = 1 << 0  # ofp_port_state OFPPS_LINK_DOWN

    def __init__(self, port_no: int, name: str, hw_addr: str,
                 curr_speed: float = 0.0, state: int = 0):
        self.port_no = port_no
        self.name = name
        self.hw_addr = hw_addr
        self.curr_speed = curr_speed  # bits/s, 0 = unknown
        self.state = state

    @property
    def link_down(self) -> bool:
        return bool(self.state & self.LINK_DOWN)

    def __repr__(self) -> str:
        return "PortDescription(%d, %s%s)" % (
            self.port_no, self.name, ", DOWN" if self.link_down else "")


class FeaturesReply(Message):
    def __init__(self, dpid: int, ports: List[PortDescription],
                 n_buffers: int = 256, n_tables: int = 1,
                 xid: Optional[int] = None):
        super().__init__(xid)
        self.dpid = dpid
        self.ports = list(ports)
        self.n_buffers = n_buffers
        self.n_tables = n_tables

    def __repr__(self) -> str:
        return "FeaturesReply(dpid=%d, %d ports)" % (self.dpid,
                                                     len(self.ports))


class PacketIn(Message):
    REASON_NO_MATCH = 0
    REASON_ACTION = 1

    def __init__(self, buffer_id: Optional[int], in_port: int, data: bytes,
                 reason: int = REASON_NO_MATCH,
                 total_len: Optional[int] = None,
                 xid: Optional[int] = None):
        super().__init__(xid)
        self.buffer_id = buffer_id
        self.in_port = in_port
        self.data = data
        self.reason = reason
        self.total_len = total_len if total_len is not None else len(data)

    def __repr__(self) -> str:
        return "PacketIn(in_port=%d, %d bytes, buffer=%s)" % (
            self.in_port, self.total_len, self.buffer_id)


class PacketOut(Message):
    def __init__(self, actions: List[Action],
                 data: Optional[bytes] = None,
                 buffer_id: Optional[int] = None,
                 in_port: Optional[int] = None,
                 xid: Optional[int] = None):
        super().__init__(xid)
        if data is None and buffer_id is None:
            raise ValueError("PacketOut needs data or a buffer_id")
        self.actions = list(actions)
        self.data = data
        self.buffer_id = buffer_id
        self.in_port = in_port


class FlowMod(Message):
    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4

    # flags
    SEND_FLOW_REM = 1

    def __init__(self, match: Match, actions: Optional[List[Action]] = None,
                 command: int = ADD, priority: int = 0x8000,
                 idle_timeout: float = 0.0, hard_timeout: float = 0.0,
                 cookie: int = 0, flags: int = 0,
                 buffer_id: Optional[int] = None,
                 xid: Optional[int] = None):
        super().__init__(xid)
        self.match = match
        self.actions = list(actions or [])
        self.command = command
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.flags = flags
        self.buffer_id = buffer_id

    def __repr__(self) -> str:
        names = {self.ADD: "ADD", self.MODIFY: "MODIFY",
                 self.MODIFY_STRICT: "MODIFY_STRICT",
                 self.DELETE: "DELETE", self.DELETE_STRICT: "DELETE_STRICT"}
        return "FlowMod(%s, prio=%d, %s, %d actions)" % (
            names.get(self.command, self.command), self.priority,
            self.match, len(self.actions))


class GroupBucket:
    """One action bucket of a group.

    ``watch_port`` makes the bucket conditional on that port's
    liveness, as OF 1.1 fast-failover buckets are; OFPP_NONE (0xFFFF)
    means unconditional.
    """

    WATCH_NONE = 0xFFFF

    def __init__(self, actions: List[Action],
                 watch_port: int = WATCH_NONE):
        self.actions = list(actions)
        self.watch_port = watch_port

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other)
                and self.watch_port == other.watch_port
                and self.actions == other.actions)

    def __repr__(self) -> str:
        return "GroupBucket(watch=%#x, %d actions)" % (self.watch_port,
                                                       len(self.actions))


class GroupMod(Message):
    """Install/modify/delete a group (OF 1.1 OFPT_GROUP_MOD, carried
    as an extension to the 1.0 subset).

    Only TYPE_FAST_FAILOVER is executed by the switch: ordered
    buckets, each watching a port, with the first live bucket
    forwarding the frame.  A liveness flip therefore re-steers
    entirely in the dataplane — no controller round trip.
    """

    ADD = 0
    MODIFY = 1
    DELETE = 2

    TYPE_ALL = 0
    TYPE_SELECT = 1
    TYPE_INDIRECT = 2
    TYPE_FAST_FAILOVER = 3

    def __init__(self, command: int, group_id: int,
                 group_type: int = TYPE_FAST_FAILOVER,
                 buckets: Optional[List[GroupBucket]] = None,
                 xid: Optional[int] = None):
        super().__init__(xid)
        self.command = command
        self.group_id = group_id
        self.group_type = group_type
        self.buckets = list(buckets or [])

    def __repr__(self) -> str:
        names = {self.ADD: "ADD", self.MODIFY: "MODIFY",
                 self.DELETE: "DELETE"}
        return "GroupMod(%s, group=%d, %d buckets)" % (
            names.get(self.command, self.command), self.group_id,
            len(self.buckets))


class FlowRemoved(Message):
    REASON_IDLE_TIMEOUT = 0
    REASON_HARD_TIMEOUT = 1
    REASON_DELETE = 2

    def __init__(self, match: Match, cookie: int, priority: int,
                 reason: int, duration: float, packet_count: int,
                 byte_count: int, xid: Optional[int] = None):
        super().__init__(xid)
        self.match = match
        self.cookie = cookie
        self.priority = priority
        self.reason = reason
        self.duration = duration
        self.packet_count = packet_count
        self.byte_count = byte_count


class PortStatus(Message):
    REASON_ADD = 0
    REASON_DELETE = 1
    REASON_MODIFY = 2

    def __init__(self, reason: int, desc: PortDescription,
                 xid: Optional[int] = None):
        super().__init__(xid)
        self.reason = reason
        self.desc = desc


class FlowStatsRequest(Message):
    def __init__(self, match: Optional[Match] = None,
                 xid: Optional[int] = None):
        super().__init__(xid)
        self.match = match or Match()


class FlowStats:
    """Statistics for one flow entry."""

    def __init__(self, match: Match, priority: int, cookie: int,
                 duration: float, packet_count: int, byte_count: int,
                 actions: List[Action]):
        self.match = match
        self.priority = priority
        self.cookie = cookie
        self.duration = duration
        self.packet_count = packet_count
        self.byte_count = byte_count
        self.actions = actions

    def __repr__(self) -> str:
        return "FlowStats(%s, pkts=%d)" % (self.match, self.packet_count)


class FlowStatsReply(Message):
    def __init__(self, stats: List[FlowStats], xid: Optional[int] = None):
        super().__init__(xid)
        self.stats = list(stats)


class PortStatsRequest(Message):
    def __init__(self, port_no: Optional[int] = None,
                 xid: Optional[int] = None):
        super().__init__(xid)
        self.port_no = port_no  # None = all ports


class PortStats:
    def __init__(self, port_no: int, rx_packets: int, tx_packets: int,
                 rx_bytes: int, tx_bytes: int, rx_dropped: int = 0,
                 tx_dropped: int = 0):
        self.port_no = port_no
        self.rx_packets = rx_packets
        self.tx_packets = tx_packets
        self.rx_bytes = rx_bytes
        self.tx_bytes = tx_bytes
        self.rx_dropped = rx_dropped
        self.tx_dropped = tx_dropped

    def __repr__(self) -> str:
        return "PortStats(%d, rx=%d, tx=%d)" % (self.port_no,
                                                self.rx_packets,
                                                self.tx_packets)


class PortStatsReply(Message):
    def __init__(self, stats: List[PortStats], xid: Optional[int] = None):
        super().__init__(xid)
        self.stats = list(stats)


class BarrierRequest(Message):
    pass


class BarrierReply(Message):
    pass


class ErrorMessage(Message):
    TYPE_BAD_REQUEST = 1
    TYPE_BAD_ACTION = 2
    TYPE_FLOW_MOD_FAILED = 3
    TYPE_GROUP_MOD_FAILED = 6  # OF 1.1, for the group extension

    def __init__(self, error_type: int, code: int = 0,
                 data: bytes = b"", xid: Optional[int] = None):
        super().__init__(xid)
        self.error_type = error_type
        self.code = code
        self.data = data
