"""The software OpenFlow switch (Open vSwitch stand-in)."""

from typing import Callable, Dict, List, Optional

from repro.openflow.actions import Group, apply_actions
from repro.openflow.channel import ControllerChannel
from repro.openflow.flowtable import (FlowEntry, FlowTable, GroupError,
                                      GroupTable)
from repro.openflow.match import Match
from repro.openflow import messages as msg
from repro.packet import Ethernet
from repro.packet.base import PacketError
from repro.sim import Simulator
from repro.telemetry import current as current_telemetry

# OF 1.0 virtual port numbers.
OFPP_IN_PORT = 0xFFF8
OFPP_FLOOD = 0xFFFB
OFPP_ALL = 0xFFFC
OFPP_CONTROLLER = 0xFFFD
OFPP_LOCAL = 0xFFFE
OFPP_NONE = 0xFFFF


class SwitchPort:
    """A physical switch port.

    The emulator wires :attr:`transmit` to the attached link; incoming
    frames enter through :meth:`receive`.
    """

    def __init__(self, switch: "OpenFlowSwitch", port_no: int, name: str,
                 hw_addr: str):
        self.switch = switch
        self.port_no = port_no
        self.name = name
        self.hw_addr = hw_addr
        self.transmit: Optional[Callable[[bytes], None]] = None
        self.up = True
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.tx_dropped = 0

    def receive(self, data: bytes) -> None:
        """Frame arriving from the attached link."""
        if not self.up:
            return
        self.rx_packets += 1
        self.rx_bytes += len(data)
        self.switch.process_packet(self.port_no, data)

    def send(self, data: bytes) -> None:
        if not self.up or self.transmit is None:
            self.tx_dropped += 1
            return
        self.tx_packets += 1
        self.tx_bytes += len(data)
        self.transmit(data)

    def description(self) -> msg.PortDescription:
        return msg.PortDescription(
            self.port_no, self.name, self.hw_addr,
            state=0 if self.up else msg.PortDescription.LINK_DOWN)

    def stats(self) -> msg.PortStats:
        return msg.PortStats(self.port_no, self.rx_packets, self.tx_packets,
                             self.rx_bytes, self.tx_bytes,
                             tx_dropped=self.tx_dropped)

    def __repr__(self) -> str:
        return "SwitchPort(%s:%d %s)" % (self.switch.name, self.port_no,
                                         self.name)


class OpenFlowSwitch:
    """An OF 1.0 datapath: ports + flow table + controller connection.

    Without a connected controller, table-miss packets are dropped
    (OVS's default secure mode).  ``miss_send_len`` bytes of a missed
    packet travel in the PacketIn; the rest waits in the buffer.
    """

    EXPIRY_INTERVAL = 0.5  # seconds between timeout sweeps
    SAMPLE_EVERY = 256  # trace one packet span per this many (0: off)
    MICROFLOW_CAP = 4096  # cached exact-frame entries before a reset

    def __init__(self, sim: Simulator, dpid: int, name: str = "",
                 n_buffers: int = 256, miss_send_len: int = 128):
        self.sim = sim
        self.dpid = dpid
        self.name = name or ("s%d" % dpid)
        self.ports: Dict[int, SwitchPort] = {}
        self.table = FlowTable(on_removed=self._flow_removed)
        self.groups = GroupTable()
        self.channel: Optional[ControllerChannel] = None
        self.n_buffers = n_buffers
        self.miss_send_len = miss_send_len
        self._buffers: Dict[int, tuple] = {}
        self._next_buffer = 1
        self._expiry_task = None
        # plain-int counters: this is the hot path, so telemetry pulls
        # them through a registry collector instead of per-event calls
        self.packet_in_count = 0
        self.flow_mod_count = 0
        self.group_mod_count = 0
        self.group_flip_count = 0
        self.forwarded_count = 0
        self.dropped_count = 0
        self.table_hit_count = 0
        self.table_miss_count = 0
        self.microflow_hit_count = 0
        self._pkt_seq = 0
        # OVS-style microflow cache: exact (in_port, frame bytes) ->
        # (entry, rewritten wire bytes, out_ports).  Valid because the
        # datapath is a pure function of the frame and the flow table;
        # any table mutation bumps table.version and flushes it.
        self._microflow: Dict[tuple, tuple] = {}
        self._microflow_version = self.table.version
        # flowtrace handle bound once (ESCAPE re-homes it for switches
        # built before its bundle became current); the disabled path is
        # one attribute check per frame
        self._flowtrace = current_telemetry().flowtrace

    # -- ports ----------------------------------------------------------------

    def add_port(self, port_no: int, name: str = "",
                 hw_addr: str = "") -> SwitchPort:
        if port_no in self.ports:
            raise ValueError("%s: port %d already exists"
                             % (self.name, port_no))
        if not hw_addr:
            hw_addr = "02:%02x:%02x:%02x:%02x:%02x" % (
                (self.dpid >> 24) & 0xFF, (self.dpid >> 16) & 0xFF,
                (self.dpid >> 8) & 0xFF, self.dpid & 0xFF, port_no & 0xFF)
        port = SwitchPort(self, port_no, name or "%s-eth%d"
                          % (self.name, port_no), hw_addr)
        self.ports[port_no] = port
        if self.channel is not None and self.channel.connected:
            self.channel.send_to_controller(
                msg.PortStatus(msg.PortStatus.REASON_ADD,
                               port.description()))
        return port

    def set_port_up(self, port_no: int, up: bool) -> None:
        """Flip a port's liveness — the dataplane half of link state.

        netem calls this from ``Link.set_up`` at the same simulated
        instant the link changes, so fast-failover groups watching the
        port re-steer locally with no controller round trip.  The
        controller still hears about it: a PortStatus(REASON_MODIFY)
        goes up the channel deterministically (no discovery lag).
        """
        port = self.ports.get(port_no)
        if port is None or port.up == up:
            return
        port.up = up
        # memoized rewrites may embed a group resolution through this
        # port — invalidate them all; steady-state forwarding re-caches
        self._microflow.clear()
        events = current_telemetry().events
        note = events.info if up else events.warn
        note("openflow.switch", "of.port.up" if up else "of.port.down",
             "%s port %d (%s)" % (self.name, port_no, port.name),
             dpid=self.dpid, port=port_no, port_name=port.name)
        if self.channel is not None and self.channel.connected:
            self.channel.send_to_controller(
                msg.PortStatus(msg.PortStatus.REASON_MODIFY,
                               port.description()))

    # -- controller connection ------------------------------------------------

    def connect_controller(self, channel: ControllerChannel) -> None:
        """Attach the control channel and start the OF handshake."""
        self.channel = channel
        channel.set_switch_receiver(self._handle_controller_message)
        channel.connect()
        channel.send_to_controller(msg.Hello())
        self._arm_expiry()

    def disconnect_controller(self) -> None:
        if self.channel is not None:
            self.channel.disconnect()
            self.channel = None
        if self._expiry_task is not None:
            self._expiry_task.cancel()
            self._expiry_task = None

    def _arm_expiry(self) -> None:
        self._expiry_task = self.sim.schedule(self.EXPIRY_INTERVAL,
                                              self._expiry_sweep)

    def _expiry_sweep(self) -> None:
        self.table.expire(self.sim.now)
        self._arm_expiry()

    def _flow_removed(self, entry: FlowEntry, reason: int) -> None:
        if (entry.flags & msg.FlowMod.SEND_FLOW_REM
                and self.channel is not None):
            self.channel.send_to_controller(msg.FlowRemoved(
                entry.match, entry.cookie, entry.priority, reason,
                entry.duration(self.sim.now), entry.packet_count,
                entry.byte_count))

    # -- datapath -------------------------------------------------------------

    def process_packet(self, in_port: int, data: bytes) -> None:
        """Run one frame through the flow table."""
        flowtrace = self._flowtrace
        if flowtrace.enabled:
            # recorded ahead of the pipeline so microflow hits are
            # postcarded too — the conformance checker needs every
            # switch a sampled packet visits
            flowtrace.record("switch", self.name, self.sim.now, data,
                             dpid=self.dpid)
        seq = self._pkt_seq
        self._pkt_seq = seq + 1
        if self.SAMPLE_EVERY and seq % self.SAMPLE_EVERY == 0:
            # sampled dataplane span (1 in SAMPLE_EVERY packets)
            with current_telemetry().tracer.span(
                    "openflow.packet", switch=self.name,
                    in_port=in_port, bytes=len(data)):
                self._process_packet(in_port, data)
        else:
            self._process_packet(in_port, data)

    def _process_packet(self, in_port: int, data: bytes) -> None:
        now = self.sim.now
        # expire() early-exits on a float compare until something can
        # actually time out; removals bump table.version which flushes
        # the microflow cache below.
        self.table.expire(now)
        if self._microflow_version != self.table.version:
            self._microflow.clear()
            self._microflow_version = self.table.version
        cached = self._microflow.get((in_port, data))
        if cached is not None:
            entry, wire, out_ports = cached
            self.table_hit_count += 1
            self.microflow_hit_count += 1
            entry.note_hit(len(data), now)
            if wire is None:
                self.dropped_count += 1
                return
            for port_no in out_ports:
                self._output(port_no, wire, in_port)
            return
        entry = self.table.lookup(data, in_port, now)
        if entry is None:
            self.table_miss_count += 1
            self._table_miss(in_port, data)
            return
        self.table_hit_count += 1
        entry.note_hit(len(data), now)
        wire, out_ports = self._execute(entry.actions, data, in_port)
        if len(self._microflow) >= self.MICROFLOW_CAP:
            self._microflow.clear()
        self._microflow[(in_port, data)] = (entry, wire, out_ports)

    def _execute(self, actions, data: bytes, in_port: Optional[int]) -> tuple:
        """Apply ``actions`` to the frame; returns ``(wire, out_ports)``
        so table hits can memoize the rewrite (``wire`` is None for a
        drop)."""
        if not actions:
            self.dropped_count += 1
            return None, ()
        if self.groups.groups:
            # only switches with installed groups pay this scan, and
            # only on microflow-cache misses — the steady-state hot
            # path replays the memoized resolution
            actions = self._resolve_groups(actions)
        try:
            frame = Ethernet.unpack(data)
        except PacketError:
            self.dropped_count += 1
            return None, ()
        frame, out_ports = apply_actions(actions, frame)
        if not out_ports:
            self.dropped_count += 1
            return None, ()
        wire = frame.pack()
        out_ports = tuple(out_ports)
        for port_no in out_ports:
            self._output(port_no, wire, in_port)
        return wire, out_ports

    def _resolve_groups(self, actions) -> list:
        """Expand Group actions into the live bucket's actions.

        FAST_FAILOVER semantics: first bucket whose watched port is up
        wins; with no live bucket (or an unknown group) the group
        contributes nothing, so the frame drops unless another action
        outputs it.  Bucket transitions are the dataplane failover —
        counted and logged so recovery can attribute the flip.
        """
        resolved = []
        for action in actions:
            if type(action) is not Group:
                resolved.append(action)
                continue
            entry = self.groups.get(action.group_id)
            if entry is None:
                continue
            selected = entry.select(self.ports)
            index = selected[0] if selected is not None else None
            if index != entry.current_bucket:
                self._note_group_flip(entry, index)
            if selected is not None:
                resolved.extend(selected[1].actions)
        return resolved

    def _note_group_flip(self, entry, index: Optional[int]) -> None:
        previous = entry.current_bucket
        entry.current_bucket = index
        if previous is None and index == 0:
            return  # first resolution landing on the primary bucket
        self.group_flip_count += 1
        telemetry = current_telemetry()
        telemetry.metrics.counter(
            "openflow.group.flips",
            "fast-failover bucket transitions").inc()
        telemetry.events.warn(
            "openflow.group", "of.group.flip",
            "%s group %d bucket %s -> %s" % (self.name, entry.group_id,
                                             previous, index),
            dpid=self.dpid, group=entry.group_id,
            from_bucket=previous if previous is not None else "",
            to_bucket=index if index is not None else "")

    def _output(self, port_no: int, data: bytes,
                in_port: Optional[int]) -> None:
        if port_no in (OFPP_FLOOD, OFPP_ALL):
            for number, port in self.ports.items():
                if port_no == OFPP_FLOOD and number == in_port:
                    continue
                port.send(data)
                self.forwarded_count += 1
            return
        if port_no == OFPP_IN_PORT:
            port_no = in_port if in_port is not None else OFPP_NONE
        if port_no == OFPP_CONTROLLER:
            self._send_packet_in(in_port or 0, data,
                                 msg.PacketIn.REASON_ACTION)
            return
        if port_no in (OFPP_NONE, OFPP_LOCAL):
            return
        port = self.ports.get(port_no)
        if port is None:
            self.dropped_count += 1
            return
        port.send(data)
        self.forwarded_count += 1

    def _table_miss(self, in_port: int, data: bytes) -> None:
        if self.channel is None or not self.channel.connected:
            self.dropped_count += 1
            return
        self._send_packet_in(in_port, data, msg.PacketIn.REASON_NO_MATCH)

    def _send_packet_in(self, in_port: int, data: bytes,
                        reason: int) -> None:
        buffer_id: Optional[int] = None
        payload = data
        if len(self._buffers) < self.n_buffers:
            buffer_id = self._next_buffer
            self._next_buffer += 1
            self._buffers[buffer_id] = (data, in_port)
            payload = data[: self.miss_send_len]
        self.packet_in_count += 1
        self.channel.send_to_controller(msg.PacketIn(
            buffer_id, in_port, payload, reason, total_len=len(data)))

    # -- controller message handling ------------------------------------------

    def _handle_controller_message(self, message: msg.Message) -> None:
        if isinstance(message, msg.Hello):
            return
        if isinstance(message, msg.EchoRequest):
            self.channel.send_to_controller(
                msg.EchoReply(message.data, xid=message.xid))
        elif isinstance(message, msg.FeaturesRequest):
            self.channel.send_to_controller(msg.FeaturesReply(
                self.dpid,
                [port.description() for port in self.ports.values()],
                n_buffers=self.n_buffers, xid=message.xid))
        elif isinstance(message, msg.FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, msg.GroupMod):
            self._handle_group_mod(message)
        elif isinstance(message, msg.PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, msg.BarrierRequest):
            self.channel.send_to_controller(
                msg.BarrierReply(xid=message.xid))
        elif isinstance(message, msg.FlowStatsRequest):
            entries = self.table.stats(message.match, self.sim.now)
            self.channel.send_to_controller(msg.FlowStatsReply(
                [msg.FlowStats(entry.match, entry.priority, entry.cookie,
                               entry.duration(self.sim.now),
                               entry.packet_count, entry.byte_count,
                               entry.actions)
                 for entry in entries], xid=message.xid))
        elif isinstance(message, msg.PortStatsRequest):
            ports = (self.ports.values() if message.port_no is None
                     else [self.ports[message.port_no]]
                     if message.port_no in self.ports else [])
            self.channel.send_to_controller(msg.PortStatsReply(
                [port.stats() for port in ports], xid=message.xid))

    def _handle_flow_mod(self, flow_mod: msg.FlowMod) -> None:
        self.flow_mod_count += 1
        if flow_mod.command == msg.FlowMod.ADD:
            self.table.add(FlowEntry(
                flow_mod.match, flow_mod.actions, flow_mod.priority,
                flow_mod.idle_timeout, flow_mod.hard_timeout,
                flow_mod.cookie, flow_mod.flags, self.sim.now))
        elif flow_mod.command in (msg.FlowMod.MODIFY,
                                  msg.FlowMod.MODIFY_STRICT):
            strict = flow_mod.command == msg.FlowMod.MODIFY_STRICT
            updated = self.table.modify(flow_mod.match, flow_mod.actions,
                                        strict, flow_mod.priority)
            if not updated:
                self.table.add(FlowEntry(
                    flow_mod.match, flow_mod.actions, flow_mod.priority,
                    flow_mod.idle_timeout, flow_mod.hard_timeout,
                    flow_mod.cookie, flow_mod.flags, self.sim.now))
        elif flow_mod.command in (msg.FlowMod.DELETE,
                                  msg.FlowMod.DELETE_STRICT):
            strict = flow_mod.command == msg.FlowMod.DELETE_STRICT
            self.table.delete(flow_mod.match, strict, flow_mod.priority,
                              self.sim.now)
        # Release the buffered packet through the new actions, if asked.
        if flow_mod.buffer_id is not None:
            buffered = self._buffers.pop(flow_mod.buffer_id, None)
            if buffered is not None:
                data, in_port = buffered
                self._execute(flow_mod.actions, data, in_port)

    def _handle_group_mod(self, group_mod: msg.GroupMod) -> None:
        self.group_mod_count += 1
        try:
            if group_mod.command == msg.GroupMod.ADD:
                self.groups.add(group_mod.group_id,
                                group_mod.group_type, group_mod.buckets)
            elif group_mod.command == msg.GroupMod.MODIFY:
                self.groups.modify(group_mod.group_id,
                                   group_mod.group_type,
                                   group_mod.buckets)
            elif group_mod.command == msg.GroupMod.DELETE:
                self.groups.delete(group_mod.group_id)
            else:
                raise GroupError("bad group mod command %d"
                                 % group_mod.command)
        except GroupError as exc:
            if self.channel is not None and self.channel.connected:
                self.channel.send_to_controller(msg.ErrorMessage(
                    msg.ErrorMessage.TYPE_GROUP_MOD_FAILED, exc.code,
                    xid=group_mod.xid))
            return
        # cached resolutions may reference the touched group
        self._microflow.clear()

    def _handle_packet_out(self, packet_out: msg.PacketOut) -> None:
        if packet_out.buffer_id is not None:
            buffered = self._buffers.pop(packet_out.buffer_id, None)
            if buffered is None:
                return
            data, in_port = buffered
        else:
            data = packet_out.data
            in_port = packet_out.in_port
        self._execute(packet_out.actions, data, in_port)

    def __repr__(self) -> str:
        return "OpenFlowSwitch(%s, dpid=%d, %d ports, %d flows)" % (
            self.name, self.dpid, len(self.ports), len(self.table))
