"""OpenFlow 1.0 subset.

The emulated infrastructure's switches are OpenFlow datapaths (the
paper's Open vSwitch), programmed by the POX-analog controller through
:class:`ControllerChannel`.  Messages are Python objects rather than the
OF wire format — the channel is in-process — but the *semantics*
(12-tuple match with wildcards, priority tables, idle/hard timeouts,
packet-in/packet-out, flow-removed, stats) follow OF 1.0, which is what
the paper's steering module programs against.
"""

from repro.openflow.actions import (Action, Group, Output, SetDlDst,
                                    SetDlSrc, SetNwDst, SetNwSrc,
                                    SetTpDst, SetTpSrc, SetVlan,
                                    StripVlan)
from repro.openflow.channel import ChannelError, ControllerChannel
from repro.openflow.flowtable import (FlowEntry, FlowTable, GroupEntry,
                                      GroupError, GroupTable)
from repro.openflow.match import Match
from repro.openflow.messages import (BarrierReply, BarrierRequest,
                                     EchoReply, EchoRequest,
                                     FeaturesReply, FeaturesRequest,
                                     FlowMod, FlowRemoved, FlowStatsReply,
                                     FlowStatsRequest, GroupBucket,
                                     GroupMod, Hello, Message,
                                     PacketIn, PacketOut, PortDescription,
                                     PortStatsReply, PortStatsRequest,
                                     PortStatus)
from repro.openflow.switch import (OFPP_ALL, OFPP_CONTROLLER, OFPP_FLOOD,
                                   OFPP_IN_PORT, OFPP_LOCAL, OFPP_NONE,
                                   OpenFlowSwitch, SwitchPort)

__all__ = [
    "Action",
    "BarrierReply",
    "BarrierRequest",
    "ChannelError",
    "ControllerChannel",
    "EchoReply",
    "EchoRequest",
    "FeaturesReply",
    "FeaturesRequest",
    "FlowEntry",
    "FlowMod",
    "FlowRemoved",
    "FlowStatsReply",
    "FlowStatsRequest",
    "FlowTable",
    "Group",
    "GroupBucket",
    "GroupEntry",
    "GroupError",
    "GroupMod",
    "GroupTable",
    "Hello",
    "Match",
    "Message",
    "OFPP_ALL",
    "OFPP_CONTROLLER",
    "OFPP_FLOOD",
    "OFPP_IN_PORT",
    "OFPP_LOCAL",
    "OFPP_NONE",
    "OpenFlowSwitch",
    "Output",
    "PacketIn",
    "PacketOut",
    "PortDescription",
    "PortStatsReply",
    "PortStatsRequest",
    "PortStatus",
    "SetDlDst",
    "SetDlSrc",
    "SetNwDst",
    "SetNwSrc",
    "SetTpDst",
    "SetTpSrc",
    "SetVlan",
    "StripVlan",
    "SwitchPort",
]
