"""The in-process switch↔controller channel.

Stands in for the OF-over-TCP connection: bidirectional, ordered,
delivers each message after a configurable latency on the shared
simulator.  Either side installs a receive callback; the channel only
delivers while ``connected``.
"""

from typing import Callable, Optional

from repro.sim import Simulator


class ChannelError(Exception):
    pass


class ControllerChannel:
    """One switch's control connection.

    ``to_controller``/``to_switch`` carry messages each way; receivers
    are installed with :meth:`set_controller_receiver` /
    :meth:`set_switch_receiver`.
    """

    def __init__(self, sim: Simulator, latency: float = 0.0005,
                 serialize: bool = False):
        self.sim = sim
        self.latency = latency
        self.serialize = serialize
        self.connected = False
        self._controller_rx: Optional[Callable] = None
        self._switch_rx: Optional[Callable] = None
        self.to_controller_count = 0
        self.to_switch_count = 0
        self.wire_bytes = 0

    def _encode(self, message):
        """With serialize=True every message round-trips the real OF 1.0
        wire format, proving the control plane is wire-compatible."""
        if not self.serialize:
            return message
        from repro.openflow.wire import pack_message
        wire = pack_message(message)
        self.wire_bytes += len(wire)
        return wire

    def _decode(self, payload):
        if not self.serialize:
            return payload
        from repro.openflow.wire import unpack_message
        return unpack_message(payload)

    def connect(self) -> None:
        self.connected = True

    def disconnect(self) -> None:
        self.connected = False

    def set_controller_receiver(self, callback: Callable) -> None:
        self._controller_rx = callback

    def set_switch_receiver(self, callback: Callable) -> None:
        self._switch_rx = callback

    def send_to_controller(self, message) -> None:
        """Switch → controller."""
        if not self.connected:
            return
        self.to_controller_count += 1
        self.sim.schedule(self.latency, self._deliver_to_controller,
                          self._encode(message))

    def send_to_switch(self, message) -> None:
        """Controller → switch."""
        if not self.connected:
            return
        self.to_switch_count += 1
        self.sim.schedule(self.latency, self._deliver_to_switch,
                          self._encode(message))

    def _deliver_to_controller(self, message) -> None:
        if self.connected and self._controller_rx is not None:
            self._controller_rx(self._decode(message))

    def _deliver_to_switch(self, message) -> None:
        if self.connected and self._switch_rx is not None:
            self._switch_rx(self._decode(message))

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return "ControllerChannel(%s, up=%d msgs, down=%d msgs)" % (
            state, self.to_controller_count, self.to_switch_count)
