"""OpenFlow 1.0 actions, applied to parsed Ethernet frames."""

from typing import List, Optional, Union

from repro.packet import EthAddr, Ethernet, IPAddr, IPv4, TCP, UDP, Vlan


class Action:
    """Base class.  :meth:`apply` may rewrite the frame in place and
    returns it (Output is handled by the switch, not here)."""

    def apply(self, frame: Ethernet) -> Ethernet:
        return frame

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and vars(self) == vars(other)

    def __repr__(self) -> str:
        fields = ", ".join("%s=%s" % item for item in vars(self).items())
        return "%s(%s)" % (type(self).__name__, fields)


class Output(Action):
    """Forward out of ``port`` (or a virtual port like OFPP_FLOOD)."""

    def __init__(self, port: int):
        self.port = port


class Group(Action):
    """Hand the frame to group ``group_id`` (OF 1.1 OFPAT_GROUP,
    carried here as an extension to the 1.0 subset).

    The switch resolves the group at execution time — for a
    FAST_FAILOVER group that means the first bucket whose watched port
    is live — so this action has no :meth:`apply` of its own.
    """

    def __init__(self, group_id: int):
        self.group_id = group_id


class SetVlan(Action):
    """Set (pushing if absent) the 802.1Q VLAN id."""

    def __init__(self, vid: int):
        if not 0 <= vid < 4096:
            raise ValueError("VLAN id out of range: %d" % vid)
        self.vid = vid

    def apply(self, frame: Ethernet) -> Ethernet:
        vlan = frame.find(Vlan)
        if vlan is not None:
            vlan.vid = self.vid
            return frame
        tag = Vlan(vid=self.vid, type=frame.type, payload=frame.payload)
        frame.type = Ethernet.VLAN_TYPE
        frame.payload = tag
        return frame


class StripVlan(Action):
    """Remove the outermost 802.1Q tag, if any."""

    def apply(self, frame: Ethernet) -> Ethernet:
        if frame.type == Ethernet.VLAN_TYPE and isinstance(frame.payload,
                                                           Vlan):
            tag = frame.payload
            frame.type = tag.type
            frame.payload = tag.payload
        return frame


class SetDlSrc(Action):
    def __init__(self, addr: Union[str, EthAddr]):
        self.addr = EthAddr(addr)

    def apply(self, frame: Ethernet) -> Ethernet:
        frame.src = self.addr
        return frame


class SetDlDst(Action):
    def __init__(self, addr: Union[str, EthAddr]):
        self.addr = EthAddr(addr)

    def apply(self, frame: Ethernet) -> Ethernet:
        frame.dst = self.addr
        return frame


class SetNwSrc(Action):
    def __init__(self, addr: Union[str, IPAddr]):
        self.addr = IPAddr(addr)

    def apply(self, frame: Ethernet) -> Ethernet:
        ip = frame.find(IPv4)
        if ip is not None:
            ip.srcip = self.addr
        return frame


class SetNwDst(Action):
    def __init__(self, addr: Union[str, IPAddr]):
        self.addr = IPAddr(addr)

    def apply(self, frame: Ethernet) -> Ethernet:
        ip = frame.find(IPv4)
        if ip is not None:
            ip.dstip = self.addr
        return frame


class SetTpSrc(Action):
    def __init__(self, port: int):
        self.port = port

    def apply(self, frame: Ethernet) -> Ethernet:
        l4 = frame.find(TCP) or frame.find(UDP)
        if l4 is not None:
            l4.srcport = self.port
        return frame


class SetTpDst(Action):
    def __init__(self, port: int):
        self.port = port

    def apply(self, frame: Ethernet) -> Ethernet:
        l4 = frame.find(TCP) or frame.find(UDP)
        if l4 is not None:
            l4.dstport = self.port
        return frame


def apply_actions(actions: List[Action],
                  frame: Ethernet) -> (Ethernet, List[int]):
    """Apply rewrite actions in order; collect Output ports.

    Returns the (possibly rewritten) frame and the list of output port
    numbers in action order, as OF 1.0 executes action lists.
    """
    out_ports: List[int] = []
    for action in actions:
        if isinstance(action, Output):
            out_ports.append(action.port)
        else:
            frame = action.apply(frame)
    return frame, out_ports
