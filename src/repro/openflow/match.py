"""OpenFlow 1.0 12-tuple match with per-field wildcards."""

from typing import Optional, Union

from repro.packet import ARP, EthAddr, Ethernet, IPAddr, IPv4, TCP, UDP, Vlan
from repro.packet.icmp import ICMP

# Fields of the OF 1.0 match, in spec order.
MATCH_FIELDS = ("in_port", "dl_src", "dl_dst", "dl_vlan", "dl_type",
                "nw_tos", "nw_proto", "nw_src", "nw_dst",
                "tp_src", "tp_dst")

NO_VLAN = 0xFFFF  # OFP_VLAN_NONE


class Match:
    """A match pattern; ``None`` fields are wildcarded.

    ``nw_src``/``nw_dst`` accept either an :class:`IPAddr` (exact) or a
    ``(IPAddr, prefix_len)`` tuple for CIDR matching, mirroring OF 1.0's
    nw-address wildcard bits.
    """

    __slots__ = MATCH_FIELDS

    def __init__(self, in_port: Optional[int] = None,
                 dl_src: Optional[Union[str, EthAddr]] = None,
                 dl_dst: Optional[Union[str, EthAddr]] = None,
                 dl_vlan: Optional[int] = None,
                 dl_type: Optional[int] = None,
                 nw_tos: Optional[int] = None,
                 nw_proto: Optional[int] = None,
                 nw_src=None, nw_dst=None,
                 tp_src: Optional[int] = None,
                 tp_dst: Optional[int] = None):
        self.in_port = in_port
        self.dl_src = EthAddr(dl_src) if dl_src is not None else None
        self.dl_dst = EthAddr(dl_dst) if dl_dst is not None else None
        self.dl_vlan = dl_vlan
        self.dl_type = dl_type
        self.nw_tos = nw_tos
        self.nw_proto = nw_proto
        self.nw_src = self._normalize_nw(nw_src)
        self.nw_dst = self._normalize_nw(nw_dst)
        self.tp_src = tp_src
        self.tp_dst = tp_dst

    @staticmethod
    def _normalize_nw(value):
        if value is None:
            return None
        if isinstance(value, str) and "/" in value:
            addr, prefix = value.split("/", 1)
            value = (IPAddr(addr), int(prefix))
        if isinstance(value, tuple):
            addr, prefix = IPAddr(value[0]), int(value[1])
            if prefix >= 32:
                return addr   # /32 is an exact match
            if prefix <= 0:
                return None   # /0 is a wildcard
            return (addr, prefix)
        return IPAddr(value)

    # -- construction from a packet -------------------------------------

    @classmethod
    def from_packet(cls, packet: Union[Ethernet, bytes],
                    in_port: Optional[int] = None) -> "Match":
        """Exact-match fields extracted from ``packet`` (OF 1.0 style)."""
        if isinstance(packet, (bytes, bytearray)):
            packet = Ethernet.unpack(bytes(packet))
        match = cls(in_port=in_port, dl_src=packet.src, dl_dst=packet.dst)
        vlan = packet.find(Vlan)
        match.dl_vlan = vlan.vid if vlan is not None else NO_VLAN
        match.dl_type = packet.effective_type()
        ip = packet.find(IPv4)
        arp = packet.find(ARP)
        if ip is not None:
            match.nw_tos = ip.tos
            match.nw_proto = ip.protocol
            match.nw_src = ip.srcip
            match.nw_dst = ip.dstip
            l4 = ip.find(TCP) or ip.find(UDP)
            if l4 is not None:
                match.tp_src = l4.srcport
                match.tp_dst = l4.dstport
            else:
                icmp = ip.find(ICMP)
                if icmp is not None:
                    # OF 1.0 reuses tp_src/tp_dst for ICMP type/code.
                    match.tp_src = icmp.type
                    match.tp_dst = icmp.code
        elif arp is not None:
            match.nw_proto = arp.opcode
            match.nw_src = arp.protosrc
            match.nw_dst = arp.protodst
        return match

    # -- matching ---------------------------------------------------------

    @staticmethod
    def _nw_matches(pattern, value: Optional[IPAddr]) -> bool:
        if pattern is None:
            return True
        if value is None:
            return False
        if isinstance(pattern, tuple):
            addr, prefix = pattern
            return value.in_network(addr, prefix)
        return value == pattern

    def matches_packet(self, packet: Union[Ethernet, bytes],
                       in_port: Optional[int] = None) -> bool:
        """Does this pattern match the concrete packet?"""
        concrete = Match.from_packet(packet, in_port)
        return self.matches(concrete)

    def matches(self, concrete: "Match") -> bool:
        """Does this (possibly wildcarded) pattern cover ``concrete``?

        ``concrete`` is normally an exact match built by
        :meth:`from_packet`; any field it leaves as None only matches a
        wildcard in the pattern.
        """
        for field in ("in_port", "dl_src", "dl_dst", "dl_vlan", "dl_type",
                      "nw_tos", "nw_proto", "tp_src", "tp_dst"):
            pattern_value = getattr(self, field)
            if pattern_value is None:
                continue
            if getattr(concrete, field) != pattern_value:
                return False
        if not self._nw_matches(self.nw_src, self._exact_nw(concrete.nw_src)):
            return False
        if not self._nw_matches(self.nw_dst, self._exact_nw(concrete.nw_dst)):
            return False
        return True

    @staticmethod
    def _exact_nw(value) -> Optional[IPAddr]:
        if isinstance(value, tuple):
            return value[0]
        return value

    def is_subset_of(self, other: "Match") -> bool:
        """True when every packet this matches is also matched by
        ``other`` (used for OFPFC_DELETE semantics)."""
        for field in MATCH_FIELDS:
            other_value = getattr(other, field)
            if other_value is None:
                continue
            if getattr(self, field) != other_value:
                return False
        return True

    @property
    def wildcard_count(self) -> int:
        return sum(1 for field in MATCH_FIELDS
                   if getattr(self, field) is None)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return all(getattr(self, field) == getattr(other, field)
                   for field in MATCH_FIELDS)

    def __hash__(self) -> int:
        return hash(tuple(str(getattr(self, field))
                          for field in MATCH_FIELDS))

    def __repr__(self) -> str:
        set_fields = ", ".join(
            "%s=%s" % (field, getattr(self, field))
            for field in MATCH_FIELDS if getattr(self, field) is not None)
        return "Match(%s)" % (set_fields or "*")
