"""OpenFlow 1.0 wire format: pack/unpack for the message subset.

The in-process channel normally passes message *objects*; this module
closes the fidelity gap by providing the actual OF 1.0 binary encoding
(per openflow.h of the 1.0.0 spec) for every message class in
:mod:`repro.openflow.messages`.  ``ControllerChannel(serialize=True)``
round-trips every message through these codecs, so the control plane
demonstrably speaks the real wire format.

Float timeouts/durations are carried at OF granularity (whole seconds
for timeouts, sec+nsec for durations) — the only lossy conversion.
"""

import struct
from typing import List, Optional, Tuple

from repro import telemetry
from repro.openflow import messages as msg
from repro.openflow.actions import (Action, Group, Output, SetDlDst,
                                    SetDlSrc, SetNwDst, SetNwSrc,
                                    SetTpDst, SetTpSrc, SetVlan,
                                    StripVlan)
from repro.openflow.match import Match, NO_VLAN
from repro.packet import EthAddr, IPAddr

OFP_VERSION = 0x01

# message type codes (ofp_type)
OFPT_HELLO = 0
OFPT_ERROR = 1
OFPT_ECHO_REQUEST = 2
OFPT_ECHO_REPLY = 3
OFPT_FEATURES_REQUEST = 5
OFPT_FEATURES_REPLY = 6
OFPT_PACKET_IN = 10
OFPT_FLOW_REMOVED = 11
OFPT_PORT_STATUS = 12
OFPT_PACKET_OUT = 13
OFPT_FLOW_MOD = 14
OFPT_GROUP_MOD = 15  # OF 1.1 message, carried as an extension
OFPT_STATS_REQUEST = 16
OFPT_STATS_REPLY = 17
OFPT_BARRIER_REQUEST = 18
OFPT_BARRIER_REPLY = 19

# wildcard bits (ofp_flow_wildcards)
OFPFW_IN_PORT = 1 << 0
OFPFW_DL_VLAN = 1 << 1
OFPFW_DL_SRC = 1 << 2
OFPFW_DL_DST = 1 << 3
OFPFW_DL_TYPE = 1 << 4
OFPFW_NW_PROTO = 1 << 5
OFPFW_TP_SRC = 1 << 6
OFPFW_TP_DST = 1 << 7
OFPFW_NW_SRC_SHIFT = 8
OFPFW_NW_DST_SHIFT = 14
OFPFW_DL_VLAN_PCP = 1 << 20
OFPFW_NW_TOS = 1 << 21

# action type codes
OFPAT_OUTPUT = 0
OFPAT_SET_VLAN_VID = 1
OFPAT_STRIP_VLAN = 3
OFPAT_SET_DL_SRC = 4
OFPAT_SET_DL_DST = 5
OFPAT_SET_NW_SRC = 6
OFPAT_SET_NW_DST = 7
OFPAT_SET_TP_SRC = 9
OFPAT_SET_TP_DST = 10
OFPAT_GROUP = 22  # OF 1.1 action, carried as an extension

OFPST_FLOW = 1
OFPST_PORT = 4

NO_BUFFER = 0xFFFFFFFF
OFPP_NONE_WIRE = 0xFFFF
OFPP_ANY_WIRE = 0xFFFFFFFF  # OF 1.1 32-bit "no port" (bucket watch)


class WireError(Exception):
    pass


# -- match ----------------------------------------------------------------


def pack_match(match: Match) -> bytes:
    wildcards = 0
    if match.in_port is None:
        wildcards |= OFPFW_IN_PORT
    if match.dl_vlan is None:
        wildcards |= OFPFW_DL_VLAN
    if match.dl_src is None:
        wildcards |= OFPFW_DL_SRC
    if match.dl_dst is None:
        wildcards |= OFPFW_DL_DST
    if match.dl_type is None:
        wildcards |= OFPFW_DL_TYPE
    if match.nw_proto is None:
        wildcards |= OFPFW_NW_PROTO
    if match.tp_src is None:
        wildcards |= OFPFW_TP_SRC
    if match.tp_dst is None:
        wildcards |= OFPFW_TP_DST
    if match.nw_tos is None:
        wildcards |= OFPFW_NW_TOS
    wildcards |= OFPFW_DL_VLAN_PCP  # pcp is not modelled

    def nw_bits(value) -> Tuple[int, IPAddr]:
        if value is None:
            return 32, IPAddr(0)
        if isinstance(value, tuple):
            addr, prefix = value
            return 32 - prefix, addr
        return 0, value

    src_wild, src_addr = nw_bits(match.nw_src)
    dst_wild, dst_addr = nw_bits(match.nw_dst)
    wildcards |= (src_wild & 0x3F) << OFPFW_NW_SRC_SHIFT
    wildcards |= (dst_wild & 0x3F) << OFPFW_NW_DST_SHIFT

    dl_src = match.dl_src.raw if match.dl_src else b"\x00" * 6
    dl_dst = match.dl_dst.raw if match.dl_dst else b"\x00" * 6
    return struct.pack(
        "!IH6s6sHBxHBBxx4s4sHH",
        wildcards,
        match.in_port or 0,
        dl_src, dl_dst,
        match.dl_vlan if match.dl_vlan is not None else 0,
        0,  # dl_vlan_pcp
        match.dl_type or 0,
        match.nw_tos or 0,
        match.nw_proto or 0,
        src_addr.raw, dst_addr.raw,
        match.tp_src or 0,
        match.tp_dst or 0)


def unpack_match(data: bytes) -> Match:
    if len(data) < 40:
        raise WireError("match requires 40 bytes, got %d" % len(data))
    (wildcards, in_port, dl_src, dl_dst, dl_vlan, _pcp, dl_type,
     nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst) = struct.unpack(
        "!IH6s6sHBxHBBxx4s4sHH", data[:40])
    match = Match()
    if not wildcards & OFPFW_IN_PORT:
        match.in_port = in_port
    if not wildcards & OFPFW_DL_VLAN:
        match.dl_vlan = dl_vlan
    if not wildcards & OFPFW_DL_SRC:
        match.dl_src = EthAddr(dl_src)
    if not wildcards & OFPFW_DL_DST:
        match.dl_dst = EthAddr(dl_dst)
    if not wildcards & OFPFW_DL_TYPE:
        match.dl_type = dl_type
    if not wildcards & OFPFW_NW_TOS:
        match.nw_tos = nw_tos
    if not wildcards & OFPFW_NW_PROTO:
        match.nw_proto = nw_proto
    if not wildcards & OFPFW_TP_SRC:
        match.tp_src = tp_src
    if not wildcards & OFPFW_TP_DST:
        match.tp_dst = tp_dst
    src_wild = (wildcards >> OFPFW_NW_SRC_SHIFT) & 0x3F
    dst_wild = (wildcards >> OFPFW_NW_DST_SHIFT) & 0x3F
    if src_wild == 0:
        match.nw_src = IPAddr(nw_src)
    elif src_wild < 32:
        match.nw_src = (IPAddr(nw_src), 32 - src_wild)
    if dst_wild == 0:
        match.nw_dst = IPAddr(nw_dst)
    elif dst_wild < 32:
        match.nw_dst = (IPAddr(nw_dst), 32 - dst_wild)
    return match


# -- actions -----------------------------------------------------------------


def pack_action(action: Action) -> bytes:
    if isinstance(action, Output):
        return struct.pack("!HHHH", OFPAT_OUTPUT, 8, action.port, 0xFFFF)
    if isinstance(action, SetVlan):
        return struct.pack("!HHHxx", OFPAT_SET_VLAN_VID, 8, action.vid)
    if isinstance(action, StripVlan):
        return struct.pack("!HH4x", OFPAT_STRIP_VLAN, 8)
    if isinstance(action, SetDlSrc):
        return struct.pack("!HH6s6x", OFPAT_SET_DL_SRC, 16,
                           action.addr.raw)
    if isinstance(action, SetDlDst):
        return struct.pack("!HH6s6x", OFPAT_SET_DL_DST, 16,
                           action.addr.raw)
    if isinstance(action, SetNwSrc):
        return struct.pack("!HH4s", OFPAT_SET_NW_SRC, 8, action.addr.raw)
    if isinstance(action, SetNwDst):
        return struct.pack("!HH4s", OFPAT_SET_NW_DST, 8, action.addr.raw)
    if isinstance(action, SetTpSrc):
        return struct.pack("!HHHxx", OFPAT_SET_TP_SRC, 8, action.port)
    if isinstance(action, SetTpDst):
        return struct.pack("!HHHxx", OFPAT_SET_TP_DST, 8, action.port)
    if isinstance(action, Group):
        return struct.pack("!HHI", OFPAT_GROUP, 8, action.group_id)
    raise WireError("cannot serialize action %r" % action)


def pack_actions(actions: List[Action]) -> bytes:
    return b"".join(pack_action(action) for action in actions)


def unpack_actions(data: bytes) -> List[Action]:
    actions: List[Action] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < 4:
            raise WireError("truncated action header")
        action_type, length = struct.unpack_from("!HH", data, offset)
        if length < 8 or offset + length > len(data):
            raise WireError("bad action length %d" % length)
        body = data[offset + 4: offset + length]
        if action_type == OFPAT_OUTPUT:
            port, _max_len = struct.unpack("!HH", body)
            actions.append(Output(port))
        elif action_type == OFPAT_SET_VLAN_VID:
            actions.append(SetVlan(struct.unpack("!Hxx", body)[0]))
        elif action_type == OFPAT_STRIP_VLAN:
            actions.append(StripVlan())
        elif action_type == OFPAT_SET_DL_SRC:
            actions.append(SetDlSrc(EthAddr(body[:6])))
        elif action_type == OFPAT_SET_DL_DST:
            actions.append(SetDlDst(EthAddr(body[:6])))
        elif action_type == OFPAT_SET_NW_SRC:
            actions.append(SetNwSrc(IPAddr(body[:4])))
        elif action_type == OFPAT_SET_NW_DST:
            actions.append(SetNwDst(IPAddr(body[:4])))
        elif action_type == OFPAT_SET_TP_SRC:
            actions.append(SetTpSrc(struct.unpack("!Hxx", body)[0]))
        elif action_type == OFPAT_SET_TP_DST:
            actions.append(SetTpDst(struct.unpack("!Hxx", body)[0]))
        elif action_type == OFPAT_GROUP:
            actions.append(Group(struct.unpack("!I", body)[0]))
        else:
            raise WireError("unknown action type %d" % action_type)
        offset += length
    return actions


# -- message framing -------------------------------------------------------


def _header(msg_type: int, xid: int, body_len: int) -> bytes:
    return struct.pack("!BBHI", OFP_VERSION, msg_type, 8 + body_len, xid)


def _port_desc_bytes(desc: msg.PortDescription) -> bytes:
    name = desc.name.encode()[:15]
    return struct.pack("!H6s16sIIIIII", desc.port_no,
                       EthAddr(desc.hw_addr).raw,
                       name + b"\x00" * (16 - len(name)),
                       0, desc.state, 0, 0, 0, 0)


def _unpack_port_desc(data: bytes) -> msg.PortDescription:
    port_no, hw_addr, name, _config, state = struct.unpack_from(
        "!H6s16sII", data)
    return msg.PortDescription(port_no,
                               name.rstrip(b"\x00").decode(),
                               str(EthAddr(hw_addr)), state=state)


def _pack_bucket(bucket: msg.GroupBucket) -> bytes:
    actions = pack_actions(bucket.actions)
    watch = OFPP_ANY_WIRE if bucket.watch_port == \
        msg.GroupBucket.WATCH_NONE else bucket.watch_port
    return struct.pack("!HHII4x", 16 + len(actions), 0, watch,
                       OFPP_ANY_WIRE) + actions


def _unpack_buckets(data: bytes) -> List[msg.GroupBucket]:
    buckets: List[msg.GroupBucket] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < 16:
            raise WireError("truncated group bucket")
        length, _weight, watch, _watch_group = struct.unpack_from(
            "!HHII", data, offset)
        if length < 16 or offset + length > len(data):
            raise WireError("bad bucket length %d" % length)
        actions = unpack_actions(data[offset + 16: offset + length])
        buckets.append(msg.GroupBucket(
            actions,
            watch_port=msg.GroupBucket.WATCH_NONE
            if watch == OFPP_ANY_WIRE else watch))
        offset += length
    return buckets


def pack_message(message: msg.Message) -> bytes:
    """Serialize one message object to OF 1.0 wire bytes."""
    profiler = telemetry.current().profiler
    if profiler.enabled:
        with profiler.profile("openflow.wire.encode"):
            return _pack_message(message)
    return _pack_message(message)


def _pack_message(message: msg.Message) -> bytes:
    xid = message.xid
    if isinstance(message, msg.Hello):
        return _header(OFPT_HELLO, xid, 0)
    if isinstance(message, msg.EchoRequest):
        return _header(OFPT_ECHO_REQUEST, xid,
                       len(message.data)) + message.data
    if isinstance(message, msg.EchoReply):
        return _header(OFPT_ECHO_REPLY, xid,
                       len(message.data)) + message.data
    if isinstance(message, msg.FeaturesRequest):
        return _header(OFPT_FEATURES_REQUEST, xid, 0)
    if isinstance(message, msg.FeaturesReply):
        body = struct.pack("!QIB3xII", message.dpid, message.n_buffers,
                           message.n_tables, 0, 0)
        body += b"".join(_port_desc_bytes(desc)
                         for desc in message.ports)
        return _header(OFPT_FEATURES_REPLY, xid, len(body)) + body
    if isinstance(message, msg.PacketIn):
        buffer_id = message.buffer_id if message.buffer_id is not None \
            else NO_BUFFER
        body = struct.pack("!IHHBx", buffer_id, message.total_len,
                           message.in_port, message.reason)
        return _header(OFPT_PACKET_IN, xid,
                       len(body) + len(message.data)) + body + message.data
    if isinstance(message, msg.PacketOut):
        buffer_id = message.buffer_id if message.buffer_id is not None \
            else NO_BUFFER
        in_port = message.in_port if message.in_port is not None \
            else OFPP_NONE_WIRE
        actions = pack_actions(message.actions)
        data = message.data or b""
        body = struct.pack("!IHH", buffer_id, in_port, len(actions))
        return _header(OFPT_PACKET_OUT, xid,
                       len(body) + len(actions) + len(data)) \
            + body + actions + data
    if isinstance(message, msg.FlowMod):
        buffer_id = message.buffer_id if message.buffer_id is not None \
            else NO_BUFFER
        actions = pack_actions(message.actions)
        body = pack_match(message.match)
        body += struct.pack("!QHHHHIHH", message.cookie, message.command,
                            int(message.idle_timeout),
                            int(message.hard_timeout),
                            message.priority, buffer_id,
                            OFPP_NONE_WIRE, message.flags)
        return _header(OFPT_FLOW_MOD, xid, len(body) + len(actions)) \
            + body + actions
    if isinstance(message, msg.GroupMod):
        body = struct.pack("!HBxI", message.command, message.group_type,
                           message.group_id)
        body += b"".join(_pack_bucket(bucket)
                         for bucket in message.buckets)
        return _header(OFPT_GROUP_MOD, xid, len(body)) + body
    if isinstance(message, msg.FlowRemoved):
        duration_sec = int(message.duration)
        duration_nsec = int((message.duration - duration_sec) * 1e9)
        body = pack_match(message.match)
        body += struct.pack("!QHBxIIH2xQQ", message.cookie,
                            message.priority, message.reason,
                            duration_sec, duration_nsec, 0,
                            message.packet_count, message.byte_count)
        return _header(OFPT_FLOW_REMOVED, xid, len(body)) + body
    if isinstance(message, msg.PortStatus):
        body = struct.pack("!B7x", message.reason) \
            + _port_desc_bytes(message.desc)
        return _header(OFPT_PORT_STATUS, xid, len(body)) + body
    if isinstance(message, msg.BarrierRequest):
        return _header(OFPT_BARRIER_REQUEST, xid, 0)
    if isinstance(message, msg.BarrierReply):
        return _header(OFPT_BARRIER_REPLY, xid, 0)
    if isinstance(message, msg.FlowStatsRequest):
        body = struct.pack("!HH", OFPST_FLOW, 0)
        body += pack_match(message.match)
        body += struct.pack("!BxH", 0xFF, OFPP_NONE_WIRE)
        return _header(OFPT_STATS_REQUEST, xid, len(body)) + body
    if isinstance(message, msg.PortStatsRequest):
        port_no = message.port_no if message.port_no is not None \
            else OFPP_NONE_WIRE
        body = struct.pack("!HHH6x", OFPST_PORT, 0, port_no)
        return _header(OFPT_STATS_REQUEST, xid, len(body)) + body
    if isinstance(message, msg.FlowStatsReply):
        body = struct.pack("!HH", OFPST_FLOW, 0)
        for stat in message.stats:
            actions = pack_actions(stat.actions)
            duration_sec = int(stat.duration)
            duration_nsec = int((stat.duration - duration_sec) * 1e9)
            entry = struct.pack("!HBx", 88 + len(actions), 0)
            entry += pack_match(stat.match)
            entry += struct.pack("!IIHHH6xQQQ", duration_sec,
                                 duration_nsec, stat.priority, 0, 0,
                                 stat.cookie, stat.packet_count,
                                 stat.byte_count)
            body += entry + actions
        return _header(OFPT_STATS_REPLY, xid, len(body)) + body
    if isinstance(message, msg.PortStatsReply):
        body = struct.pack("!HH", OFPST_PORT, 0)
        for stat in message.stats:
            body += struct.pack("!H6xQQQQQQQQQQQQ", stat.port_no,
                                stat.rx_packets, stat.tx_packets,
                                stat.rx_bytes, stat.tx_bytes,
                                stat.rx_dropped, stat.tx_dropped,
                                0, 0, 0, 0, 0, 0)
        return _header(OFPT_STATS_REPLY, xid, len(body)) + body
    if isinstance(message, msg.ErrorMessage):
        body = struct.pack("!HH", message.error_type, message.code) \
            + message.data
        return _header(OFPT_ERROR, xid, len(body)) + body
    raise WireError("cannot serialize %r" % message)


def unpack_message(data: bytes) -> msg.Message:
    """Parse OF 1.0 wire bytes back into a message object."""
    profiler = telemetry.current().profiler
    if profiler.enabled:
        with profiler.profile("openflow.wire.decode"):
            return _unpack_message(data)
    return _unpack_message(data)


def _unpack_message(data: bytes) -> msg.Message:
    if len(data) < 8:
        raise WireError("message shorter than the OF header")
    version, msg_type, length, xid = struct.unpack_from("!BBHI", data)
    if version != OFP_VERSION:
        raise WireError("unsupported OF version %#x" % version)
    if length != len(data):
        raise WireError("length field %d != buffer %d"
                        % (length, len(data)))
    body = data[8:]
    if msg_type == OFPT_HELLO:
        return msg.Hello(xid=xid)
    if msg_type == OFPT_ECHO_REQUEST:
        return msg.EchoRequest(body, xid=xid)
    if msg_type == OFPT_ECHO_REPLY:
        return msg.EchoReply(body, xid=xid)
    if msg_type == OFPT_FEATURES_REQUEST:
        return msg.FeaturesRequest(xid=xid)
    if msg_type == OFPT_FEATURES_REPLY:
        dpid, n_buffers, n_tables = struct.unpack_from("!QIB", body)
        ports = []
        offset = 24
        while offset + 48 <= len(body):
            ports.append(_unpack_port_desc(body[offset:offset + 48]))
            offset += 48
        return msg.FeaturesReply(dpid, ports, n_buffers, n_tables,
                                 xid=xid)
    if msg_type == OFPT_PACKET_IN:
        buffer_id, total_len, in_port, reason = struct.unpack_from(
            "!IHHB", body)
        payload = body[10:]
        return msg.PacketIn(
            None if buffer_id == NO_BUFFER else buffer_id,
            in_port, payload, reason, total_len=total_len, xid=xid)
    if msg_type == OFPT_PACKET_OUT:
        buffer_id, in_port, actions_len = struct.unpack_from("!IHH", body)
        actions = unpack_actions(body[8:8 + actions_len])
        payload = body[8 + actions_len:]
        return msg.PacketOut(
            actions,
            data=payload if payload else None,
            buffer_id=None if buffer_id == NO_BUFFER else buffer_id,
            in_port=None if in_port == OFPP_NONE_WIRE else in_port,
            xid=xid)
    if msg_type == OFPT_FLOW_MOD:
        match = unpack_match(body[:40])
        (cookie, command, idle_timeout, hard_timeout, priority,
         buffer_id, _out_port, flags) = struct.unpack_from(
            "!QHHHHIHH", body, 40)
        actions = unpack_actions(body[64:])
        return msg.FlowMod(match, actions, command, priority,
                           float(idle_timeout), float(hard_timeout),
                           cookie, flags,
                           None if buffer_id == NO_BUFFER else buffer_id,
                           xid=xid)
    if msg_type == OFPT_GROUP_MOD:
        if len(body) < 8:
            raise WireError("group mod body requires 8 bytes, got %d"
                            % len(body))
        command, group_type, group_id = struct.unpack_from("!HBxI", body)
        return msg.GroupMod(command, group_id, group_type,
                            _unpack_buckets(body[8:]), xid=xid)
    if msg_type == OFPT_FLOW_REMOVED:
        match = unpack_match(body[:40])
        (cookie, priority, reason, duration_sec, duration_nsec,
         _idle, packet_count, byte_count) = struct.unpack_from(
            "!QHBxIIH2xQQ", body, 40)
        return msg.FlowRemoved(match, cookie, priority, reason,
                               duration_sec + duration_nsec * 1e-9,
                               packet_count, byte_count, xid=xid)
    if msg_type == OFPT_PORT_STATUS:
        reason = struct.unpack_from("!B", body)[0]
        desc = _unpack_port_desc(body[8:56])
        return msg.PortStatus(reason, desc, xid=xid)
    if msg_type == OFPT_BARRIER_REQUEST:
        return msg.BarrierRequest(xid=xid)
    if msg_type == OFPT_BARRIER_REPLY:
        return msg.BarrierReply(xid=xid)
    if msg_type == OFPT_STATS_REQUEST:
        stats_type = struct.unpack_from("!H", body)[0]
        if stats_type == OFPST_FLOW:
            return msg.FlowStatsRequest(unpack_match(body[4:44]),
                                        xid=xid)
        if stats_type == OFPST_PORT:
            port_no = struct.unpack_from("!H", body, 4)[0]
            return msg.PortStatsRequest(
                None if port_no == OFPP_NONE_WIRE else port_no, xid=xid)
        raise WireError("unknown stats request type %d" % stats_type)
    if msg_type == OFPT_STATS_REPLY:
        stats_type = struct.unpack_from("!H", body)[0]
        if stats_type == OFPST_FLOW:
            return _unpack_flow_stats_reply(body[4:], xid)
        if stats_type == OFPST_PORT:
            return _unpack_port_stats_reply(body[4:], xid)
        raise WireError("unknown stats reply type %d" % stats_type)
    if msg_type == OFPT_ERROR:
        error_type, code = struct.unpack_from("!HH", body)
        return msg.ErrorMessage(error_type, code, body[4:], xid=xid)
    raise WireError("unknown message type %d" % msg_type)


def _unpack_flow_stats_reply(body: bytes, xid: int) -> msg.FlowStatsReply:
    stats = []
    offset = 0
    while offset + 88 <= len(body):
        entry_len = struct.unpack_from("!H", body, offset)[0]
        if entry_len < 88 or offset + entry_len > len(body):
            raise WireError("bad flow stats entry length %d" % entry_len)
        match = unpack_match(body[offset + 4: offset + 44])
        (duration_sec, duration_nsec, priority, _idle, _hard, cookie,
         packet_count, byte_count) = struct.unpack_from(
            "!IIHHH6xQQQ", body, offset + 44)
        actions = unpack_actions(body[offset + 88: offset + entry_len])
        stats.append(msg.FlowStats(
            match, priority, cookie,
            duration_sec + duration_nsec * 1e-9,
            packet_count, byte_count, actions))
        offset += entry_len
    return msg.FlowStatsReply(stats, xid=xid)


def _unpack_port_stats_reply(body: bytes, xid: int) -> msg.PortStatsReply:
    stats = []
    offset = 0
    while offset + 104 <= len(body):
        (port_no, rx_packets, tx_packets, rx_bytes, tx_bytes,
         rx_dropped, tx_dropped) = struct.unpack_from(
            "!H6xQQQQQQ", body, offset)
        stats.append(msg.PortStats(port_no, rx_packets, tx_packets,
                                   rx_bytes, tx_bytes, rx_dropped,
                                   tx_dropped))
        offset += 104
    return msg.PortStatsReply(stats, xid=xid)
