"""Subscriber-driven workload synthesis.

A workload models ``subscribers_per_sap`` subscribers behind every
SAP of every requested chain.  Flow arrivals are an inhomogeneous
Poisson process (per chain) whose rate follows a diurnal profile —
``rate(t)`` swings between a trough and a peak over ``period``
simulated seconds — thinned from a seeded homogeneous draw, so the
same seed always produces the *bit-identical* schedule (the
determinism contract ``tests/test_scenario.py`` pins down).

Two artifacts come out of :func:`build_workload`:

* **chain requests** — service graphs drawn from
  :data:`CHAIN_TEMPLATES` between seeded SAP pairs (each pair used at
  most once, so steering flowspecs never overlap), carrying the
  scenario's SLA requirements,
* **flows** — timestamped UDP flow descriptions riding those chains
  (source SAP → sink SAP, the direction the steering match covers).

:class:`WorkloadDriver` executes a schedule against a live network:
it binds one receiver port per sink, stamps every datagram with the
simulated send time, and accumulates per-flow delivery counts plus
one-way delay samples for the result bundle's p50/p99 columns.
"""

import math
import random
import struct
from typing import Dict, List, Optional, Tuple

from repro.netem.topo import Topo

#: chain-template catalog: template name -> ordered (vnf_type, params)
CHAIN_TEMPLATES: Dict[str, List[Tuple[str, dict]]] = {
    "bump": [("forwarder", {})],
    "web": [("firewall", {"rules": "allow all"})],
    "secure": [("firewall", {"rules": "allow all"}),
               ("dpi", {"signatures": "X-SCENARIO-EVIL"})],
    "shaped": [("rate_limiter", {"rate": 20000})],
}

#: UDP port workload datagrams ride (distinct from the SLA probe range)
WORKLOAD_PORT = 47000

_FLOW_HEADER = struct.Struct("!IId")  # magic, flow id, send time
_FLOW_MAGIC = 0x5C3A0001


class WorkloadError(Exception):
    pass


def diurnal_factor(t: float, period: float, trough: float,
                   phase: float = 0.0) -> float:
    """Rate multiplier in ``[trough, 1.0]``: a raised cosine peaking
    mid-period (the classic tidal subscriber-activity curve)."""
    if period <= 0:
        return 1.0
    swing = (1.0 - math.cos(2.0 * math.pi * (t / period) + phase)) / 2.0
    return trough + (1.0 - trough) * swing


class WorkloadSchedule:
    """The deterministic output of :func:`build_workload`: chain
    requests plus the flow timetable, both plain data."""

    def __init__(self, seed: int, chains: List[dict], flows: List[dict],
                 meta: dict):
        self.seed = seed
        self.chains = chains
        self.flows = flows
        self.meta = meta

    @property
    def packets_scheduled(self) -> int:
        return sum(flow["packets"] for flow in self.flows)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "chains": self.chains,
                "flows": self.flows, "meta": self.meta}

    def __repr__(self) -> str:
        return ("WorkloadSchedule(seed=%d, %d chains, %d flows, %d pkts)"
                % (self.seed, len(self.chains), len(self.flows),
                   self.packets_scheduled))


class Workload:
    """Parsed ``workload:`` section of a scenario (all knobs have
    defaults sized for smoke campaigns)."""

    def __init__(self, subscribers_per_sap: int = 100,
                 flows_per_subscriber: float = 0.002,
                 diurnal_period: Optional[float] = None,
                 diurnal_trough: float = 0.3, diurnal_phase: float = 0.0,
                 flow_rate_pps: float = 200.0,
                 flow_duration: float = 0.25, payload_size: int = 200,
                 max_flows: int = 64):
        if subscribers_per_sap < 1:
            raise WorkloadError("subscribers_per_sap must be >= 1")
        if flows_per_subscriber <= 0:
            raise WorkloadError("flows_per_subscriber must be > 0")
        if flow_rate_pps <= 0 or flow_duration <= 0:
            raise WorkloadError("flow rate and duration must be > 0")
        self.subscribers_per_sap = subscribers_per_sap
        self.flows_per_subscriber = flows_per_subscriber
        self.diurnal_period = diurnal_period
        self.diurnal_trough = diurnal_trough
        self.diurnal_phase = diurnal_phase
        self.flow_rate_pps = flow_rate_pps
        self.flow_duration = flow_duration
        self.payload_size = payload_size
        self.max_flows = max_flows

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "Workload":
        data = dict(data or {})
        diurnal = data.pop("diurnal", None)
        kwargs = {}
        for key in ("subscribers_per_sap", "flows_per_subscriber",
                    "flow_rate_pps", "flow_duration", "payload_size",
                    "max_flows"):
            if key in data:
                kwargs[key] = data.pop(key)
        if data:
            raise WorkloadError("unknown workload key(s): %s"
                                % ", ".join(sorted(data)))
        if diurnal:
            kwargs["diurnal_period"] = diurnal.get("period")
            kwargs["diurnal_trough"] = diurnal.get("trough", 0.3)
            kwargs["diurnal_phase"] = diurnal.get("phase", 0.0)
        return cls(**kwargs)

    def rate_at(self, t: float, duration: float) -> float:
        """Aggregate new-flow arrival rate (flows/s) per chain at
        simulated time ``t``."""
        base = self.subscribers_per_sap * self.flows_per_subscriber
        period = self.diurnal_period
        if period is None:
            period = duration
        return base * diurnal_factor(t, period, self.diurnal_trough,
                                     self.diurnal_phase)


def _pick_sap_pairs(hosts: List[str], count: int,
                    rng: random.Random) -> List[Tuple[str, str]]:
    """``count`` distinct (src, dst) host pairs, no pair reused in
    either direction — overlapping pairs would collide on the
    orchestrator's per-pair steering flowspec."""
    if len(hosts) < 2:
        raise WorkloadError("topology has %d host SAP(s); need >= 2"
                            % len(hosts))
    pairs = [(a, b) for i, a in enumerate(hosts)
             for b in hosts[i + 1:]]
    if count > len(pairs):
        raise WorkloadError(
            "cannot place %d chains over %d hosts (%d distinct pairs)"
            % (count, len(hosts), len(pairs)))
    chosen = rng.sample(pairs, count)
    oriented = []
    for a, b in chosen:
        oriented.append((a, b) if rng.random() < 0.5 else (b, a))
    return oriented


def build_chain_requests(topo: Topo, chains_spec: Optional[dict],
                         sla_spec: Optional[dict],
                         rng: random.Random) -> List[dict]:
    """Service-graph request dicts (the ``sgfile`` format) drawn from
    the template catalog over seeded SAP pairs."""
    chains_spec = dict(chains_spec or {})
    count = int(chains_spec.get("count", 1))
    templates = list(chains_spec.get("templates") or ["bump"])
    explicit_pairs = chains_spec.get("sap_pairs")
    for template in templates:
        if template not in CHAIN_TEMPLATES:
            raise WorkloadError(
                "unknown chain template %r (have: %s)"
                % (template, ", ".join(sorted(CHAIN_TEMPLATES))))
    if explicit_pairs is not None:
        pairs = [tuple(pair) for pair in explicit_pairs]
        count = len(pairs)
    else:
        pairs = _pick_sap_pairs(topo.hosts(), count, rng)
    requirements = []
    if sla_spec:
        entry = {}
        if sla_spec.get("max_delay") is not None:
            entry["max_delay"] = float(sla_spec["max_delay"])
        if sla_spec.get("min_bandwidth") is not None:
            entry["min_bandwidth"] = float(sla_spec["min_bandwidth"])
        if entry:
            requirements.append(entry)
    requests = []
    for index, (src, dst) in enumerate(pairs):
        template = templates[index % len(templates)]
        vnf_names = []
        vnfs = []
        for position, (vnf_type, params) in enumerate(
                CHAIN_TEMPLATES[template]):
            vnf_name = "c%d-%s%d" % (index + 1, vnf_type, position)
            vnf_names.append(vnf_name)
            vnf = {"name": vnf_name, "type": vnf_type}
            if params:
                vnf["params"] = dict(params)
            vnfs.append(vnf)
        sg = {
            "name": "chain%d-%s" % (index + 1, template),
            "saps": [src, dst],
            "vnfs": vnfs,
            "chain": [src] + vnf_names + [dst],
        }
        if requirements:
            sg["requirements"] = [dict(entry, **{"from": src, "to": dst})
                                  for entry in requirements]
        requests.append({"name": sg["name"], "template": template,
                         "src": src, "dst": dst, "sg": sg})
    return requests


def build_flows(chains: List[dict], workload: Workload, duration: float,
                rng: random.Random) -> List[dict]:
    """The flow timetable: thinned Poisson arrivals per chain, rate
    modulated by the diurnal profile, durations exponential around
    ``flow_duration`` and clipped to the run window."""
    flows: List[dict] = []
    flow_id = 0
    peak = max(workload.rate_at(t, duration)
               for t in (0.0, duration * 0.25, duration * 0.5,
                         duration * 0.75))
    peak = max(peak,
               workload.subscribers_per_sap * workload.flows_per_subscriber)
    for chain in chains:
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= duration:
                break
            if rng.random() > workload.rate_at(t, duration) / peak:
                continue  # thinned: off-peak arrival rejected
            flow_duration = min(
                max(rng.expovariate(1.0 / workload.flow_duration), 0.01),
                max(duration - t, 0.01))
            packets = max(1, int(round(workload.flow_rate_pps
                                       * flow_duration)))
            flow_id += 1
            flows.append({
                "id": flow_id,
                "chain": chain["name"],
                "src": chain["src"],
                "dst": chain["dst"],
                "start": round(t, 9),
                "rate_pps": workload.flow_rate_pps,
                "packets": packets,
                "payload_size": workload.payload_size,
            })
    flows.sort(key=lambda flow: (flow["start"], flow["id"]))
    if len(flows) > workload.max_flows:
        flows = flows[:workload.max_flows]
    return flows


def build_workload(topo: Topo, seed: int, duration: float,
                   workload_spec: Optional[dict] = None,
                   chains_spec: Optional[dict] = None,
                   sla_spec: Optional[dict] = None) -> WorkloadSchedule:
    """The deterministic schedule for one (scenario, seed) run."""
    workload = Workload.from_dict(workload_spec)
    rng = random.Random(seed)
    chains = build_chain_requests(topo, chains_spec, sla_spec, rng)
    flows = build_flows(chains, workload, duration, rng)
    meta = {
        "duration": duration,
        "subscribers_per_sap": workload.subscribers_per_sap,
        "modeled_subscribers": workload.subscribers_per_sap * len(chains),
        "flows_scheduled": len(flows),
        "packets_scheduled": sum(flow["packets"] for flow in flows),
    }
    return WorkloadSchedule(seed, chains, flows, meta)


class WorkloadDriver:
    """Executes a :class:`WorkloadSchedule` against a live network.

    ``arm()`` binds the workload port on every sink SAP and schedules
    the flow senders; while the simulation runs, every received
    datagram contributes a one-way delay sample (simulated send time
    is carried in the payload).  ``results()`` summarises delivery and
    latency for the result bundle.
    """

    def __init__(self, net, schedule: WorkloadSchedule):
        self.net = net
        self.sim = net.sim
        self.schedule = schedule
        self.sent: Dict[int, int] = {}
        self.received: Dict[int, int] = {}
        self.delays: List[float] = []
        self.bytes_received = 0
        self._bound: List = []

    def arm(self) -> "WorkloadDriver":
        sinks = {flow["dst"] for flow in self.schedule.flows}
        for sink_name in sorted(sinks):
            sink = self.net.get(sink_name)
            sink.bind_udp(WORKLOAD_PORT, self._receive)
            self._bound.append(sink)
        for flow in self.schedule.flows:
            self.sent[flow["id"]] = 0
            self.received[flow["id"]] = 0
            self.sim.schedule(max(flow["start"] - self.sim.now, 0.0),
                              self._start_flow, flow)
        return self

    def disarm(self) -> None:
        for sink in self._bound:
            sink.unbind_udp(WORKLOAD_PORT)
        self._bound = []

    def _start_flow(self, flow: dict) -> None:
        source = self.net.get(flow["src"])
        sink = self.net.get(flow["dst"])
        interval = 1.0 / flow["rate_pps"]
        pad = max(0, flow["payload_size"] - _FLOW_HEADER.size)

        def send_next(remaining: int) -> None:
            if remaining <= 0:
                return
            head = _FLOW_HEADER.pack(_FLOW_MAGIC, flow["id"],
                                     self.sim.now)
            # pad by repeating the (per-packet unique) header instead
            # of zero-filling: flow telemetry hashes the *tail* of the
            # frame into its trace id
            payload = head + (head * (pad // len(head) + 1))[:pad]
            source.send_udp(sink.ip, WORKLOAD_PORT, payload)
            self.sent[flow["id"]] += 1
            if remaining > 1:
                self.sim.schedule(interval, send_next, remaining - 1)

        send_next(flow["packets"])

    def _receive(self, _srcip, _srcport, payload: bytes) -> None:
        if len(payload) < _FLOW_HEADER.size:
            return
        magic, flow_id, sent_at = _FLOW_HEADER.unpack_from(payload)
        if magic != _FLOW_MAGIC or flow_id not in self.received:
            return
        self.received[flow_id] += 1
        self.bytes_received += len(payload)
        self.delays.append(self.sim.now - sent_at)

    @staticmethod
    def _percentile(ordered: List[float], p: float) -> Optional[float]:
        if not ordered:
            return None
        index = min(len(ordered) - 1,
                    max(0, int(math.ceil(p / 100.0 * len(ordered))) - 1))
        return ordered[index]

    def results(self) -> dict:
        sent = sum(self.sent.values())
        received = sum(self.received.values())
        ordered = sorted(self.delays)
        completed = sum(1 for flow_id, count in self.sent.items()
                        if count and self.received[flow_id] == count)
        return {
            "flows_scheduled": len(self.schedule.flows),
            "flows_started": sum(1 for count in self.sent.values()
                                 if count),
            "flows_completed": completed,
            "packets_sent": sent,
            "packets_received": received,
            "bytes_received": self.bytes_received,
            "loss_ratio": ((sent - received) / sent) if sent else 0.0,
            "delay_p50": self._percentile(ordered, 50.0),
            "delay_p99": self._percentile(ordered, 99.0),
            "delay_max": ordered[-1] if ordered else None,
            "delay_samples": len(ordered),
        }
