"""The topology zoo: parameterised substrate generators.

Every generator subclasses :class:`repro.netem.topo.Topo`, so a zoo
topology drops into :meth:`repro.netem.net.Network.build` (and hence
``ESCAPE.from_topology``) exactly like the hand-written ones.  Each
tier of a topology takes its own link options (bandwidth / delay /
loss), and every generator sprinkles VNF containers over the substrate
so service chains have somewhere to land — the containers get
``container_ports`` parallel links to their switch, the repo's idiom
for multi-homed containers.

Naming follows the existing examples: hosts ``h*``, switches ``s``-
prefixed with a tier tag, containers ``nc*``.
"""

import math
import random
from typing import Dict, Optional

from repro.netem.topo import Topo

#: Default per-tier link options, overridable per generator call.
DEFAULT_TIER_OPTS = {
    "host": {"bandwidth": 1e9, "delay": 0.0005},
    "edge": {"bandwidth": 1e9, "delay": 0.001},
    "aggregation": {"bandwidth": 10e9, "delay": 0.001},
    "core": {"bandwidth": 10e9, "delay": 0.002},
    "container": {"bandwidth": 1e9, "delay": 0.0005},
    "wan": {"bandwidth": 10e9, "delay": 0.005},
}


def _tier_opts(overrides: Optional[Dict[str, dict]], tier: str) -> dict:
    opts = dict(DEFAULT_TIER_OPTS.get(tier, {}))
    if overrides and tier in overrides:
        opts.update(overrides[tier])
    return opts


class FatTreeTopo(Topo):
    """A ``k``-ary fat-tree (Al-Fares et al.): ``k`` pods of ``k/2``
    edge + ``k/2`` aggregation switches, ``(k/2)^2`` cores, ``k/2``
    hosts per edge switch.

    ``containers_per_pod`` VNF containers hang off each pod's first
    edge switches (one per edge switch, round-robin), each with
    ``container_ports`` parallel links so multi-port VNFs fit.
    """

    def __init__(self, k: int = 4, containers_per_pod: int = 1,
                 container_ports: int = 4, container_cpu: float = 16.0,
                 container_mem: float = 16384.0,
                 hosts_per_edge: Optional[int] = None,
                 tier_opts: Optional[Dict[str, dict]] = None):
        super().__init__()
        if k < 2 or k % 2:
            raise ValueError("fat-tree k must be an even integer >= 2, "
                             "got %r" % k)
        half = k // 2
        if hosts_per_edge is None:
            hosts_per_edge = half
        if containers_per_pod > half:
            raise ValueError("containers_per_pod %d exceeds the %d edge "
                             "switches per pod" % (containers_per_pod, half))
        self.k = k
        host_opts = _tier_opts(tier_opts, "host")
        edge_opts = _tier_opts(tier_opts, "edge")
        core_opts = _tier_opts(tier_opts, "core")
        container_opts = _tier_opts(tier_opts, "container")

        cores = [self.add_switch("score%d" % (i + 1))
                 for i in range(half * half)]
        host_index = 0
        container_index = 0
        for pod in range(k):
            aggs = [self.add_switch("sagg%dp%d" % (a + 1, pod + 1))
                    for a in range(half)]
            edges = [self.add_switch("sedge%dp%d" % (e + 1, pod + 1))
                     for e in range(half)]
            for edge in edges:
                for agg in aggs:
                    self.add_link(edge, agg, **edge_opts)
                for _ in range(hosts_per_edge):
                    host_index += 1
                    host = self.add_host("h%d" % host_index)
                    self.add_link(host, edge, **host_opts)
            for a, agg in enumerate(aggs):
                for c in range(half):
                    self.add_link(agg, cores[a * half + c], **core_opts)
            for c in range(containers_per_pod):
                container_index += 1
                container = self.add_vnf_container(
                    "nc%d" % container_index, cpu=container_cpu,
                    mem=container_mem)
                for _ in range(container_ports):
                    self.add_link(container, edges[c % half],
                                  **container_opts)


class WaxmanTopo(Topo):
    """A seeded Waxman random graph of ``n`` switches on the unit
    square: nodes ``u, v`` connect with probability
    ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is the maximum
    possible distance.  A spanning chain over the placement order keeps
    the graph connected regardless of the draw.  Each switch carries
    ``hosts_per_switch`` hosts; every ``container_every``-th switch
    gets a VNF container.  Link delays scale with euclidean distance
    (``delay_per_unit`` seconds across the whole square).
    """

    def __init__(self, n: int = 8, alpha: float = 0.4, beta: float = 0.4,
                 seed: int = 0, hosts_per_switch: int = 1,
                 container_every: int = 2, container_ports: int = 4,
                 container_cpu: float = 8.0, container_mem: float = 8192.0,
                 delay_per_unit: float = 0.01,
                 tier_opts: Optional[Dict[str, dict]] = None):
        super().__init__()
        if n < 2:
            raise ValueError("Waxman graph needs n >= 2, got %r" % n)
        if not (0.0 < alpha <= 1.0) or beta <= 0.0:
            raise ValueError("Waxman parameters need 0 < alpha <= 1 and "
                             "beta > 0 (got alpha=%r beta=%r)"
                             % (alpha, beta))
        self.seed = seed
        rng = random.Random(seed)
        host_opts = _tier_opts(tier_opts, "host")
        edge_opts = _tier_opts(tier_opts, "edge")
        container_opts = _tier_opts(tier_opts, "container")

        positions = [(rng.random(), rng.random()) for _ in range(n)]
        switches = [self.add_switch("sw%d" % (i + 1)) for i in range(n)]
        scale = math.sqrt(2.0)  # max distance on the unit square

        def link(i: int, j: int) -> None:
            distance = math.dist(positions[i], positions[j])
            opts = dict(edge_opts)
            opts["delay"] = max(opts.get("delay") or 0.0,
                                distance * delay_per_unit)
            self.add_link(switches[i], switches[j], **opts)

        wired = set()
        for i in range(n):
            for j in range(i + 1, n):
                distance = math.dist(positions[i], positions[j])
                if rng.random() < alpha * math.exp(
                        -distance / (beta * scale)):
                    link(i, j)
                    wired.add((i, j))
        for i in range(n - 1):  # connectivity backbone
            if (i, i + 1) not in wired:
                link(i, i + 1)

        host_index = 0
        container_index = 0
        for i in range(n):
            for _ in range(hosts_per_switch):
                host_index += 1
                self.add_link(self.add_host("h%d" % host_index),
                              switches[i], **host_opts)
            if container_every and i % container_every == 0:
                container_index += 1
                container = self.add_vnf_container(
                    "nc%d" % container_index, cpu=container_cpu,
                    mem=container_mem)
                for _ in range(container_ports):
                    self.add_link(container, switches[i], **container_opts)


#: Abilene research backbone: 11 PoPs, 14 trunks; delays approximate
#: great-circle latency between the PoP cities (one-way, seconds).
ABILENE_POPS = ("sea", "sun", "lax", "den", "kan", "hou",
                "ipl", "chi", "atl", "was", "nyc")
ABILENE_TRUNKS = (
    ("sea", "sun", 0.009), ("sea", "den", 0.013), ("sun", "lax", 0.004),
    ("sun", "den", 0.012), ("lax", "hou", 0.017), ("den", "kan", 0.007),
    ("kan", "hou", 0.009), ("kan", "ipl", 0.006), ("hou", "atl", 0.010),
    ("ipl", "chi", 0.003), ("ipl", "atl", 0.006), ("chi", "nyc", 0.010),
    ("atl", "was", 0.008), ("was", "nyc", 0.003),
)


class WanTopo(Topo):
    """An Abilene-style WAN: one switch per PoP wired with the real
    Abilene trunk graph, one SAP host and (optionally) one VNF
    container per PoP.  ``pops`` trims the footprint to the first N
    PoPs (trunks between dropped PoPs vanish; the remaining graph
    stays connected for any prefix of :data:`ABILENE_POPS` because a
    connecting trunk to an earlier PoP is synthesized when needed).
    """

    def __init__(self, pops: Optional[int] = None,
                 containers: bool = True, container_ports: int = 4,
                 container_cpu: float = 8.0, container_mem: float = 8192.0,
                 tier_opts: Optional[Dict[str, dict]] = None):
        super().__init__()
        selected = list(ABILENE_POPS if pops is None
                        else ABILENE_POPS[:pops])
        if len(selected) < 2:
            raise ValueError("WanTopo needs at least 2 PoPs, got %r" % pops)
        host_opts = _tier_opts(tier_opts, "host")
        wan_opts = _tier_opts(tier_opts, "wan")
        container_opts = _tier_opts(tier_opts, "container")

        for index, pop in enumerate(selected):
            switch = self.add_switch("s-%s" % pop)
            self.add_link(self.add_host("h-%s" % pop), switch, **host_opts)
            if containers:
                container = self.add_vnf_container(
                    "nc-%s" % pop, cpu=container_cpu, mem=container_mem)
                for _ in range(container_ports):
                    self.add_link(container, switch, **container_opts)
        wired = set()
        for pop1, pop2, delay in ABILENE_TRUNKS:
            if pop1 not in selected or pop2 not in selected:
                continue
            opts = dict(wan_opts)
            opts["delay"] = delay
            self.add_link("s-%s" % pop1, "s-%s" % pop2, **opts)
            wired.add(pop1)
            wired.add(pop2)
        for index, pop in enumerate(selected[1:], start=1):
            if pop not in wired:  # trimmed footprint stranded this PoP
                self.add_link("s-%s" % selected[index - 1], "s-%s" % pop,
                              **wan_opts)


TOPOLOGY_KINDS = {
    "fat_tree": FatTreeTopo,
    "waxman": WaxmanTopo,
    "wan": WanTopo,
}


def build_topology(spec: dict) -> Topo:
    """Instantiate a zoo topology from its declarative description:
    ``{"kind": "fat_tree", "k": 4, ...}`` — every other key is passed
    to the generator as a keyword argument."""
    spec = dict(spec)
    kind = spec.pop("kind", None)
    cls = TOPOLOGY_KINDS.get(kind)
    if cls is None:
        raise ValueError("unknown topology kind %r (have: %s)"
                         % (kind, ", ".join(sorted(TOPOLOGY_KINDS))))
    try:
        return cls(**spec)
    except TypeError as exc:
        raise ValueError("topology %r: %s" % (kind, exc))
