"""``repro.scenario`` — declarative scenario engine + topology zoo.

Turns the chaos/SLA/profiler stack from hand-rolled demo scripts into
a reproducible benchmark suite:

* :mod:`repro.scenario.zoo` — parameterised topology generators
  (fat-tree, Waxman random graphs, an Abilene-style WAN) layered on
  :class:`repro.netem.topo.Topo`,
* :mod:`repro.scenario.workload` — seeded subscriber-driven workload
  builders (flow-arrival processes with diurnal rate profiles, chain
  requests drawn from a template catalog),
* :mod:`repro.scenario.spec` — the declarative ``Scenario``
  description (YAML/JSON/dict),
* :mod:`repro.scenario.runner` — the campaign runner executing a
  scenario through :class:`repro.core.ESCAPE`, one JSON result bundle
  per (scenario, seed),
* :mod:`repro.scenario.analyzer` — bundle aggregation into cross-seed
  comparison tables (pps, p50/p99 delay, MTTR, SLA violation ratio).

CLI: ``escape scenario run|list|report`` (see :mod:`repro.cli`).
"""

from repro.scenario.analyzer import (CampaignReport, load_bundles,
                                     render_csv, render_report,
                                     report_dict)
from repro.scenario.runner import CampaignRunner, ScenarioError, run_scenario
from repro.scenario.spec import Scenario, load_scenario
from repro.scenario.workload import (CHAIN_TEMPLATES, Workload,
                                     WorkloadSchedule, build_workload)
from repro.scenario.zoo import (TOPOLOGY_KINDS, FatTreeTopo, WanTopo,
                                WaxmanTopo, build_topology)

__all__ = [
    "CampaignReport", "CampaignRunner", "CHAIN_TEMPLATES", "FatTreeTopo",
    "Scenario", "ScenarioError", "TOPOLOGY_KINDS", "WanTopo", "WaxmanTopo",
    "Workload", "WorkloadSchedule", "build_topology", "build_workload",
    "load_bundles", "load_scenario", "render_csv", "render_report",
    "report_dict", "run_scenario",
]
