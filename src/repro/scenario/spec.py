"""The declarative ``Scenario`` description.

A scenario is everything one reproducible experiment needs::

    name: fattree-baseline
    description: steady-state fat-tree campaign
    duration: 8.0
    seeds: [1, 2]
    topology:
      kind: fat_tree
      k: 4
    chains:
      count: 3
      templates: [web, bump]
    workload:
      subscribers_per_sap: 100
      flows_per_subscriber: 0.004
      diurnal: {period: 8.0, trough: 0.4}
    sla:
      max_delay: 0.05
    chaos:                      # optional fault schedule
      faults:
        - {kind: link_down, at: 2.0, duration: 1.5}

Files may be YAML or JSON.  PyYAML is used when importable; otherwise
a built-in parser covering the indentation-based subset above (nested
maps, ``-`` lists, inline ``{}``/``[]``, scalars, comments) keeps the
engine dependency-free — the reference scenarios under
``examples/scenarios/`` stay inside that subset.
"""

import json
import os
from typing import Any, Dict, List, Optional, Union


class SpecError(Exception):
    pass


# -- minimal YAML subset ------------------------------------------------------

def _strip_comment(line: str) -> str:
    out = []
    quote = None
    for ch in line:
        if quote:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out).rstrip()


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if not text or text in ("null", "~", "None"):
        return None
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if (text[0] == text[-1] and text[0] in "\"'" and len(text) >= 2):
        return text[1:-1]
    if text[0] in "[{":
        try:
            return json.loads(text)
        except ValueError:
            return _parse_flow(text)
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _split_flow(body: str) -> List[str]:
    """Split a flow collection body on top-level commas."""
    parts, depth, quote, current = [], 0, None, []
    for ch in body:
        if quote:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_flow(text: str) -> Any:
    """YAML flow collections that are not valid JSON (bare keys)."""
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        return [_parse_scalar(part) for part in _split_flow(text[1:-1])]
    if text.startswith("{") and text.endswith("}"):
        mapping = {}
        for part in _split_flow(text[1:-1]):
            if ":" not in part:
                raise SpecError("bad inline map entry %r" % part)
            key, _, value = part.partition(":")
            mapping[_parse_scalar(key)] = _parse_scalar(value)
        return mapping
    raise SpecError("cannot parse %r" % text)


def _parse_block(lines: List[tuple], start: int, indent: int):
    """Parse lines[start:] at exactly ``indent``; returns (value, next)."""
    if start >= len(lines):
        return None, start
    first_indent, first_text = lines[start]
    if first_indent < indent:
        return None, start
    is_list = first_text.startswith("- ") or first_text == "-"
    if is_list:
        items = []
        index = start
        while index < len(lines):
            line_indent, text = lines[index]
            if line_indent != first_indent or not (
                    text.startswith("- ") or text == "-"):
                if line_indent >= first_indent:
                    raise SpecError("bad list structure near %r" % text)
                break
            body = text[1:].strip()
            if not body:
                value, index = _parse_block(lines, index + 1,
                                            first_indent + 1)
                items.append(value)
                continue
            if ":" in body and not body.startswith(("{", "[")):
                # '- key: value' opens an inline map item whose extra
                # keys continue on deeper-indented lines
                synthetic = [(first_indent + 2, body)]
                probe = index + 1
                while probe < len(lines) and lines[probe][0] \
                        > first_indent:
                    synthetic.append(lines[probe])
                    probe += 1
                value, _ = _parse_block(synthetic, 0, first_indent + 2)
                items.append(value)
                index = probe
                continue
            items.append(_parse_scalar(body))
            index += 1
        return items, index
    mapping: Dict[str, Any] = {}
    index = start
    while index < len(lines):
        line_indent, text = lines[index]
        if line_indent < first_indent:
            break
        if line_indent > first_indent:
            raise SpecError("unexpected indent near %r" % text)
        if ":" not in text:
            raise SpecError("expected 'key: value', got %r" % text)
        key, _, rest = text.partition(":")
        key = _parse_scalar(key)
        rest = rest.strip()
        if rest:
            mapping[key] = _parse_scalar(rest)
            index += 1
        else:
            value, index = _parse_block(lines, index + 1,
                                        first_indent + 1)
            mapping[key] = value if value is not None else {}
    return mapping, index


def parse_simple_yaml(text: str) -> Any:
    """The built-in YAML-subset parser (used when PyYAML is absent)."""
    stripped = text.lstrip()
    if stripped.startswith(("{", "[")):
        return json.loads(text)
    lines = []
    for raw in text.splitlines():
        line = _strip_comment(raw)
        if not line.strip():
            continue
        leading = line[:len(line) - len(line.lstrip())]
        if "\t" in leading:
            raise SpecError("tabs are not allowed in indentation")
        indent = len(leading)
        lines.append((indent, line.strip()))
    if not lines:
        return {}
    value, consumed = _parse_block(lines, 0, lines[0][0])
    if consumed != len(lines):
        raise SpecError("trailing content near %r" % (lines[consumed][1],))
    return value


def load_structured(text: str) -> Any:
    """YAML (PyYAML if importable, else the subset parser) or JSON."""
    try:
        import yaml
    except ImportError:
        return parse_simple_yaml(text)
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SpecError("invalid YAML: %s" % exc)


# -- the scenario object ------------------------------------------------------

class Scenario:
    """A validated experiment description."""

    def __init__(self, name: str, topology: Dict[str, Any],
                 duration: float = 5.0,
                 description: str = "",
                 seeds: Optional[List[int]] = None,
                 workload: Optional[Dict[str, Any]] = None,
                 chains: Optional[Dict[str, Any]] = None,
                 sla: Optional[Dict[str, Any]] = None,
                 chaos: Optional[Dict[str, Any]] = None,
                 mapper: str = "shortest-path",
                 profile: bool = False,
                 accounting: bool = True,
                 flowtrace: Optional[Dict[str, Any]] = None,
                 escape_options: Optional[Dict[str, Any]] = None):
        if not name:
            raise SpecError("scenario needs a name")
        if duration <= 0:
            raise SpecError("duration must be > 0 (got %r)" % duration)
        if not topology or "kind" not in topology:
            raise SpecError("scenario needs a topology with a 'kind'")
        self.name = name
        self.description = description
        self.topology = dict(topology)
        self.duration = float(duration)
        self.seeds = [int(seed) for seed in (seeds or [0])]
        self.workload = dict(workload or {})
        self.chains = dict(chains or {})
        self.sla = dict(sla) if sla else None
        self.chaos = dict(chaos) if chaos else None
        self.mapper = mapper
        self.profile = bool(profile)
        # dispatch accounting is cheap enough to default on: bundles
        # then always carry a per-event-kind attribution section
        self.accounting = bool(accounting)
        # sampled per-packet path tracing: {"rate": N, "seed": S,
        # "chains": {name: coarser-rate}}; seed defaults to the run
        # seed so sampled sets replay bit-identically
        if flowtrace is not None and not isinstance(flowtrace, dict):
            raise SpecError("flowtrace must be a mapping (rate/seed/"
                            "chains), got %r" % (flowtrace,))
        self.flowtrace = dict(flowtrace) if flowtrace else None
        self.escape_options = dict(escape_options or {})

    KNOWN_KEYS = ("name", "description", "topology", "duration", "seeds",
                  "workload", "chains", "sla", "chaos", "mapper",
                  "profile", "accounting", "flowtrace", "escape_options")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        if not isinstance(data, dict):
            raise SpecError("scenario must be a mapping, got %s"
                            % type(data).__name__)
        unknown = sorted(set(data) - set(cls.KNOWN_KEYS))
        if unknown:
            raise SpecError("unknown scenario key(s): %s (known: %s)"
                            % (", ".join(unknown),
                               ", ".join(cls.KNOWN_KEYS)))
        try:
            return cls(**{key: data[key] for key in cls.KNOWN_KEYS
                          if key in data})
        except (TypeError, ValueError) as exc:
            raise SpecError("bad scenario: %s" % exc)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "description": self.description,
            "topology": self.topology,
            "duration": self.duration,
            "seeds": self.seeds,
            "workload": self.workload,
            "chains": self.chains,
            "mapper": self.mapper,
            "profile": self.profile,
            "accounting": self.accounting,
        }
        if self.sla:
            data["sla"] = self.sla
        if self.chaos:
            data["chaos"] = self.chaos
        if self.flowtrace:
            data["flowtrace"] = self.flowtrace
        if self.escape_options:
            data["escape_options"] = self.escape_options
        return data

    def __repr__(self) -> str:
        return "Scenario(%s, topology=%s, duration=%.3gs, seeds=%r)" % (
            self.name, self.topology.get("kind"), self.duration,
            self.seeds)


def load_scenario(source: Union[str, Dict[str, Any], os.PathLike]
                  ) -> Scenario:
    """Build a Scenario from a dict, a YAML/JSON string, or a file
    path (``.yaml`` / ``.yml`` / ``.json``)."""
    if isinstance(source, dict):
        return Scenario.from_dict(source)
    text = os.fspath(source)
    if not text.lstrip().startswith(("{", "[")) and "\n" not in text:
        if not os.path.exists(text):
            raise SpecError("no such scenario file: %s" % text)
        with open(text) as handle:
            text = handle.read()
    data = load_structured(text)
    return Scenario.from_dict(data)
