"""The campaign runner: one :class:`Scenario` × N seeds → result
bundles.

Each run builds a fresh substrate from the topology zoo, brings a
full :class:`repro.core.ESCAPE` stack up on it, deploys the seeded
chain requests, arms the optional chaos scenario, drives the
subscriber workload, and writes one **result bundle** under::

    <results_dir>/<scenario-name>/seed-<seed>/
        bundle.json     # everything below, self-contained
        events.jsonl    # the structured event log of the run
        flowtrace.jsonl # per-packet postcards (flowtrace scenarios)

Bundle schema (``schema`` = 4): ``scenario`` (the spec), ``seed``,
``workload`` (delivery + p50/p99 one-way delay), ``chains``
(deployed/failed), ``sla`` (per-chain state, breach/violation counts,
violation ratio), ``recovery`` (actions, MTTR stats with percentiles,
unrecovered), ``protection`` (fast-failover state: enabled flag,
protected path count, dataplane bucket flips), ``chaos`` (the
injection ledger), ``throughput`` (``udp_pps_wall``,
``udp_pps_sim``), ``metrics`` (the full telemetry snapshot),
``dispatch`` (per-event-kind accounting report, unless the scenario
sets ``accounting: false``), ``calibration_s`` (host-speed
normalizer, so ``escape perf diff`` can compare bundles from
different machines), ``profiler`` (per-region report when the
scenario enables profiling), and ``flowtrace`` (per-chain hop-latency
breakdown + conformance, when the scenario carries a ``flowtrace``
section).  Schema 1 bundles lacked ``dispatch`` and
``calibration_s``; schema 2 lacked ``protection`` and the MTTR
percentiles; schema 3 lacked ``flowtrace``.

The runner never swallows a failed run: chain deploys that raise are
recorded and counted, and :meth:`CampaignRunner.gate` reproduces the
CI criterion (zero unrecovered chains, zero failed deploys).
"""

import json
import os
import time
from typing import Any, Dict, List, Optional, Union

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph
from repro.scenario.spec import Scenario, load_scenario
from repro.scenario.workload import WorkloadDriver, build_workload
from repro.scenario.zoo import build_topology
from repro.telemetry.regression import calibrate

BUNDLE_SCHEMA = 4
BUNDLE_NAME = "bundle.json"
EVENTS_NAME = "events.jsonl"
FLOWTRACE_NAME = "flowtrace.jsonl"


class ScenarioError(Exception):
    pass


def _sla_summary(escape: ESCAPE) -> Dict[str, Any]:
    per_chain: Dict[str, Any] = {}
    total_rounds = 0
    breach_rounds = 0
    for name, monitor in sorted(escape.sla_monitors.items()):
        breaches = escape.telemetry.metrics.get(
            "sla.breaches", labels={"chain": name})
        lost = escape.telemetry.metrics.get(
            "sla.probes_lost", labels={"chain": name})
        breached = int(breaches.value) if breaches is not None else 0
        violations = sum(1 for _t, _old, new in monitor.transitions
                        if new == "VIOLATED")
        per_chain[name] = {
            "state": monitor.state,
            "rounds": monitor.rounds,
            "breach_rounds": breached,
            "violations": violations,
            "probes_lost": int(lost.value) if lost is not None else 0,
            "transitions": [list(item) for item in monitor.transitions],
        }
        total_rounds += monitor.rounds
        breach_rounds += breached
    return {
        "per_chain": per_chain,
        "monitored_chains": len(per_chain),
        "rounds": total_rounds,
        "breach_rounds": breach_rounds,
        "violation_ratio": (breach_rounds / total_rounds
                            if total_rounds else 0.0),
    }


def _percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 1]); None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _recovery_summary(escape: ESCAPE) -> Dict[str, Any]:
    actions = [dict(action) for action in escape.recovery.actions]
    mttrs = [action["mttr"] for action in actions
             if action.get("ok") and action.get("mttr") is not None]
    return {
        "actions": actions,
        "repairs": sum(1 for action in actions if action.get("ok")),
        "gave_up": sum(1 for action in actions if not action.get("ok")),
        "flips": sum(1 for action in actions
                     if action.get("kind") == "flip"),
        "mttr_avg": (sum(mttrs) / len(mttrs)) if mttrs else None,
        "mttr_p50": _percentile(mttrs, 0.5),
        "mttr_p90": _percentile(mttrs, 0.9),
        "mttr_max": max(mttrs) if mttrs else None,
        "unrecovered": escape.recovery.unrecovered(),
        "pending": ["%s/%s" % key for key in escape.recovery.pending()],
    }


def _protection_summary(escape: ESCAPE) -> Dict[str, Any]:
    return {
        "enabled": escape.orchestrator.protection,
        "protected_paths": len(escape.steering.protected_paths()),
        "flips": sum(switch.datapath.group_flip_count
                     for switch in escape.net.switches()),
    }


class CampaignRunner:
    """Executes every seed of a scenario and collects the bundles."""

    def __init__(self, scenario: Union[Scenario, dict, str],
                 results_dir: Union[str, os.PathLike] = "results",
                 printer=None):
        if not isinstance(scenario, Scenario):
            scenario = load_scenario(scenario)
        self.scenario = scenario
        self.results_dir = os.fspath(results_dir)
        self.bundles: List[Dict[str, Any]] = []
        self._print = printer or (lambda _line: None)
        self._calibration: Optional[float] = None

    def calibration(self) -> float:
        """Host-speed normalizer, measured once per campaign."""
        if self._calibration is None:
            self._calibration = calibrate()
        return self._calibration

    # -- single run --------------------------------------------------------

    def run_seed(self, seed: int,
                 write: bool = True) -> Dict[str, Any]:
        scenario = self.scenario
        topo = build_topology(scenario.topology)
        schedule = build_workload(
            topo, seed, scenario.duration,
            workload_spec=scenario.workload,
            chains_spec=scenario.chains, sla_spec=scenario.sla)
        self._print("[seed %d] %r over %r" % (seed, schedule, topo))

        escape = ESCAPE.from_topology(topo, **scenario.escape_options)
        wall_started = time.perf_counter()
        escape.start()
        deployed: List[Dict[str, Any]] = []
        failed: List[Dict[str, Any]] = []
        for request in schedule.chains:
            sg = load_service_graph(request["sg"])
            try:
                chain = escape.deploy_service(sg, mapper=scenario.mapper)
            except Exception as exc:  # a failed embed is a result
                failed.append({"name": request["name"],
                               "error": "%s: %s"
                               % (type(exc).__name__, exc)})
                self._print("[seed %d] deploy %s FAILED: %s"
                            % (seed, request["name"], exc))
                continue
            deployed.append({
                "name": request["name"],
                "template": request["template"],
                "src": request["src"], "dst": request["dst"],
                "placement": dict(chain.mapping.vnf_placement),
            })
        escape.run(0.05)  # let steering entries land before traffic

        chaos_ledger: List[Dict[str, Any]] = []
        engine = None
        if scenario.chaos:
            chaos_spec = dict(scenario.chaos)
            chaos_spec.setdefault("name", "%s-chaos" % scenario.name)
            chaos_spec.setdefault("seed", seed)
            engine = escape.inject_chaos(chaos_spec)

        if scenario.profile:
            escape.profiler.reset()
            escape.profiler.enable()
        if scenario.accounting:
            escape.accounting.reset()
            escape.accounting.enable()
        if scenario.flowtrace:
            flowtrace_spec = scenario.flowtrace
            escape.flowtrace.reset()
            # the sampler seed defaults to the run seed: same seed +
            # same scenario replays a byte-identical sampled set
            escape.flowtrace.enable(
                rate=int(flowtrace_spec.get("rate", 64)),
                seed=int(flowtrace_spec.get("seed", seed)))
            for chain_name, chain_rate in sorted(
                    (flowtrace_spec.get("chains") or {}).items()):
                escape.flowtrace.set_chain_rate(chain_name,
                                                int(chain_rate))
        driver = WorkloadDriver(escape.net, schedule).arm()
        run_started = time.perf_counter()
        escape.run(scenario.duration)
        # grace window: in-flight tails, probe deadlines, repairs
        escape.run(min(1.0, scenario.duration * 0.25))
        wall_run = time.perf_counter() - run_started
        if scenario.profile:
            escape.profiler.disable()
        if scenario.accounting:
            escape.accounting.disable()
        flowtrace_report = None
        if scenario.flowtrace:
            escape.flowtrace.disable()
            # publish() pushes per-chain gauges into the registry so
            # the metrics snapshot below carries flowtrace.* series
            flowtrace_report = escape.flowtrace.publish(
                escape.telemetry.metrics)
        if engine is not None:
            engine.heal_all()
            escape.run(0.5)
            chaos_ledger = [dict(record) for record in engine.injections]
        driver.disarm()

        workload_results = driver.results()
        received = workload_results["packets_received"]
        bundle: Dict[str, Any] = {
            "schema": BUNDLE_SCHEMA,
            "scenario": scenario.to_dict(),
            "seed": seed,
            "sim_duration": escape.sim.now,
            "wall_seconds": time.perf_counter() - wall_started,
            "workload": workload_results,
            "schedule_meta": schedule.meta,
            "chains": {"deployed": deployed, "failed": failed},
            "sla": _sla_summary(escape),
            "recovery": _recovery_summary(escape),
            "protection": _protection_summary(escape),
            "chaos": {"injections": chaos_ledger,
                      "armed": engine is not None},
            "throughput": {
                "udp_pps_wall": received / wall_run if wall_run else 0.0,
                "udp_pps_sim": (received / scenario.duration
                                if scenario.duration else 0.0),
            },
            "metrics": escape.metrics_snapshot(),
            "calibration_s": self.calibration(),
        }
        if scenario.accounting:
            bundle["dispatch"] = escape.accounting.report()
        if scenario.profile:
            bundle["profiler"] = escape.profiler.report()
        if flowtrace_report is not None:
            bundle["flowtrace"] = flowtrace_report

        if write:
            run_dir = self.run_dir(seed)
            os.makedirs(run_dir, exist_ok=True)
            events_path = os.path.join(run_dir, EVENTS_NAME)
            bundle["events"] = {
                "path": events_path,
                "count": escape.telemetry.events.write_jsonl(events_path),
            }
            if flowtrace_report is not None:
                flowtrace_path = os.path.join(run_dir, FLOWTRACE_NAME)
                bundle["flowtrace"]["jsonl"] = {
                    "path": flowtrace_path,
                    "count": escape.flowtrace.write_jsonl(flowtrace_path),
                }
            with open(os.path.join(run_dir, BUNDLE_NAME), "w") as handle:
                json.dump(bundle, handle, indent=2, sort_keys=True)
                handle.write("\n")
        escape.stop()
        self.bundles.append(bundle)
        self._print("[seed %d] %d/%d packets, p50=%s p99=%s, "
                    "unrecovered=%s"
                    % (seed, received, workload_results["packets_sent"],
                       workload_results["delay_p50"],
                       workload_results["delay_p99"],
                       bundle["recovery"]["unrecovered"] or "none"))
        return bundle

    # -- campaign ----------------------------------------------------------

    def run(self, seeds: Optional[List[int]] = None,
            write: bool = True) -> List[Dict[str, Any]]:
        for seed in (seeds if seeds is not None else self.scenario.seeds):
            self.run_seed(int(seed), write=write)
        return self.bundles

    def run_dir(self, seed: int) -> str:
        return os.path.join(self.results_dir, self.scenario.name,
                            "seed-%d" % seed)

    def gate(self) -> List[str]:
        """CI criterion: problems that should fail a campaign (empty
        list = pass)."""
        problems = []
        for bundle in self.bundles:
            seed = bundle["seed"]
            for failure in bundle["chains"]["failed"]:
                problems.append("seed %d: deploy failed: %s (%s)"
                                % (seed, failure["name"],
                                   failure["error"]))
            for chain in bundle["recovery"]["unrecovered"]:
                problems.append("seed %d: chain %s unrecovered"
                                % (seed, chain))
            if bundle["workload"]["packets_received"] == 0 and \
                    bundle["workload"]["packets_sent"]:
                problems.append("seed %d: all workload packets lost"
                                % seed)
        return problems


def run_scenario(source: Union[Scenario, dict, str],
                 seeds: Optional[List[int]] = None,
                 results_dir: Union[str, os.PathLike] = "results",
                 write: bool = True,
                 printer=None) -> List[Dict[str, Any]]:
    """One-call campaign: load, run every seed, return the bundles."""
    runner = CampaignRunner(source, results_dir=results_dir,
                            printer=printer)
    runner.run(seeds=seeds, write=write)
    return runner.bundles
