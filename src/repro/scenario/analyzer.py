"""Cross-seed bundle aggregation: the campaign's comparison tables.

``escape scenario report <results-dir>`` loads every ``bundle.json``
under the given paths, groups them by scenario, and renders one table
per scenario — a row per seed plus a mean row — over the headline
columns: delivered pps (simulated and wall-clock), p50/p99 one-way
delay, loss ratio, SLA violation ratio, average and median MTTR,
dataplane fast-failover flips (schema-3 bundles), unrecovered chain
count, and (for schema-2+ bundles) dispatched-event count and
same-timestamp coalescability ratio.  :func:`report_dict` exposes the
same aggregation as JSON for dashboards and trajectory tracking, and
:func:`render_csv` flattens the per-seed rows to CSV for external
plotting.
"""

import csv
import io
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.scenario.runner import BUNDLE_NAME


class AnalyzerError(Exception):
    pass


def load_bundles(paths: Union[str, os.PathLike,
                              Iterable[Union[str, os.PathLike]]]
                 ) -> List[Dict[str, Any]]:
    """Result bundles from files and/or directories (searched
    recursively for ``bundle.json``), ordered by (scenario, seed)."""
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    files: List[str] = []
    for path in paths:
        path = os.fspath(path)
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                files.extend(os.path.join(root, name)
                             for name in names if name == BUNDLE_NAME)
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise AnalyzerError("no such file or directory: %s" % path)
    if not files:
        raise AnalyzerError("no %s found under %s"
                            % (BUNDLE_NAME,
                               ", ".join(os.fspath(p) for p in paths)))
    bundles = []
    for name in sorted(set(files)):
        with open(name) as handle:
            try:
                bundle = json.load(handle)
            except ValueError as exc:
                raise AnalyzerError("%s: invalid JSON (%s)" % (name, exc))
        bundle.setdefault("_path", name)
        bundles.append(bundle)
    bundles.sort(key=lambda b: (b.get("scenario", {}).get("name", ""),
                                b.get("seed", 0)))
    return bundles


def _row(bundle: Dict[str, Any]) -> Dict[str, Any]:
    workload = bundle.get("workload", {})
    recovery = bundle.get("recovery", {})
    sla = bundle.get("sla", {})
    throughput = bundle.get("throughput", {})
    dispatch = bundle.get("dispatch") or {}
    protection = bundle.get("protection") or {}
    return {
        "seed": bundle.get("seed"),
        "pps_sim": throughput.get("udp_pps_sim"),
        "pps_wall": throughput.get("udp_pps_wall"),
        "delay_p50": workload.get("delay_p50"),
        "delay_p99": workload.get("delay_p99"),
        "loss_ratio": workload.get("loss_ratio"),
        "sla_violation_ratio": sla.get("violation_ratio"),
        "mttr_avg": recovery.get("mttr_avg"),
        "mttr_p50": recovery.get("mttr_p50"),
        "flips": protection.get("flips"),
        "repairs": recovery.get("repairs"),
        "unrecovered": len(recovery.get("unrecovered") or ()),
        "chains_deployed": len(bundle.get("chains", {})
                               .get("deployed") or ()),
        "chains_failed": len(bundle.get("chains", {})
                             .get("failed") or ()),
        "events": dispatch.get("dispatched"),
        "coalesce_ratio": dispatch.get("coalescable_ratio"),
    }


def _mean(values: List[Optional[float]]) -> Optional[float]:
    numbers = [value for value in values if value is not None]
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


class CampaignReport:
    """All runs of one scenario, summarised."""

    def __init__(self, name: str, bundles: List[Dict[str, Any]]):
        self.name = name
        self.bundles = bundles
        self.rows = [_row(bundle) for bundle in bundles]

    def aggregate(self) -> Dict[str, Any]:
        keys = ("pps_sim", "pps_wall", "delay_p50", "delay_p99",
                "loss_ratio", "sla_violation_ratio", "mttr_avg",
                "mttr_p50", "flips", "events", "coalesce_ratio")
        summary: Dict[str, Any] = {
            key: _mean([row[key] for row in self.rows]) for key in keys}
        summary["seeds"] = [row["seed"] for row in self.rows]
        summary["unrecovered_total"] = sum(row["unrecovered"]
                                           for row in self.rows)
        summary["chains_failed_total"] = sum(row["chains_failed"]
                                             for row in self.rows)
        return summary

    def to_dict(self) -> Dict[str, Any]:
        return {"scenario": self.name, "rows": self.rows,
                "aggregate": self.aggregate()}


def group_reports(bundles: List[Dict[str, Any]]) -> List[CampaignReport]:
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for bundle in bundles:
        name = bundle.get("scenario", {}).get("name", "?")
        grouped.setdefault(name, []).append(bundle)
    return [CampaignReport(name, grouped[name])
            for name in sorted(grouped)]


def report_dict(bundles: List[Dict[str, Any]]) -> Dict[str, Any]:
    return {"campaigns": [report.to_dict()
                          for report in group_reports(bundles)]}


def _fmt(value: Optional[float], pattern: str = "%.4g") -> str:
    if value is None:
        return "-"
    return pattern % value


_COLUMNS = (
    ("seed", 6), ("pps_sim", 9), ("pps_wall", 9), ("p50[ms]", 8),
    ("p99[ms]", 8), ("loss", 7), ("sla-viol", 8), ("mttr[s]", 8),
    ("flips", 5), ("unrec", 5), ("events", 8), ("coalesce", 8),
)


def _render_row(label: str, row: Dict[str, Any]) -> str:
    delay_p50 = row["delay_p50"]
    delay_p99 = row["delay_p99"]
    cells = (
        label, _fmt(row["pps_sim"], "%.1f"), _fmt(row["pps_wall"], "%.1f"),
        _fmt(delay_p50 * 1e3 if delay_p50 is not None else None, "%.3f"),
        _fmt(delay_p99 * 1e3 if delay_p99 is not None else None, "%.3f"),
        _fmt(row["loss_ratio"], "%.4f"),
        _fmt(row["sla_violation_ratio"], "%.4f"),
        _fmt(row["mttr_avg"], "%.3f"),
        _fmt(row.get("flips"), "%.0f"),
        str(row["unrecovered"]),
        _fmt(row.get("events"), "%.0f"),
        _fmt(row.get("coalesce_ratio"), "%.3f"),
    )
    return "  ".join(cell.rjust(width)
                     for cell, (_name, width) in zip(cells, _COLUMNS))


def render_report(bundles: List[Dict[str, Any]]) -> str:
    """The cross-seed comparison tables, one per scenario."""
    lines: List[str] = []
    for report in group_reports(bundles):
        aggregate = report.aggregate()
        lines.append("campaign %s (%d run(s))"
                     % (report.name, len(report.rows)))
        lines.append("  ".join(name.rjust(width)
                               for name, width in _COLUMNS))
        for row in report.rows:
            lines.append(_render_row(str(row["seed"]), row))
        mean_row = dict(aggregate)
        mean_row["unrecovered"] = aggregate["unrecovered_total"]
        lines.append(_render_row("mean", mean_row))
        if aggregate["chains_failed_total"]:
            lines.append("  !! %d chain deploy(s) failed"
                         % aggregate["chains_failed_total"])
        lines.append("")
    return "\n".join(lines).rstrip()


CSV_FIELDS = ("scenario", "seed", "pps_sim", "pps_wall", "delay_p50",
              "delay_p99", "loss_ratio", "sla_violation_ratio",
              "mttr_avg", "mttr_p50", "flips", "repairs", "unrecovered",
              "chains_deployed", "chains_failed", "events",
              "coalesce_ratio")


def render_csv(bundles: List[Dict[str, Any]]) -> str:
    """Per-seed rows flattened to CSV (one header, all scenarios),
    for external plotting without scraping the table output."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS,
                            lineterminator="\n")
    writer.writeheader()
    for report in group_reports(bundles):
        for row in report.rows:
            record = {"scenario": report.name}
            record.update({key: ("" if row.get(key) is None
                                 else row.get(key))
                           for key in CSV_FIELDS if key != "scenario"})
            writer.writerow(record)
    return buffer.getvalue().rstrip()
