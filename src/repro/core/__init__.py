"""ESCAPE's own layers (the paper's contribution).

* :mod:`~repro.core.nffg` — the abstract service graph (SAPs, VNFs,
  SG links, delay/bandwidth requirements) and the substrate resource
  view the orchestrator maps onto,
* :mod:`~repro.core.catalog` — the built-in VNF catalog (Click configs),
* :mod:`~repro.core.mapping` — the extensible Orchestrator's mapping
  algorithms (greedy / shortest-path / backtracking),
* :mod:`~repro.core.orchestrator` — deploys a mapped graph: VNFs over
  NETCONF, steering entries over the POX module,
* :mod:`~repro.core.service` — service-layer request handling + SLA
  verification,
* :mod:`~repro.core.monitor` — Clicky-analog VNF monitoring,
* :mod:`~repro.core.sgfile` — JSON topology/SG descriptions (the
  MiniEdit GUI replacement),
* :mod:`~repro.core.escape` — the :class:`ESCAPE` facade wiring all
  three UNIFY layers (Fig. 1 of the paper).
"""

from repro.core.catalog import CatalogEntry, VNFCatalog, default_catalog
from repro.core.escape import ESCAPE
from repro.core.mapping import (BacktrackingMapper, CongestionAwareMapper,
                                GreedyMapper, Mapper, Mapping,
                                MappingError, ShortestPathMapper)
from repro.core.monitor import MonitorSample, VNFMonitor
from repro.core.nffg import (Requirement, ResourceView, SAP, ServiceGraph,
                             SGLink, VNFNode)
from repro.core.orchestrator import (DeployedChain, Orchestrator,
                                     OrchestratorError)
from repro.core.recovery import (CHAIN_FAILED, CHAIN_HEALTHY,
                                 CHAIN_RECOVERING, RecoveryManager)
from repro.core.service import ServiceLayer, ServiceRequest
from repro.core.sla import (OK, RequirementReport, SLAError, SLAMonitor,
                            VIOLATED, WARN)
from repro.core.sgfile import (load_service_graph, load_topology,
                               save_service_graph, save_topology)

__all__ = [
    "BacktrackingMapper",
    "CHAIN_FAILED",
    "CHAIN_HEALTHY",
    "CHAIN_RECOVERING",
    "CatalogEntry",
    "CongestionAwareMapper",
    "DeployedChain",
    "ESCAPE",
    "GreedyMapper",
    "Mapper",
    "Mapping",
    "MappingError",
    "MonitorSample",
    "OK",
    "Orchestrator",
    "OrchestratorError",
    "RecoveryManager",
    "Requirement",
    "RequirementReport",
    "ResourceView",
    "SAP",
    "SGLink",
    "SLAError",
    "SLAMonitor",
    "ServiceGraph",
    "ServiceLayer",
    "ServiceRequest",
    "ShortestPathMapper",
    "VIOLATED",
    "VNFCatalog",
    "WARN",
    "VNFMonitor",
    "VNFNode",
    "default_catalog",
    "load_service_graph",
    "load_topology",
    "save_service_graph",
    "save_topology",
]
