"""SG→substrate mapping algorithms (the extensible Orchestrator core).

"A dedicated component maps abstract service graphs into available
resources based on different optimization algorithms (which can be
easily changed or customized)."  The :class:`Mapper` interface is that
extension point; three strategies ship with the reproduction:

* :class:`GreedyMapper` — first-fit container per VNF, hop-shortest
  connectivity.  Fast, no optimization.
* :class:`ShortestPathMapper` — per-VNF choice minimizing added path
  delay from the previous element, with bandwidth-feasibility pruning.
* :class:`BacktrackingMapper` — exhaustive search over container
  assignments with resource/requirement pruning; minimizes total chain
  delay.  Optimal on chains, exponential worst case.

The MAP1 benchmark compares their acceptance ratio, path stretch and
runtime on random request batches.
"""

from typing import Dict, List, Optional

from repro.core.catalog import VNFCatalog
from repro.core.nffg import ResourceView, ServiceGraph
from repro.telemetry import current as current_telemetry


class MappingError(Exception):
    pass


class Mapping:
    """A complete embedding of one service graph.

    ``vnf_placement`` maps VNF name -> container name; ``link_paths``
    maps (src, dst) SG-link endpoints -> substrate node path (SAPs,
    switches, containers).
    """

    def __init__(self, sg: ServiceGraph):
        self.sg = sg
        self.vnf_placement: Dict[str, str] = {}
        self.link_paths: Dict[tuple, List[str]] = {}
        # proactive protection (filled by compute_backup_paths):
        # per-segment maximally link-disjoint alternates plus metadata
        # about how disjoint they actually are, and optional standby
        # replica containers for anycast failover
        self.backup_paths: Dict[tuple, List[str]] = {}
        self.backup_info: Dict[tuple, dict] = {}
        self.backup_placement: Dict[str, str] = {}

    def total_delay(self, view: ResourceView) -> float:
        return sum(view.path_delay(path)
                   for path in self.link_paths.values())

    def total_hops(self) -> int:
        return sum(max(0, len(path) - 1)
                   for path in self.link_paths.values())

    def chain_delay(self, view: ResourceView, src_sap: str) -> float:
        """End-to-end substrate delay of the chain starting at a SAP."""
        chain = self.sg.chain_from(src_sap)
        return sum(view.path_delay(self.link_paths[(a, b)])
                   for a, b in zip(chain, chain[1:]))

    def __repr__(self) -> str:
        return "Mapping(%s: %r)" % (self.sg.name, self.vnf_placement)


# weight penalty for reusing a primary edge: large against real link
# delays (milliseconds), so Dijkstra only shares a primary edge when no
# alternative exists at all — "maximally disjoint"
_SHARED_EDGE_PENALTY = 1e6


def compute_backup_paths(sg: ServiceGraph, mapping: Mapping,
                         view: ResourceView) -> Dict[tuple, List[str]]:
    """Per-segment maximally link-disjoint backup paths.

    For every mapped SG link, find the path between the same substrate
    endpoints that shares as few primary edges as possible (Dijkstra
    over delay with a prohibitive penalty on primary edges).  The
    attachment edges at the segment endpoints are unavoidable for
    single-homed SAPs/containers and do not count against disjointness.

    Results land on the mapping: ``backup_paths[(src, dst)]`` holds the
    alternate substrate path and ``backup_info[(src, dst)]`` records
    ``disjoint`` (no interior primary edge shared) and the
    ``shared_edges`` list.  Segments with no alternative at all
    (single-link topologies, hairpins) get no backup — protection is
    disabled for them, with a warning in the event log.

    Backup bandwidth is *not* reserved: protection is shared, 1:N —
    the backup only carries traffic after a failure, and a fresh one is
    re-provisioned afterwards (make-before-break).
    """
    import networkx as nx
    events = current_telemetry().events
    backups: Dict[tuple, List[str]] = {}
    for (src, dst), primary in mapping.link_paths.items():
        key = (src, dst)
        mapping.backup_paths.pop(key, None)  # recompute = fresh slate
        if len(primary) < 2 or primary[0] == primary[-1]:
            # degenerate or hairpin segment: no distinct endpoints to
            # route an alternate between
            mapping.backup_info[key] = {"disjoint": False,
                                        "reason": "hairpin"}
            continue
        bandwidth = Mapper._link_bandwidth(sg, src, dst)
        primary_edges = {frozenset(pair)
                         for pair in zip(primary, primary[1:])}
        attachment_edges = {frozenset(primary[:2]),
                            frozenset(primary[-2:])}
        usable = []
        for node1, node2, data in view.graph.edges(data=True):
            if not view.link_is_up(node1, node2):
                continue
            if bandwidth > 0 and data["bandwidth"] is not None and \
                    data["bandwidth"] - data["bw_used"] \
                    < bandwidth - 1e-9:
                continue
            usable.append((node1, node2))
        candidate = view.graph.edge_subgraph(usable)

        def weight(node1, node2, data):
            delay = data["delay"] or 1e-9
            if frozenset((node1, node2)) in primary_edges:
                return delay + _SHARED_EDGE_PENALTY
            return delay

        head, tail = primary[0], primary[-1]
        try:
            backup = nx.dijkstra_path(candidate, head, tail,
                                      weight=weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            backup = None
        if backup is None:
            mapping.backup_info[key] = {"disjoint": False,
                                        "reason": "no path"}
            events.warn("core.mapping", "protection.disabled",
                        "%s: no backup path %s -> %s" % (sg.name, src,
                                                         dst),
                        chain=sg.name, segment="%s->%s" % (src, dst))
            continue
        backup_edges = {frozenset(pair)
                        for pair in zip(backup, backup[1:])}
        shared = backup_edges & primary_edges
        interior_shared = shared - attachment_edges
        if backup_edges <= primary_edges:
            # the "alternate" is the primary again — single-link
            # topology, nothing to protect with
            mapping.backup_info[key] = {"disjoint": False,
                                        "reason": "no alternative"}
            events.warn("core.mapping", "protection.disabled",
                        "%s: no disjoint alternative %s -> %s"
                        % (sg.name, src, dst),
                        chain=sg.name, segment="%s->%s" % (src, dst))
            continue
        info = {
            "disjoint": not interior_shared,
            "shared_edges": sorted(tuple(sorted(edge))
                                   for edge in interior_shared),
        }
        if interior_shared:
            events.warn(
                "core.mapping", "protection.degraded",
                "%s: backup %s -> %s shares %d primary edge(s)"
                % (sg.name, src, dst, len(interior_shared)),
                chain=sg.name, segment="%s->%s" % (src, dst),
                shared=len(interior_shared))
        mapping.backup_paths[key] = backup
        mapping.backup_info[key] = info
        backups[key] = backup
    return backups


def compute_backup_placement(sg: ServiceGraph, mapping: Mapping,
                             view: ResourceView,
                             catalog: VNFCatalog) -> Dict[str, str]:
    """Optional anycast standby: for each placed VNF, the first *other*
    container that could host a replica right now.  Capacity is checked
    but not reserved — the standby is a warm target for failover
    re-provisioning, not a running instance."""
    for vnf_name, placed in mapping.vnf_placement.items():
        vnf = sg.vnfs[vnf_name]
        entry = catalog.get(vnf.vnf_type)
        cpu = vnf.cpu if vnf.cpu is not None else entry.cpu
        mem = vnf.mem if vnf.mem is not None else entry.mem
        ports = len(entry.devices)
        for container in view.containers():
            if container == placed:
                continue
            if view.container_fits(container, cpu, mem, ports):
                mapping.backup_placement[vnf_name] = container
                break
    return mapping.backup_placement


class Mapper:
    """Strategy interface: subclass and implement :meth:`map`.

    ``map`` must either return a complete Mapping — after reserving the
    consumed resources on ``view`` — or raise MappingError leaving
    ``view`` untouched.
    """

    name = "abstract"

    def __init__(self, catalog: VNFCatalog):
        self.catalog = catalog
        metrics = current_telemetry().metrics
        self._m_placement_attempts = metrics.counter(
            "core.mapping.placement_attempts",
            "container candidates examined during placement")
        self._m_accepted = metrics.counter(
            "core.mapping.accepted", "mappings committed to the view")
        self._m_backtrack_steps = metrics.counter(
            "core.mapping.backtrack_steps",
            "search-tree nodes visited by the backtracking mapper")

    def map(self, sg: ServiceGraph, view: ResourceView) -> Mapping:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    def demand_of(self, sg: ServiceGraph, vnf_name: str) -> tuple:
        """(cpu, mem, ports) demand of one SG VNF.  Ports = the number
        of virtual devices its catalog entry splices to switch-facing
        container interfaces."""
        vnf = sg.vnfs[vnf_name]
        entry = self.catalog.get(vnf.vnf_type)
        cpu = vnf.cpu if vnf.cpu is not None else entry.cpu
        mem = vnf.mem if vnf.mem is not None else entry.mem
        return cpu, mem, len(entry.devices)

    def _place_node(self, sg: ServiceGraph, name: str,
                    placement: Dict[str, str]) -> str:
        """Substrate node an SG node is anchored at."""
        if name in sg.saps:
            return name  # SAPs use their own substrate name
        return placement[name]

    def _commit(self, mapping: Mapping, view: ResourceView,
                reservations: List[tuple], paths: List[tuple]) -> None:
        """Apply reservations; on failure roll back and raise."""
        done_containers: List[tuple] = []
        done_paths: List[tuple] = []
        try:
            for container, cpu, mem, ports in reservations:
                view.reserve_container(container, cpu, mem, ports)
                done_containers.append((container, cpu, mem, ports))
            for path, bandwidth in paths:
                view.reserve_path_bandwidth(path, bandwidth)
                done_paths.append((path, bandwidth))
        except ValueError as exc:
            for path, bandwidth in done_paths:
                view.release_path_bandwidth(path, bandwidth)
            for container, cpu, mem, ports in done_containers:
                view.release_container(container, cpu, mem, ports)
            raise MappingError(str(exc))
        self._m_accepted.inc()

    def release(self, mapping: Mapping, view: ResourceView) -> None:
        """Undo a mapping's reservations (chain teardown)."""
        for vnf_name, container in mapping.vnf_placement.items():
            cpu, mem, ports = self.demand_of(mapping.sg, vnf_name)
            view.release_container(container, cpu, mem, ports)
        for (src, dst), path in mapping.link_paths.items():
            bandwidth = self._link_bandwidth(mapping.sg, src, dst)
            view.release_path_bandwidth(path, bandwidth)

    @staticmethod
    def _link_bandwidth(sg: ServiceGraph, src: str, dst: str) -> float:
        for link in sg.links:
            if link.src == src and link.dst == dst:
                return link.bandwidth
        return 0.0


class GreedyMapper(Mapper):
    """First container with room, shortest path by delay, no lookahead."""

    name = "greedy"

    def map(self, sg: ServiceGraph, view: ResourceView) -> Mapping:
        sg.validate()
        mapping = Mapping(sg)
        reservations: List[tuple] = []
        trial = view.copy()  # feasibility bookkeeping before commit
        for vnf_name in sg.vnfs:
            cpu, mem, ports = self.demand_of(sg, vnf_name)
            chosen = None
            for container in trial.containers():
                self._m_placement_attempts.inc()
                if trial.container_fits(container, cpu, mem, ports):
                    chosen = container
                    break
            if chosen is None:
                raise MappingError("no container fits VNF %r "
                                   "(cpu=%.2f mem=%.0f ports=%d)"
                                   % (vnf_name, cpu, mem, ports))
            trial.reserve_container(chosen, cpu, mem, ports)
            mapping.vnf_placement[vnf_name] = chosen
            reservations.append((chosen, cpu, mem, ports))
        paths = self._route_links(sg, mapping, trial)
        self._commit(mapping, view, reservations, paths)
        return mapping

    def _route_links(self, sg: ServiceGraph, mapping: Mapping,
                     trial: ResourceView) -> List[tuple]:
        paths: List[tuple] = []
        for link in sg.links:
            src = self._place_node(sg, link.src, mapping.vnf_placement)
            dst = self._place_node(sg, link.dst, mapping.vnf_placement)
            path = trial.shortest_path(src, dst, link.bandwidth)
            if path is None:
                raise MappingError("no path %s -> %s with %.0f bit/s"
                                   % (src, dst, link.bandwidth))
            trial.reserve_path_bandwidth(path, link.bandwidth)
            mapping.link_paths[(link.src, link.dst)] = path
            paths.append((path, link.bandwidth))
        return paths


class ShortestPathMapper(Mapper):
    """Choose, per VNF in chain order, the feasible container that adds
    the least delay from the previous element's anchor."""

    name = "shortest-path"

    def map(self, sg: ServiceGraph, view: ResourceView) -> Mapping:
        sg.validate()
        mapping = Mapping(sg)
        trial = view.copy()
        reservations: List[tuple] = []
        order = self._topological_vnfs(sg)
        for vnf_name in order:
            cpu, mem, ports = self.demand_of(sg, vnf_name)
            anchor = self._anchor_of(sg, vnf_name, mapping.vnf_placement)
            best = None
            best_delay = None
            for container in trial.containers():
                self._m_placement_attempts.inc()
                if not trial.container_fits(container, cpu, mem, ports):
                    continue
                if anchor is None:
                    candidate_delay = 0.0
                else:
                    path = trial.shortest_path(anchor, container)
                    if path is None:
                        continue
                    candidate_delay = trial.path_delay(path)
                if best_delay is None or candidate_delay < best_delay:
                    best, best_delay = container, candidate_delay
            if best is None:
                raise MappingError("no reachable container fits VNF %r"
                                   % vnf_name)
            trial.reserve_container(best, cpu, mem, ports)
            mapping.vnf_placement[vnf_name] = best
            reservations.append((best, cpu, mem, ports))
        paths = GreedyMapper._route_links(self, sg, mapping, trial)
        self._check_requirements(sg, mapping, trial)
        self._commit(mapping, view, reservations, paths)
        return mapping

    def _topological_vnfs(self, sg: ServiceGraph) -> List[str]:
        """VNFs in chain order (predecessors first)."""
        order: List[str] = []
        visited = set(sg.saps)
        remaining = set(sg.vnfs)
        while remaining:
            progressed = False
            for vnf_name in list(remaining):
                preds = [link.src for link in sg.links
                         if link.dst == vnf_name]
                if all(pred in visited for pred in preds):
                    order.append(vnf_name)
                    visited.add(vnf_name)
                    remaining.discard(vnf_name)
                    progressed = True
            if not progressed:
                # cycle: fall back to arbitrary order for the rest
                order.extend(sorted(remaining))
                break
        return order

    def _anchor_of(self, sg: ServiceGraph, vnf_name: str,
                   placement: Dict[str, str]) -> Optional[str]:
        for link in sg.links:
            if link.dst != vnf_name:
                continue
            if link.src in sg.saps:
                return link.src
            if link.src in placement:
                return placement[link.src]
        return None

    def _check_requirements(self, sg: ServiceGraph, mapping: Mapping,
                            trial: ResourceView) -> None:
        for requirement in sg.requirements:
            if requirement.max_delay is None:
                continue
            delay = mapping.chain_delay(trial, requirement.src)
            if delay > requirement.max_delay + 1e-12:
                raise MappingError(
                    "requirement violated: %s chain delay %.6fs > %.6fs"
                    % (requirement.src, delay, requirement.max_delay))


class CongestionAwareMapper(ShortestPathMapper):
    """Shortest-path placement over *congestion-penalized* delays.

    Each link's weight is ``delay x (1 + alpha x utilization)``, where
    utilization combines reserved bandwidth and (when the controller's
    StatsCollector has annotated the view) the measured rate.  Chains
    therefore route around hot links even when they are the
    geometrically shortest — the measured data closing the loop between
    the monitoring plane and the mapping algorithm.
    """

    name = "congestion-aware"

    def __init__(self, catalog: VNFCatalog, alpha: float = 4.0):
        super().__init__(catalog)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def _edge_weight(self, view: ResourceView, node1: str,
                     node2: str) -> float:
        data = view.graph.edges[node1, node2]
        delay = data["delay"] or 1e-9
        capacity = data["bandwidth"]
        if capacity is None or capacity <= 0:
            return delay
        load = data["bw_used"] + data.get("measured_bps", 0.0)
        utilization = min(1.5, load / capacity)
        return delay * (1.0 + self.alpha * utilization)

    def _weighted_path(self, view: ResourceView, src: str, dst: str,
                       min_bandwidth: float) -> Optional[List[str]]:
        import networkx as nx
        if src == dst:
            return view.shortest_path(src, dst, min_bandwidth)
        graph = view.graph
        if min_bandwidth > 0:
            usable = [(a, b) for a, b, data in graph.edges(data=True)
                      if data["bandwidth"] is None
                      or data["bandwidth"] - data["bw_used"]
                      >= min_bandwidth - 1e-9]
            graph = graph.edge_subgraph(usable)
            if src not in graph or dst not in graph:
                return None
        try:
            return nx.shortest_path(
                graph, src, dst,
                weight=lambda a, b, _d: self._edge_weight(view, a, b))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def map(self, sg: ServiceGraph, view: ResourceView) -> Mapping:
        sg.validate()
        mapping = Mapping(sg)
        trial = view.copy()
        reservations: List[tuple] = []
        order = self._topological_vnfs(sg)
        for vnf_name in order:
            cpu, mem, ports = self.demand_of(sg, vnf_name)
            anchor = self._anchor_of(sg, vnf_name, mapping.vnf_placement)
            best = None
            best_cost = None
            for container in trial.containers():
                self._m_placement_attempts.inc()
                if not trial.container_fits(container, cpu, mem, ports):
                    continue
                if anchor is None:
                    cost = 0.0
                else:
                    path = self._weighted_path(trial, anchor, container,
                                               0.0)
                    if path is None:
                        continue
                    cost = sum(self._edge_weight(trial, a, b)
                               for a, b in zip(path, path[1:]))
                if best_cost is None or cost < best_cost:
                    best, best_cost = container, cost
            if best is None:
                raise MappingError("no reachable container fits VNF %r"
                                   % vnf_name)
            trial.reserve_container(best, cpu, mem, ports)
            mapping.vnf_placement[vnf_name] = best
            reservations.append((best, cpu, mem, ports))
        paths = self._route_links_weighted(sg, mapping, trial)
        self._check_requirements(sg, mapping, trial)
        self._commit(mapping, view, reservations, paths)
        return mapping

    def _route_links_weighted(self, sg: ServiceGraph, mapping: Mapping,
                              trial: ResourceView) -> List[tuple]:
        paths: List[tuple] = []
        for link in sg.links:
            src = self._place_node(sg, link.src, mapping.vnf_placement)
            dst = self._place_node(sg, link.dst, mapping.vnf_placement)
            path = self._weighted_path(trial, src, dst, link.bandwidth)
            if path is None:
                raise MappingError("no path %s -> %s with %.0f bit/s"
                                   % (src, dst, link.bandwidth))
            trial.reserve_path_bandwidth(path, link.bandwidth)
            mapping.link_paths[(link.src, link.dst)] = path
            paths.append((path, link.bandwidth))
        return paths


class BacktrackingMapper(ShortestPathMapper):
    """Exhaustive search over container assignments, minimizing total
    chain delay, with resource and delay-budget pruning."""

    name = "backtracking"

    def __init__(self, catalog: VNFCatalog, max_steps: int = 200000):
        super().__init__(catalog)
        self.max_steps = max_steps

    def map(self, sg: ServiceGraph, view: ResourceView) -> Mapping:
        sg.validate()
        order = self._topological_vnfs(sg)
        self._steps = 0
        try:
            best = self._search(sg, view.copy(), order, 0, {}, None)
        finally:
            self._m_backtrack_steps.inc(self._steps)
        if best is None:
            raise MappingError("backtracking found no feasible embedding")
        placement, _cost = best
        # Rebuild paths and commit on the real view.
        mapping = Mapping(sg)
        mapping.vnf_placement = dict(placement)
        trial = view.copy()
        for container, cpu, mem, ports in self._reservations(sg, placement):
            trial.reserve_container(container, cpu, mem, ports)
        paths = GreedyMapper._route_links(self, sg, mapping, trial)
        self._check_requirements(sg, mapping, trial)
        self._commit(mapping, view, self._reservations(sg, placement),
                     paths)
        return mapping

    def _reservations(self, sg: ServiceGraph,
                      placement: Dict[str, str]) -> List[tuple]:
        reservations = []
        for vnf_name, container in placement.items():
            cpu, mem, ports = self.demand_of(sg, vnf_name)
            reservations.append((container, cpu, mem, ports))
        return reservations

    def _search(self, sg: ServiceGraph, trial: ResourceView,
                order: List[str], index: int,
                placement: Dict[str, str],
                best: Optional[tuple]) -> Optional[tuple]:
        if index == len(order):
            cost = self._placement_cost(sg, trial, placement)
            if cost is None:
                return best
            if best is None or cost < best[1]:
                return (dict(placement), cost)
            return best
        vnf_name = order[index]
        cpu, mem, ports = self.demand_of(sg, vnf_name)
        for container in trial.containers():
            self._steps += 1
            if self._steps > self.max_steps:
                return best
            if not trial.container_fits(container, cpu, mem, ports):
                continue
            trial.reserve_container(container, cpu, mem, ports)
            placement[vnf_name] = container
            best = self._search(sg, trial, order, index + 1, placement,
                                best)
            del placement[vnf_name]
            trial.release_container(container, cpu, mem, ports)
        return best

    def _placement_cost(self, sg: ServiceGraph, trial: ResourceView,
                        placement: Dict[str, str]) -> Optional[float]:
        """Total delay of all SG links under this placement, or None
        when any link is unroutable / a requirement breaks."""
        total = 0.0
        per_chain: Dict[tuple, float] = {}
        for link in sg.links:
            src = self._place_node(sg, link.src, placement)
            dst = self._place_node(sg, link.dst, placement)
            path = trial.shortest_path(src, dst, link.bandwidth)
            if path is None:
                return None
            delay = trial.path_delay(path)
            total += delay
            per_chain[(link.src, link.dst)] = delay
        for requirement in sg.requirements:
            if requirement.max_delay is None:
                continue
            chain = sg.chain_from(requirement.src)
            chain_delay = sum(per_chain.get((a, b), 0.0)
                              for a, b in zip(chain, chain[1:]))
            if chain_delay > requirement.max_delay + 1e-12:
                return None
        return total
