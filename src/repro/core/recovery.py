"""Self-healing orchestration: watch the fault timeline, repair chains.

The :class:`RecoveryManager` closes the loop the paper leaves to the
operator: it subscribes to the unified telemetry event log (where the
infrastructure layer already reports ``vnf.crashed``, ``container.down``
/ ``container.up`` and ``link.down`` / ``link.up``) and drives the
orchestrator's repair primitives:

* a crashed VNF on a healthy container is **restarted in place**
  (:meth:`~repro.core.orchestrator.Orchestrator.restart_vnf`),
* a VNF stranded on a down container **fails over** to another
  container with capacity (``migrate_vnf(..., force=True)``),
* chains mapped over a down substrate link are **re-routed** around it
  (:meth:`~repro.core.orchestrator.Orchestrator.reroute_chains_for_edge`),
* FAILED zombie instances are **reaped** when their container returns,
  freeing the budget they still hold.

Reactions are scheduled ``reaction_delay`` after the fault event (a
recovery action must never run inside the emitting callback) and retry
with exponential backoff up to ``max_attempts``.  Every repair observes
its fault-to-fixed time into the ``core.recovery.mttr`` histogram
(labelled by fault kind) and flips the per-service
``core.recovery.chain_state`` gauge (0 healthy / 1 recovering /
2 failed).  Because reactions ride the simulator clock and candidate
selection is sorted, a seeded chaos run produces an identical recovery
timeline every time.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.core.orchestrator import Orchestrator, OrchestratorError
from repro.netem import Network
from repro.netem.vnf import FAILED as VNF_FAILED
from repro.telemetry import Event, current as current_telemetry

CHAIN_HEALTHY = 0
CHAIN_RECOVERING = 1
CHAIN_FAILED = 2


class RecoveryManager:
    """Event-log-driven fault repair for deployed chains."""

    def __init__(self, orchestrator: Orchestrator, net: Network,
                 reaction_delay: float = 0.05, max_attempts: int = 3,
                 retry_backoff: float = 0.5, enabled: bool = True,
                 protection: bool = False):
        self.orchestrator = orchestrator
        self.net = net
        self.sim = net.sim
        self.enabled = enabled
        self.reaction_delay = reaction_delay
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        # protection-aware mode: a fast-failover bucket flip in the
        # dataplane IS the recovery (MTTR = fault to flip); the
        # control-plane reroute that follows is make-before-break
        # re-provisioning of fresh backups, recorded without MTTR
        self.protection = protection
        self.telemetry = current_telemetry()
        # completed repair attempts, oldest first (the recovery ledger:
        # deterministic for a fixed seed, asserted on by chaos tests)
        self.actions: List[dict] = []
        self._inflight: Set[Tuple[str, str]] = set()
        self.chain_state: Dict[str, int] = {}
        # flip correlation buffers: a flip may land before or after the
        # scheduled link reaction, whichever order traffic dictates
        self._recent_flips: Dict[str, float] = {}
        self._awaiting_flip: Dict[str, float] = {}
        metrics = self.telemetry.metrics
        self._m_repairs = metrics.counter(
            "core.recovery.repairs", "faults repaired")
        self._m_attempts = metrics.counter(
            "core.recovery.attempts", "repair attempts started")
        self._m_failures = metrics.counter(
            "core.recovery.failures",
            "faults abandoned after max_attempts")
        self._m_flips = metrics.counter(
            "core.recovery.protection_flips",
            "outages absorbed by a dataplane fast-failover flip")
        self.telemetry.events.subscribe(self._on_event)

    # -- instruments --------------------------------------------------------

    def _mttr(self, fault_kind: str):
        return self.telemetry.metrics.histogram(
            "core.recovery.mttr",
            "simulated seconds from fault event to completed repair",
            labels={"fault": fault_kind})

    def _set_chain_state(self, service: str, state: int) -> None:
        self.chain_state[service] = state
        self.telemetry.metrics.gauge(
            "core.recovery.chain_state",
            "0 healthy / 1 recovering / 2 failed",
            labels={"service": service}).set(state)

    # -- status -------------------------------------------------------------

    def pending(self) -> List[Tuple[str, str]]:
        """Repairs scheduled or retrying right now."""
        return sorted(self._inflight)

    def unrecovered(self) -> List[str]:
        """Services currently degraded: recovering or given up on."""
        return sorted(name for name, state in self.chain_state.items()
                      if state != CHAIN_HEALTHY)

    # -- event intake -------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if not self.enabled:
            return
        if event.name == "vnf.crashed":
            vnf_id = event.tags.get("vnf_id")
            if vnf_id:
                self._schedule(("vnf", vnf_id), self._recover_vnf,
                               vnf_id, event.time)
        elif event.name == "link.down":
            link_name = event.tags.get("link")
            if link_name:
                self._schedule(("link", link_name), self._recover_link,
                               link_name, event.time)
        elif event.name == "link.up":
            link_name = event.tags.get("link")
            if link_name:
                self.sim.schedule(0.0, self._note_link_up, link_name)
        elif event.name == "container.up":
            container = event.tags.get("container")
            if container:
                self._schedule(("reap", container), self._reap_zombies,
                               container, event.time)
        elif event.name == "of.group.flip":
            self._note_flip(event)

    def watch_discovery(self, discovery) -> None:
        """Also react to POX-layer LLDP link-timeout detection — the
        control-plane's own view of a dead link, which catches failures
        the infrastructure layer never reported."""
        from repro.pox.discovery import LinkEvent
        discovery.add_listener(LinkEvent, self._on_link_event)

    def _on_link_event(self, event) -> None:
        if event.added or not self.enabled:
            return
        name1 = self._node_of_dpid(event.dpid1)
        name2 = self._node_of_dpid(event.dpid2)
        if name1 is None or name2 is None:
            return
        view = self.orchestrator.view
        try:
            if not view.link_is_up(name1, name2):
                return  # already being handled via the netem event
        except Exception:
            return
        edge = "%s--%s" % tuple(sorted((name1, name2)))
        self._schedule(("edge", edge), self._recover_edge,
                       (name1, name2), self.sim.now)

    def _node_of_dpid(self, dpid: int) -> Optional[str]:
        for switch in self.net.switches():
            if switch.dpid == dpid:
                return switch.name
        return None

    # -- scheduling & bookkeeping ------------------------------------------

    def _schedule(self, key: Tuple[str, str], func, target,
                  fault_time: float) -> None:
        if key in self._inflight:
            return
        self._inflight.add(key)
        self.telemetry.events.info(
            "core.recovery", "recovery.scheduled",
            "%s %s in %.3fs" % (key[0], key[1], self.reaction_delay),
            kind=key[0], target=str(key[1]))
        self.sim.schedule(self.reaction_delay, func, target, fault_time, 1)

    def _retry_or_fail(self, key: Tuple[str, str],
                       services: List[str], exc: Exception, func,
                       target, fault_time: float, attempt: int) -> None:
        if attempt >= self.max_attempts:
            self._inflight.discard(key)
            self._m_failures.inc()
            for service in services:
                self._set_chain_state(service, CHAIN_FAILED)
            self.actions.append({
                "time": self.sim.now, "kind": key[0],
                "target": key[1], "ok": False, "attempts": attempt,
                "error": str(exc)})
            self.telemetry.events.error(
                "core.recovery", "recovery.gave_up",
                "%s %s after %d attempts: %s" % (key[0], key[1],
                                                 attempt, exc),
                kind=key[0], target=str(key[1]), attempts=attempt)
            return
        delay = self.retry_backoff * (2 ** (attempt - 1))
        self.telemetry.events.warn(
            "core.recovery", "recovery.retry",
            "%s %s attempt %d/%d failed (%s); retrying in %.3fs"
            % (key[0], key[1], attempt, self.max_attempts, exc, delay),
            kind=key[0], target=str(key[1]), attempt=attempt)
        self.sim.schedule(delay, func, target, fault_time, attempt + 1)

    def _repaired(self, key: Tuple[str, str], services: List[str],
                  fault_kind: str, fault_time: float,
                  attempt: int, **extra) -> None:
        self._inflight.discard(key)
        mttr = self.sim.now - fault_time
        self._mttr(fault_kind).observe(mttr)
        self._m_repairs.inc()
        self.actions.append({
            "time": self.sim.now, "kind": key[0], "target": key[1],
            "services": list(services), "ok": True,
            "attempts": attempt, "mttr": mttr, **extra})
        for service in services:
            self._awaiting_flip.pop(service, None)
            self._recent_flips.pop(service, None)
            self._set_chain_state(service, CHAIN_HEALTHY)
        self.telemetry.events.info(
            "core.recovery", "recovery.repaired",
            "%s %s repaired in %.3fs" % (key[0], key[1], mttr),
            kind=key[0], target=str(key[1]), fault=fault_kind,
            mttr=mttr, **extra)

    def _abandon(self, key: Tuple[str, str]) -> None:
        """The fault resolved itself (or its target is gone)."""
        self._inflight.discard(key)

    # -- proactive protection ------------------------------------------------

    def _note_flip(self, event: Event) -> None:
        """A fast-failover group flipped buckets in the dataplane.

        Pure bookkeeping (we run inside the event log's dispatch):
        attribute the flip to its chain via the steering module's group
        index, then either close out a fault we were already tracking
        or buffer the flip for the link reaction that is still on its
        way.
        """
        if not self.protection:
            return
        to_bucket = event.tags.get("to_bucket")
        if to_bucket in (None, "", 0):
            # back on the primary (re-protection) or no live bucket at
            # all — neither is a completed failover
            return
        path_id = self.orchestrator.steering.path_for_group(
            event.tags.get("dpid"), event.tags.get("group"))
        if path_id is None:
            return
        service = path_id.split("/", 1)[0]
        fault_time = self._awaiting_flip.pop(service, None)
        if fault_time is not None:
            self._record_flip(service, event.time, fault_time)
        elif service not in self._recent_flips:
            self._recent_flips[service] = event.time

    def _record_flip(self, service: str, flip_time: float,
                     fault_time: float) -> None:
        mttr = flip_time - fault_time
        self._mttr("protection.flip").observe(mttr)
        self._m_flips.inc()
        self.actions.append({
            "time": flip_time, "kind": "flip", "target": service,
            "services": [service], "ok": True, "attempts": 0,
            "mttr": mttr})
        self._set_chain_state(service, CHAIN_HEALTHY)
        self.telemetry.events.info(
            "core.recovery", "recovery.flipped",
            "%s re-steered in the dataplane in %.6fs" % (service, mttr),
            service=service, mttr=mttr)

    def _reprotected(self, key: Tuple[str, str], services: List[str],
                     attempt: int, **extra) -> None:
        """Make-before-break re-provisioning finished: the chains kept
        forwarding on their backups the whole time, so no MTTR is
        observed — the flip actions already carry it."""
        self._inflight.discard(key)
        self._m_repairs.inc()
        for service in services:
            self._awaiting_flip.pop(service, None)
            self._recent_flips.pop(service, None)
            self._set_chain_state(service, CHAIN_HEALTHY)
        self.actions.append({
            "time": self.sim.now, "kind": "reprotect", "target": key[1],
            "services": list(services), "ok": True, "attempts": attempt,
            "mttr": None, **extra})
        self.telemetry.events.info(
            "core.recovery", "recovery.reprotected",
            "%s re-provisioned around %s (traffic stayed on backup)"
            % (", ".join(services) or "-", key[1]),
            kind=key[0], target=str(key[1]))

    # -- repairs ------------------------------------------------------------

    def _find_vnf(self, vnf_id: str):
        for name in sorted(self.orchestrator.deployed):
            chain = self.orchestrator.deployed[name]
            for vnf_name in sorted(chain.vnfs):
                if chain.vnfs[vnf_name].vnf_id == vnf_id:
                    return chain, vnf_name
        return None, None

    def _failover_candidates(self, exclude: str) -> List[str]:
        return [name for name in sorted(self.orchestrator.view.containers())
                if name != exclude
                and getattr(self.net.get(name), "up", True)]

    def _recover_vnf(self, vnf_id: str, fault_time: float,
                     attempt: int) -> None:
        key = ("vnf", vnf_id)
        chain, vnf_name = self._find_vnf(vnf_id)
        if chain is None or not chain.active:
            self._abandon(key)  # undeployed or already replaced
            return
        service = chain.sg.name
        self._set_chain_state(service, CHAIN_RECOVERING)
        deployed = chain.vnfs[vnf_name]
        container = self.net.get(deployed.container)
        self._m_attempts.inc()
        tracer = self.telemetry.tracer
        try:
            if getattr(container, "up", True):
                action = "restart"
                with tracer.span("recovery.restart", service=service,
                                 vnf=vnf_name, attempt=attempt):
                    self.orchestrator.restart_vnf(chain, vnf_name)
            else:
                action = "failover"
                with tracer.span("recovery.failover", service=service,
                                 vnf=vnf_name, attempt=attempt):
                    self._failover(chain, vnf_name, deployed.container)
        except Exception as exc:
            self._retry_or_fail(key, [service], exc, self._recover_vnf,
                                vnf_id, fault_time, attempt)
            return
        self._repaired(key, [service], "vnf.crashed", fault_time,
                       attempt, action=action, vnf=vnf_name,
                       container=chain.vnfs[vnf_name].container)

    def _failover(self, chain, vnf_name: str, dead_container: str) -> None:
        last_error: Optional[Exception] = None
        for target in self._failover_candidates(dead_container):
            try:
                self.orchestrator.migrate_vnf(chain, vnf_name, target,
                                              force=True)
                return
            except Exception as exc:
                last_error = exc
        raise last_error or OrchestratorError(
            "no container can host %s/%s" % (chain.sg.name, vnf_name))

    def _recover_link(self, link_name: str, fault_time: float,
                      attempt: int) -> None:
        key = ("link", link_name)
        try:
            link = self.net.find_link(link_name)
        except Exception:
            self._abandon(key)
            return
        if link.up:
            # the flap healed before we reacted; chains marked
            # recovering by an earlier attempt are served again
            self._clear_stranded_over_edge(link.intf1.node.name,
                                           link.intf2.node.name,
                                           (CHAIN_RECOVERING,))
            self._abandon(key)
            return
        node1 = link.intf1.node.name
        node2 = link.intf2.node.name
        self._repair_edge(key, node1, node2, fault_time, attempt,
                          self._recover_link, link_name)

    def _recover_edge(self, nodes: Tuple[str, str], fault_time: float,
                      attempt: int) -> None:
        """Discovery-detected dead inter-switch edge (no netem event)."""
        node1, node2 = nodes
        key = ("edge", "%s--%s" % tuple(sorted(nodes)))
        self._repair_edge(key, node1, node2, fault_time, attempt,
                          self._recover_edge, nodes)

    def _repair_edge(self, key: Tuple[str, str], node1: str, node2: str,
                     fault_time: float, attempt: int, retry_func,
                     retry_target) -> None:
        view = self.orchestrator.view
        try:
            view.set_link_up(node1, node2, False)
        except ValueError:
            self._abandon(key)  # outside the resource graph (mgmt link)
            return
        affected = self.orchestrator.chains_over_edge(node1, node2)
        for service in affected:
            self._set_chain_state(service, CHAIN_RECOVERING)
        protected: List[str] = []
        if self.protection and attempt == 1:
            protected_services = {
                path_id.split("/", 1)[0] for path_id
                in self.orchestrator.steering.protected_paths()}
            for service in affected:
                if service not in protected_services:
                    continue
                protected.append(service)
                flip_time = self._recent_flips.pop(service, None)
                if flip_time is not None and flip_time >= fault_time:
                    # the dataplane already repaired this one; account
                    # the real fault-to-first-backup-packet MTTR
                    self._record_flip(service, flip_time, fault_time)
                else:
                    # no traffic has probed the group yet — the flip
                    # (if one comes) closes out against this fault
                    self._awaiting_flip[service] = fault_time
        self._m_attempts.inc()
        try:
            with self.telemetry.tracer.span("recovery.reroute",
                                            edge="%s--%s" % (node1, node2),
                                            attempt=attempt):
                rerouted = self.orchestrator.reroute_chains_for_edge(
                    node1, node2)
        except Exception as exc:
            self._retry_or_fail(key, affected, exc, retry_func,
                                retry_target, fault_time, attempt)
            return
        services = sorted(set(rerouted) | set(affected))
        if services and set(services) <= set(protected):
            # every affected chain was riding its backup: this reroute
            # never ended an outage, it renewed the protection
            self._reprotected(key, services, attempt,
                              edge="%s--%s" % (node1, node2),
                              rerouted=len(rerouted))
            return
        self._repaired(key, services,
                       "link.down", fault_time, attempt,
                       edge="%s--%s" % (node1, node2),
                       rerouted=len(rerouted))

    def _note_link_up(self, link_name: str) -> None:
        try:
            link = self.net.find_link(link_name)
        except Exception:
            return
        node1 = link.intf1.node.name
        node2 = link.intf2.node.name
        # parallel trunks collapse into one view edge: only mark it up
        # again when every member link is back
        if any(not other.up
               for other in self.net.links_between(node1, node2)):
            return
        try:
            self.orchestrator.view.set_link_up(node1, node2, True)
        except ValueError:
            return
        # a failed reroute leaves the original steering installed, so
        # chains stranded by this edge carry traffic again the moment
        # it returns — reflect that in their state
        self._clear_stranded_over_edge(node1, node2,
                                       (CHAIN_RECOVERING, CHAIN_FAILED))

    def _clear_stranded_over_edge(self, node1: str, node2: str,
                                  states: Tuple[int, ...]) -> None:
        for service in self.orchestrator.chains_over_edge(node1, node2):
            if self.chain_state.get(service) in states:
                self._set_chain_state(service, CHAIN_HEALTHY)

    def _reap_zombies(self, container_name: str, fault_time: float,
                      attempt: int) -> None:
        key = ("reap", container_name)
        try:
            container = self.net.get(container_name)
        except Exception:
            self._abandon(key)
            return
        if not getattr(container, "up", True):
            self._abandon(key)  # went down again; the next up re-arms
            return
        live_ids = set()
        for chain in self.orchestrator.deployed.values():
            for deployed in chain.vnfs.values():
                live_ids.add(deployed.vnf_id)
        zombies = [vnf_id for vnf_id, process
                   in sorted(container.vnfs.items())
                   if process.status == VNF_FAILED
                   and vnf_id not in live_ids]
        if not zombies:
            self._abandon(key)
            return
        self._m_attempts.inc()
        try:
            from repro.netconf.vnf_yang import VNF_NS
            client = self.orchestrator.netconf_client(container_name)
            for vnf_id in zombies:
                client.rpc("stopVNF", VNF_NS,
                           {"id": vnf_id}).result(self.sim)
        except Exception as exc:
            self._retry_or_fail(key, [], exc, self._reap_zombies,
                                container_name, fault_time, attempt)
            return
        self._repaired(key, [], "container.down", fault_time, attempt,
                       reaped=len(zombies), container=container_name)

    def __repr__(self) -> str:
        return "RecoveryManager(%d repairs, %d pending, %s)" % (
            len([a for a in self.actions if a.get("ok")]),
            len(self._inflight),
            "enabled" if self.enabled else "disabled")
