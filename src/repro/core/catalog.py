"""The VNF catalog: named, parameterized Click configurations.

"ESCAPE also contains a VNF catalog, which is a built-in set of useful
VNFs implemented in Click."  Every entry renders to a complete Click
config with ``FromDevice(in0) ... ToDevice(out0)`` splices and standard
``cnt_in``/``cnt_out`` counters (the handlers the monitor reads), so
any catalog VNF drops into a chain as a bump in the wire.
"""

import re
from typing import Dict, List, Optional


class CatalogError(Exception):
    pass


class CatalogEntry:
    """One VNF type.

    ``template`` is a Click config with ``{param}`` placeholders;
    ``defaults`` supplies optional parameter values; ``devices`` lists
    the virtual interfaces the rendered config splices to;
    ``monitor_handlers`` names the handler paths worth watching.
    """

    def __init__(self, name: str, description: str, template: str,
                 devices: Optional[List[str]] = None,
                 defaults: Optional[Dict[str, str]] = None,
                 cpu: float = 0.5, mem: float = 128.0,
                 monitor_handlers: Optional[List[str]] = None):
        self.name = name
        self.description = description
        self.template = template
        self.devices = list(devices or ["in0", "out0"])
        self.defaults = dict(defaults or {})
        self.cpu = cpu
        self.mem = mem
        self.monitor_handlers = list(monitor_handlers
                                     or ["cnt_in.count", "cnt_out.count"])

    def parameters(self) -> List[str]:
        """Placeholder names appearing in the template."""
        return sorted(set(re.findall(r"\{(\w+)\}", self.template)))

    def render(self, params: Optional[Dict[str, str]] = None) -> str:
        """Fill the template; missing parameters raise CatalogError."""
        values = dict(self.defaults)
        values.update(params or {})
        missing = [name for name in self.parameters()
                   if name not in values]
        if missing:
            raise CatalogError("VNF %r needs parameters: %s"
                               % (self.name, ", ".join(missing)))
        return self.template.format(**values)

    def __repr__(self) -> str:
        return "CatalogEntry(%s)" % self.name


class VNFCatalog:
    """Named collection of catalog entries."""

    def __init__(self):
        self._entries: Dict[str, CatalogEntry] = {}

    def register(self, entry: CatalogEntry) -> CatalogEntry:
        if entry.name in self._entries:
            raise CatalogError("VNF type %r already in catalog"
                               % entry.name)
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> CatalogEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise CatalogError("no VNF type %r in catalog (have: %s)"
                               % (name, ", ".join(sorted(self._entries))))
        return entry

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "VNFCatalog(%s)" % ", ".join(self.names())


def default_catalog() -> VNFCatalog:
    """The built-in VNF set the paper's demo picks from."""
    catalog = VNFCatalog()

    catalog.register(CatalogEntry(
        "forwarder",
        "Transparent L2 forwarder (the simplest bump in the wire).",
        "FromDevice(in0) -> cnt_in :: Counter"
        " -> cnt_out :: Counter -> ToDevice(out0);",
        cpu=0.1, mem=32.0))

    catalog.register(CatalogEntry(
        "forwarder_bidir",
        "Bidirectional transparent forwarder: traffic entering either "
        "device leaves the other, so chains built from it can carry "
        "reply traffic in reverse (return_path='chain').",
        "FromDevice(in0) -> cnt_in :: Counter -> ToDevice(out0);"
        " FromDevice(out0) -> cnt_rev :: Counter -> ToDevice(in0);",
        cpu=0.15, mem=48.0,
        monitor_handlers=["cnt_in.count", "cnt_rev.count"]))

    catalog.register(CatalogEntry(
        "firewall",
        "Stateless IP firewall; {rules} is an IPFilter rule list.",
        "FromDevice(in0) -> cnt_in :: Counter"
        " -> fw :: IPFilter({rules})"
        " -> cnt_out :: Counter -> ToDevice(out0);",
        defaults={"rules": "allow all"},
        cpu=0.5, mem=128.0,
        monitor_handlers=["cnt_in.count", "cnt_out.count",
                          "fw.passed", "fw.dropped"]))

    catalog.register(CatalogEntry(
        "nat",
        "Source NAT to {nat_ip} (bidirectional: in0/out0 outbound, "
        "in1/out1 inbound).",
        "FromDevice(in0) -> cnt_in :: Counter"
        " -> [0]rw :: IPRewriter({nat_ip});"
        " rw[0] -> cnt_out :: Counter -> ToDevice(out0);"
        " FromDevice(in1) -> cnt_rin :: Counter -> [1]rw;"
        " rw[1] -> cnt_rout :: Counter -> ToDevice(out1);",
        devices=["in0", "out0", "in1", "out1"],
        cpu=0.7, mem=256.0,
        monitor_handlers=["cnt_in.count", "cnt_out.count", "rw.mappings"]))

    catalog.register(CatalogEntry(
        "dpi",
        "Signature matcher; {signatures} is a comma-separated pattern "
        "list.  Matches are counted and dropped, clean traffic passes.",
        "FromDevice(in0) -> cnt_in :: Counter"
        " -> dpi :: StringMatcher({signatures});"
        " dpi[0] -> matched :: Counter -> Discard;"
        " dpi[1] -> cnt_out :: Counter -> ToDevice(out0);",
        defaults={"signatures": "\"EVIL\""},
        cpu=1.0, mem=512.0,
        monitor_handlers=["cnt_in.count", "cnt_out.count",
                          "matched.count", "dpi.total"]))

    catalog.register(CatalogEntry(
        "rate_limiter",
        "Packet-rate limiter at {rate} packets/second.",
        "FromDevice(in0) -> cnt_in :: Counter -> q :: Queue(200)"
        " -> sh :: Shaper({rate}) -> uq :: Unqueue"
        " -> cnt_out :: Counter -> ToDevice(out0);",
        defaults={"rate": "1000"},
        cpu=0.3, mem=64.0,
        monitor_handlers=["cnt_in.count", "cnt_out.count", "q.drops",
                          "sh.rate"]))

    catalog.register(CatalogEntry(
        "delay",
        "Fixed {delay}-second latency stage (WAN emulator).",
        "FromDevice(in0) -> cnt_in :: Counter"
        " -> dq :: DelayQueue({delay}, 2000) -> uq :: Unqueue"
        " -> cnt_out :: Counter -> ToDevice(out0);",
        defaults={"delay": "0.01"},
        cpu=0.2, mem=64.0))

    catalog.register(CatalogEntry(
        "monitor",
        "Pure measurement tap: per-protocol counters.",
        "FromDevice(in0) -> cnt_in :: Counter"
        " -> cl :: IPClassifier(tcp, udp, icmp, -);"
        " cl[0] -> tcp :: Counter -> j :: Tee;"
        " cl[1] -> udp :: Counter -> j;"
        " cl[2] -> icmp :: Counter -> j;"
        " cl[3] -> other :: Counter -> j;"
        " j -> cnt_out :: Counter -> ToDevice(out0);",
        cpu=0.2, mem=64.0,
        monitor_handlers=["cnt_in.count", "tcp.count", "udp.count",
                          "icmp.count", "other.count"]))

    catalog.register(CatalogEntry(
        "load_balancer",
        "Round-robin spread over two output devices.",
        "FromDevice(in0) -> cnt_in :: Counter -> rr :: RoundRobinSwitch;"
        " rr[0] -> cnt_a :: Counter -> ToDevice(out0);"
        " rr[1] -> cnt_b :: Counter -> ToDevice(out1);",
        devices=["in0", "out0", "out1"],
        cpu=0.4, mem=128.0,
        monitor_handlers=["cnt_in.count", "cnt_a.count", "cnt_b.count"]))

    return catalog
