"""Service-graph and resource-view models.

The service graph (the paper's SG; UNIFY later called it the NFFG) is
the abstract description the service layer produces: service access
points (SAPs), VNF instances chosen from the catalog, directed SG links
forming chains/branches, and end-to-end requirements (delay, bandwidth)
on SAP-to-SAP subpaths.

The resource view is the orchestrator's global picture of the
infrastructure: container nodes with CPU/memory headroom, switch nodes,
SAP attachment points, and substrate links with delay and residual
bandwidth.  It is a networkx graph under the hood, which the mapping
algorithms traverse.
"""

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


class SAP:
    """Service access point — where chain traffic enters/leaves."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return "SAP(%s)" % self.name


class VNFNode:
    """One VNF instance in the graph.

    ``vnf_type`` names a catalog entry; ``params`` fill its Click
    template; ``cpu``/``mem`` override the catalog's default demand.
    """

    def __init__(self, name: str, vnf_type: str,
                 params: Optional[Dict[str, str]] = None,
                 cpu: Optional[float] = None, mem: Optional[float] = None):
        self.name = name
        self.vnf_type = vnf_type
        self.params = dict(params or {})
        self.cpu = cpu
        self.mem = mem

    def __repr__(self) -> str:
        return "VNFNode(%s: %s)" % (self.name, self.vnf_type)


class SGLink:
    """Directed logical link between two SG nodes (SAP or VNF names)."""

    def __init__(self, src: str, dst: str, bandwidth: float = 0.0):
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth  # bits/s the chain reserves; 0 = none

    def __repr__(self) -> str:
        return "SGLink(%s -> %s)" % (self.src, self.dst)


class Requirement:
    """End-to-end requirement over the SG path from ``src`` to ``dst``."""

    def __init__(self, src: str, dst: str,
                 max_delay: Optional[float] = None,
                 min_bandwidth: Optional[float] = None):
        self.src = src
        self.dst = dst
        self.max_delay = max_delay          # seconds
        self.min_bandwidth = min_bandwidth  # bits/s

    def __repr__(self) -> str:
        return "Requirement(%s->%s, delay<=%s, bw>=%s)" % (
            self.src, self.dst, self.max_delay, self.min_bandwidth)


class ServiceGraph:
    """SAPs + VNFs + SG links + requirements."""

    def __init__(self, name: str = "sg"):
        self.name = name
        self.saps: Dict[str, SAP] = {}
        self.vnfs: Dict[str, VNFNode] = {}
        self.links: List[SGLink] = []
        self.requirements: List[Requirement] = []

    # -- construction ------------------------------------------------------

    def add_sap(self, name: str) -> SAP:
        if name in self.saps or name in self.vnfs:
            raise ValueError("SG node %r already exists" % name)
        sap = SAP(name)
        self.saps[name] = sap
        return sap

    def add_vnf(self, name: str, vnf_type: str,
                params: Optional[Dict[str, str]] = None,
                cpu: Optional[float] = None,
                mem: Optional[float] = None) -> VNFNode:
        if name in self.saps or name in self.vnfs:
            raise ValueError("SG node %r already exists" % name)
        vnf = VNFNode(name, vnf_type, params, cpu, mem)
        self.vnfs[name] = vnf
        return vnf

    def add_link(self, src: str, dst: str,
                 bandwidth: float = 0.0) -> SGLink:
        for name in (src, dst):
            if name not in self.saps and name not in self.vnfs:
                raise ValueError("SG link references unknown node %r" % name)
        link = SGLink(src, dst, bandwidth)
        self.links.append(link)
        return link

    def add_chain(self, nodes: Iterable[str],
                  bandwidth: float = 0.0) -> List[SGLink]:
        """Convenience: link consecutive node names."""
        nodes = list(nodes)
        return [self.add_link(a, b, bandwidth)
                for a, b in zip(nodes, nodes[1:])]

    def add_requirement(self, src: str, dst: str,
                        max_delay: Optional[float] = None,
                        min_bandwidth: Optional[float] = None
                        ) -> Requirement:
        requirement = Requirement(src, dst, max_delay, min_bandwidth)
        self.requirements.append(requirement)
        return requirement

    # -- queries -----------------------------------------------------------

    def node_names(self) -> List[str]:
        return list(self.saps) + list(self.vnfs)

    def successors(self, name: str) -> List[str]:
        return [link.dst for link in self.links if link.src == name]

    def chain_from(self, sap_name: str) -> List[str]:
        """Follow unique successors from a SAP (linear chains only)."""
        if sap_name not in self.saps:
            raise ValueError("%r is not a SAP" % sap_name)
        chain = [sap_name]
        current = sap_name
        visited = {sap_name}
        while True:
            nexts = self.successors(current)
            if not nexts:
                return chain
            if len(nexts) > 1:
                raise ValueError("node %r branches; chain_from only walks "
                                 "linear chains" % current)
            current = nexts[0]
            if current in visited:
                raise ValueError("SG contains a cycle at %r" % current)
            visited.add(current)
            chain.append(current)

    def validate(self) -> None:
        """Structural sanity: links resolve, SAPs are endpoints only."""
        for link in self.links:
            for name in (link.src, link.dst):
                if name not in self.saps and name not in self.vnfs:
                    raise ValueError("dangling SG link node %r" % name)
        for requirement in self.requirements:
            for name in (requirement.src, requirement.dst):
                if name not in self.saps:
                    raise ValueError(
                        "requirement endpoint %r is not a SAP" % name)

    def __repr__(self) -> str:
        return "ServiceGraph(%s: %d SAPs, %d VNFs, %d links)" % (
            self.name, len(self.saps), len(self.vnfs), len(self.links))


# -- resource view ----------------------------------------------------------


class ResourceView:
    """The orchestrator's global network + resource picture.

    Node kinds: ``sap`` (with its attachment switch), ``switch``, and
    ``container`` (with cpu/mem headroom).  Edges carry delay (seconds)
    and bandwidth capacity/reservations (bits/s).
    """

    SAP = "sap"
    SWITCH = "switch"
    CONTAINER = "container"

    def __init__(self):
        self.graph = nx.Graph()
        # substrate edges currently marked down (frozenset node pairs);
        # kept separately so the fault-free path pays one falsy check
        self._down_edges: set = set()

    # -- construction -------------------------------------------------------

    def add_sap(self, name: str) -> None:
        self.graph.add_node(name, kind=self.SAP)

    def add_switch(self, name: str, dpid: Optional[int] = None) -> None:
        self.graph.add_node(name, kind=self.SWITCH, dpid=dpid)

    def add_container(self, name: str, cpu: float, mem: float,
                      ports: int = 8) -> None:
        self.graph.add_node(name, kind=self.CONTAINER, cpu=cpu, mem=mem,
                            cpu_used=0.0, mem_used=0.0,
                            ports=ports, ports_used=0)

    def add_link(self, node1: str, node2: str, delay: float = 0.0,
                 bandwidth: Optional[float] = None) -> None:
        self.graph.add_edge(node1, node2, delay=delay,
                            bandwidth=bandwidth, bw_used=0.0)

    # -- substrate link state -------------------------------------------------

    def set_link_up(self, node1: str, node2: str, up: bool) -> None:
        """Mark a substrate edge (un)usable for routing.  Down edges
        are excluded from :meth:`shortest_path` so re-routes steer
        around them; existing reservations are untouched."""
        if not self.graph.has_edge(node1, node2):
            raise ValueError("no substrate link %s--%s" % (node1, node2))
        key = frozenset((node1, node2))
        if up:
            self._down_edges.discard(key)
        else:
            self._down_edges.add(key)

    def link_is_up(self, node1: str, node2: str) -> bool:
        return frozenset((node1, node2)) not in self._down_edges

    def down_links(self) -> List[tuple]:
        return sorted(tuple(sorted(pair)) for pair in self._down_edges)

    # -- resource bookkeeping -------------------------------------------------

    def kind(self, name: str) -> str:
        return self.graph.nodes[name]["kind"]

    def containers(self) -> List[str]:
        return [name for name, data in self.graph.nodes(data=True)
                if data["kind"] == self.CONTAINER]

    def switches(self) -> List[str]:
        return [name for name, data in self.graph.nodes(data=True)
                if data["kind"] == self.SWITCH]

    def saps(self) -> List[str]:
        return [name for name, data in self.graph.nodes(data=True)
                if data["kind"] == self.SAP]

    def container_fits(self, name: str, cpu: float, mem: float,
                       ports: int = 0) -> bool:
        data = self.graph.nodes[name]
        return (data["cpu"] - data["cpu_used"] + 1e-9 >= cpu
                and data["mem"] - data["mem_used"] + 1e-9 >= mem
                and data["ports"] - data["ports_used"] >= ports)

    def reserve_container(self, name: str, cpu: float, mem: float,
                          ports: int = 0) -> None:
        data = self.graph.nodes[name]
        if not self.container_fits(name, cpu, mem, ports):
            raise ValueError(
                "container %r cannot fit cpu=%.2f mem=%.0f ports=%d"
                % (name, cpu, mem, ports))
        data["cpu_used"] += cpu
        data["mem_used"] += mem
        data["ports_used"] += ports

    def release_container(self, name: str, cpu: float, mem: float,
                          ports: int = 0) -> None:
        data = self.graph.nodes[name]
        data["cpu_used"] = max(0.0, data["cpu_used"] - cpu)
        data["mem_used"] = max(0.0, data["mem_used"] - mem)
        data["ports_used"] = max(0, data["ports_used"] - ports)

    def link_free_bandwidth(self, node1: str, node2: str) -> float:
        data = self.graph.edges[node1, node2]
        if data["bandwidth"] is None:
            return float("inf")
        return data["bandwidth"] - data["bw_used"]

    def reserve_path_bandwidth(self, path: List[str],
                               bandwidth: float) -> None:
        if bandwidth <= 0:
            return
        for node1, node2 in zip(path, path[1:]):
            if self.link_free_bandwidth(node1, node2) + 1e-9 < bandwidth:
                raise ValueError("no %.0f bit/s left on %s--%s"
                                 % (bandwidth, node1, node2))
        for node1, node2 in zip(path, path[1:]):
            self.graph.edges[node1, node2]["bw_used"] += bandwidth

    def release_path_bandwidth(self, path: List[str],
                               bandwidth: float) -> None:
        if bandwidth <= 0:
            return
        for node1, node2 in zip(path, path[1:]):
            data = self.graph.edges[node1, node2]
            data["bw_used"] = max(0.0, data["bw_used"] - bandwidth)

    def path_delay(self, path: List[str]) -> float:
        return sum(self.graph.edges[a, b]["delay"]
                   for a, b in zip(path, path[1:]))

    def shortest_path(self, src: str, dst: str,
                      min_bandwidth: float = 0.0) -> Optional[List[str]]:
        """Delay-shortest path with at least ``min_bandwidth`` residual
        on every hop; None when disconnected under that constraint.

        ``src == dst`` (two VNFs in one container) returns a hairpin
        through the cheapest adjacent switch — the traffic leaves on one
        interface and re-enters on another, crossing that link twice.
        """
        if src == dst:
            return self._hairpin(src, min_bandwidth)
        if min_bandwidth > 0 or self._down_edges:
            usable = [(a, b) for a, b, data in self.graph.edges(data=True)
                      if (frozenset((a, b)) not in self._down_edges)
                      and (min_bandwidth <= 0
                           or data["bandwidth"] is None
                           or data["bandwidth"] - data["bw_used"]
                           >= min_bandwidth - 1e-9)]
            graph = self.graph.edge_subgraph(usable)
            if src not in graph or dst not in graph:
                return None
        else:
            graph = self.graph
        try:
            return nx.shortest_path(graph, src, dst, weight="delay")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def _hairpin(self, node: str,
                 min_bandwidth: float = 0.0) -> Optional[List[str]]:
        best = None
        best_delay = None
        for neighbor in self.graph.neighbors(node):
            if self.kind(neighbor) != self.SWITCH:
                continue
            if frozenset((node, neighbor)) in self._down_edges:
                continue
            # the hairpin crosses the link twice, so twice the bandwidth
            # must be free on it
            if min_bandwidth > 0 and self.link_free_bandwidth(
                    node, neighbor) < 2 * min_bandwidth - 1e-9:
                continue
            delay = self.graph.edges[node, neighbor]["delay"]
            if best_delay is None or delay < best_delay:
                best, best_delay = neighbor, delay
        if best is None:
            return None
        return [node, best, node]

    def copy(self) -> "ResourceView":
        clone = ResourceView()
        clone.graph = self.graph.copy()
        return clone

    def snapshot(self) -> Dict[str, dict]:
        """Per-container utilization, for dashboards and tests."""
        return {name: dict(self.graph.nodes[name])
                for name in self.containers()}

    def __repr__(self) -> str:
        return "ResourceView(%d nodes, %d links)" % (
            self.graph.number_of_nodes(), self.graph.number_of_edges())
