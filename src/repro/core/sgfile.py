"""JSON descriptions of topologies and service graphs.

The paper's MiniEdit-based GUI produced two artifacts: a test topology
(VNF containers + the rest of the network) and an abstract service
graph with requirements.  This module is that GUI's file format — the
editors' output without the editor.

Topology example::

    {"nodes": [{"name": "h1", "role": "host"},
               {"name": "s1", "role": "switch"},
               {"name": "nc1", "role": "vnf_container",
                "cpu": 4, "mem": 2048}],
     "links": [{"from": "h1", "to": "s1",
                "bandwidth": 10e6, "delay": 0.001}]}

Service graph example::

    {"name": "web-chain",
     "saps": ["h1", "h2"],
     "vnfs": [{"name": "fw", "type": "firewall",
               "params": {"rules": "allow tcp dst port 80, drop all"}}],
     "chain": ["h1", "fw", "h2"],
     "requirements": [{"from": "h1", "to": "h2", "max_delay": 0.05}]}
"""

import json
from typing import Union

from repro.core.nffg import ServiceGraph
from repro.netem.topo import Topo


def load_topology(source: Union[str, dict]) -> Topo:
    """Build a Topo from a JSON string / parsed dict."""
    data = json.loads(source) if isinstance(source, str) else source
    topo = Topo()
    for node in data.get("nodes", []):
        role = node.get("role", "host")
        name = node["name"]
        if role == "host":
            topo.add_host(name, ip=node.get("ip"))
        elif role == "switch":
            topo.add_switch(name, dpid=node.get("dpid"))
        elif role == "vnf_container":
            topo.add_vnf_container(name, cpu=node.get("cpu", 4.0),
                                   mem=node.get("mem", 4096.0),
                                   isolation=node.get("isolation",
                                                      "cgroup"))
        else:
            raise ValueError("unknown node role %r" % role)
    for link in data.get("links", []):
        topo.add_link(link["from"], link["to"],
                      bandwidth=link.get("bandwidth"),
                      delay=link.get("delay", 0.0),
                      loss=link.get("loss", 0.0))
    return topo


def save_topology(topo: Topo) -> str:
    """Serialize a Topo back to its JSON description."""
    nodes = []
    for name, (role, opts) in topo.nodes.items():
        node = {"name": name, "role": role}
        for key in ("ip", "dpid", "cpu", "mem", "isolation"):
            if opts.get(key) is not None:
                node[key] = opts[key]
        nodes.append(node)
    links = []
    for node1, node2, opts in topo.links:
        link = {"from": node1, "to": node2}
        if opts.get("bandwidth") is not None:
            link["bandwidth"] = opts["bandwidth"]
        if opts.get("delay"):
            link["delay"] = opts["delay"]
        if opts.get("loss"):
            link["loss"] = opts["loss"]
        links.append(link)
    return json.dumps({"nodes": nodes, "links": links}, indent=2)


def load_service_graph(source: Union[str, dict]) -> ServiceGraph:
    """Build a ServiceGraph from a JSON string / parsed dict."""
    data = json.loads(source) if isinstance(source, str) else source
    sg = ServiceGraph(data.get("name", "sg"))
    for sap in data.get("saps", []):
        sg.add_sap(sap)
    for vnf in data.get("vnfs", []):
        sg.add_vnf(vnf["name"], vnf["type"],
                   params=vnf.get("params"),
                   cpu=vnf.get("cpu"), mem=vnf.get("mem"))
    if "chain" in data:
        sg.add_chain(data["chain"], bandwidth=data.get("bandwidth", 0.0))
    for link in data.get("links", []):
        sg.add_link(link["from"], link["to"],
                    bandwidth=link.get("bandwidth", 0.0))
    for requirement in data.get("requirements", []):
        sg.add_requirement(requirement["from"], requirement["to"],
                           max_delay=requirement.get("max_delay"),
                           min_bandwidth=requirement.get("min_bandwidth"))
    sg.validate()
    return sg


def save_service_graph(sg: ServiceGraph) -> str:
    """Serialize a ServiceGraph back to its JSON description."""
    vnfs = []
    for vnf in sg.vnfs.values():
        entry = {"name": vnf.name, "type": vnf.vnf_type}
        if vnf.params:
            entry["params"] = vnf.params
        if vnf.cpu is not None:
            entry["cpu"] = vnf.cpu
        if vnf.mem is not None:
            entry["mem"] = vnf.mem
        vnfs.append(entry)
    links = [{"from": link.src, "to": link.dst,
              **({"bandwidth": link.bandwidth} if link.bandwidth else {})}
             for link in sg.links]
    requirements = []
    for requirement in sg.requirements:
        entry = {"from": requirement.src, "to": requirement.dst}
        if requirement.max_delay is not None:
            entry["max_delay"] = requirement.max_delay
        if requirement.min_bandwidth is not None:
            entry["min_bandwidth"] = requirement.min_bandwidth
        requirements.append(entry)
    return json.dumps({"name": sg.name, "saps": list(sg.saps),
                       "vnfs": vnfs, "links": links,
                       "requirements": requirements}, indent=2)
