"""The Orchestrator: from mapped service graphs to running chains.

Deployment follows the paper's flow exactly:

1. a :class:`~repro.core.mapping.Mapper` embeds the SG into the
   resource view,
2. each VNF is started in its assigned container through the NETCONF
   client (``startVNF``) and its virtual devices are spliced to
   switch-facing interfaces (``connectVNF``),
3. the traffic-steering module installs the OpenFlow entries that pin
   the chain's flows along the mapped substrate paths,
4. a :class:`DeployedChain` handle exposes status, Clicky handler reads
   and teardown.
"""

from typing import Dict, List, Optional, Tuple

from repro.core.catalog import VNFCatalog
from repro.core.mapping import (Mapper, Mapping, MappingError,
                                compute_backup_paths,
                                compute_backup_placement)
from repro.core.nffg import ResourceView, ServiceGraph
from repro.netconf import NetconfClient
from repro.netconf.vnf_yang import VNF_NS
from repro.netconf.messages import qn
from repro.netem import Network, VNFContainer
from repro.netem.node import Host, Switch
from repro.openflow import Match
from repro.packet import Ethernet
from repro.pox.steering import MODE_EXACT, PathHop, TrafficSteering
from repro.telemetry import current as current_telemetry


class OrchestratorError(Exception):
    pass


def build_resource_view(net: Network) -> ResourceView:
    """Derive the orchestrator's global view from the emulated network.

    The view's graph is simple: parallel links between the same node
    pair collapse into one edge (keeping the last link's delay/
    bandwidth).  Container port accounting still counts every physical
    interface, so multi-homed containers lose no placement capacity —
    only per-link bandwidth of parallel trunks is approximated.
    """
    view = ResourceView()
    for node in net.nodes.values():
        if isinstance(node, Host):
            view.add_sap(node.name)
        elif isinstance(node, Switch):
            view.add_switch(node.name, node.dpid)
        elif isinstance(node, VNFContainer):
            view.add_container(node.name, node.budget.cpu_capacity,
                               node.budget.mem_capacity,
                               ports=len(node.free_interfaces()))
    for link in net.links:
        name1 = link.intf1.node.name
        name2 = link.intf2.node.name
        # links to nodes outside the data plane (e.g. the management
        # hub) are not part of the orchestrator's resource graph
        if name1 not in view.graph or name2 not in view.graph:
            continue
        view.add_link(name1, name2, delay=link.delay,
                      bandwidth=link.bandwidth)
    return view


class _PortMap:
    """Resolve switch port numbers from the emulated topology."""

    def __init__(self, net: Network):
        self.net = net
        # (switch name, peer node name) -> [(port_no, peer intf name)]
        self._ports: Dict[Tuple[str, str], List[Tuple[int, str]]] = {}
        for link in net.links:
            self._note(link.intf1, link.intf2)
            self._note(link.intf2, link.intf1)

    def _note(self, intf, peer_intf) -> None:
        node = intf.node
        if not isinstance(node, Switch):
            return
        key = (node.name, peer_intf.node.name)
        self._ports.setdefault(key, []).append(
            (node.port_number(intf), peer_intf.name))

    def port(self, switch_name: str, peer_name: str,
             peer_intf_name: Optional[str] = None) -> int:
        """Port on ``switch_name`` facing ``peer_name`` (optionally the
        specific peer interface)."""
        candidates = self._ports.get((switch_name, peer_name), [])
        if not candidates:
            raise OrchestratorError("no link between switch %r and %r"
                                    % (switch_name, peer_name))
        if peer_intf_name is None:
            return candidates[0][0]
        for port_no, intf_name in candidates:
            if intf_name == peer_intf_name:
                return port_no
        raise OrchestratorError(
            "switch %r has no port facing %s:%s"
            % (switch_name, peer_name, peer_intf_name))

    def peer_switch_of(self, container_name: str,
                       intf_name: str) -> Optional[str]:
        """Which switch a container interface links to, if any."""
        for (switch_name, peer_name), entries in self._ports.items():
            if peer_name != container_name:
                continue
            for _port, peer_intf in entries:
                if peer_intf == intf_name:
                    return switch_name
        return None


class DeployedVNF:
    """Bookkeeping for one started VNF."""

    def __init__(self, vnf_name: str, vnf_id: str, container: str,
                 device_interfaces: Dict[str, str], cpu: float, mem: float):
        self.vnf_name = vnf_name
        self.vnf_id = vnf_id
        self.container = container
        self.device_interfaces = device_interfaces  # device -> intf name
        self.cpu = cpu
        self.mem = mem

    def __repr__(self) -> str:
        return "DeployedVNF(%s on %s)" % (self.vnf_name, self.container)


class DeployedChain:
    """Handle for a running service chain."""

    def __init__(self, orchestrator: "Orchestrator", sg: ServiceGraph,
                 mapping: Mapping, mapper: Mapper,
                 vnfs: Dict[str, DeployedVNF], path_ids: List[str],
                 segment_paths: Optional[Dict[tuple, str]] = None):
        self.orchestrator = orchestrator
        self.sg = sg
        self.mapping = mapping
        self.mapper = mapper
        self.vnfs = vnfs
        self.path_ids = path_ids
        # (link.src, link.dst) -> steering path id, for migration
        self.segment_paths = dict(segment_paths or {})
        # return-path bookkeeping, filled in by deploy(): mode, the
        # steering ids and (direct mode) the substrate node path — so
        # link-down recovery can detect and re-install reply steering
        self.return_mode = "none"
        self.return_path_ids: List[str] = []
        self.return_substrate_path: Optional[List[str]] = None
        self.active = True

    def migrate(self, vnf_name: str, target_container: str) -> None:
        """Move one VNF to another container, rerouting its segments."""
        self.orchestrator.migrate_vnf(self, vnf_name, target_container)

    def read_handler(self, vnf_name: str, handler: str) -> str:
        """Read one Clicky handler of a chain VNF over NETCONF."""
        deployed = self._deployed(vnf_name)
        client = self.orchestrator.netconf_client(deployed.container)
        reply = client.rpc("getVNFInfo", VNF_NS,
                           {"id": deployed.vnf_id,
                            "handler": handler}).result(
            self.orchestrator.net.sim)
        value = reply.find(qn("value", VNF_NS))
        return value.text or "" if value is not None else ""

    def write_handler(self, vnf_name: str, handler: str,
                      value: str) -> None:
        deployed = self._deployed(vnf_name)
        client = self.orchestrator.netconf_client(deployed.container)
        client.rpc("writeVNFHandler", VNF_NS,
                   {"id": deployed.vnf_id, "handler": handler,
                    "value": value}).result(self.orchestrator.net.sim)

    def _deployed(self, vnf_name: str) -> DeployedVNF:
        deployed = self.vnfs.get(vnf_name)
        if deployed is None:
            raise OrchestratorError("chain has no VNF %r" % vnf_name)
        return deployed

    def undeploy(self) -> None:
        if not self.active:
            return
        self.orchestrator._undeploy(self)
        self.active = False

    def __repr__(self) -> str:
        return "DeployedChain(%s, %d VNFs, %s)" % (
            self.sg.name, len(self.vnfs),
            "active" if self.active else "torn down")


class Orchestrator:
    """Maps, deploys and tears down service graphs."""

    def __init__(self, net: Network, steering: TrafficSteering,
                 catalog: VNFCatalog,
                 netconf_clients: Dict[str, NetconfClient],
                 protection: bool = False):
        self.net = net
        self.steering = steering
        self.catalog = catalog
        self._clients = netconf_clients
        # proactive protection: precompute link-disjoint backup paths
        # at deploy time and install them behind fast-failover groups
        # (exact-match steering only — the VLAN ablation tags per path)
        self.protection = protection and steering.mode == MODE_EXACT
        if protection and not self.protection:
            current_telemetry().events.warn(
                "core.orchestrator", "protection.unavailable",
                "protection requires exact steering; disabled "
                "(mode=%s)" % steering.mode, mode=steering.mode)
        self.view = build_resource_view(net)
        self.ports = _PortMap(net)
        self.deployed: Dict[str, DeployedChain] = {}
        self._vnf_counter = 0
        self._path_counter = 0
        self.telemetry = current_telemetry()
        metrics = self.telemetry.metrics
        self._m_deploys = metrics.counter(
            "core.orchestrator.deploys", "chains deployed successfully")
        self._m_deploy_failures = metrics.counter(
            "core.orchestrator.deploy_failures",
            "deploy attempts that raised (mapping or realization)")
        self._m_migrations = metrics.counter(
            "core.orchestrator.migrations", "VNF migrations completed")
        self._m_restarts = metrics.counter(
            "core.orchestrator.restarts",
            "crashed VNF instances replaced in place")
        self._m_map_calls = metrics.counter(
            "core.mapping.map_calls", "mapper invocations")
        self._m_map_rejected = metrics.counter(
            "core.mapping.rejected", "mapper invocations raising "
            "MappingError")
        self._m_deploy_time = metrics.histogram(
            "core.orchestrator.deploy_time",
            "simulated seconds per successful deploy")
        self._m_protected_segments = metrics.counter(
            "core.orchestrator.protected_segments",
            "chain segments installed with a fast-failover backup")

    def netconf_client(self, container_name: str) -> NetconfClient:
        client = self._clients.get(container_name)
        if client is None:
            raise OrchestratorError("no NETCONF session to container %r"
                                    % container_name)
        return client

    # -- deployment -------------------------------------------------------

    def deploy(self, sg: ServiceGraph, mapper: Mapper,
               match: Optional[Match] = None,
               return_path: str = "direct") -> DeployedChain:
        """Map ``sg`` with ``mapper`` and realize it.

        ``match`` overrides the default chain flowspec (IP traffic from
        the source SAP's address to the sink SAP's); ``return_path`` is
        ``direct`` (steer replies along the shortest path, bypassing the
        chain), ``none``, or ``chain`` (reverse through the VNFs; the
        chain's VNFs must be bidirectional for this to carry traffic).
        """
        if sg.name in self.deployed:
            raise OrchestratorError("service %r already deployed" % sg.name)
        if return_path not in ("direct", "none", "chain"):
            raise OrchestratorError("bad return_path %r" % return_path)
        tracer = self.telemetry.tracer
        events = self.telemetry.events
        started_at = self.net.sim.now
        with tracer.span("orchestrator.deploy", service=sg.name,
                         mapper=mapper.name):
            self._m_map_calls.inc()
            with self.telemetry.profiler.profile("core.mapping.solve"), \
                    tracer.span("orchestrator.map", mapper=mapper.name):
                try:
                    mapping = mapper.map(sg, self.view)
                except MappingError as exc:
                    self._m_map_rejected.inc()
                    self._m_deploy_failures.inc()
                    events.error("core.orchestrator",
                                 "orchestrator.mapping_rejected",
                                 "%s: %s" % (sg.name, exc),
                                 service=sg.name, mapper=mapper.name)
                    raise
            if self.protection:
                with tracer.span("orchestrator.protect",
                                 service=sg.name):
                    compute_backup_paths(sg, mapping, self.view)
                    compute_backup_placement(sg, mapping, self.view,
                                             self.catalog)
            vnfs: Dict[str, DeployedVNF] = {}
            path_ids: List[str] = []
            segment_paths: Dict[tuple, str] = {}
            try:
                for vnf_name in sg.vnfs:
                    with tracer.span("orchestrator.start_vnf",
                                     vnf=vnf_name):
                        vnfs[vnf_name] = self._start_vnf(sg, mapping,
                                                         vnf_name)
                base_match = match if match is not None \
                    else self._default_match(sg)
                for link in sg.links:
                    with tracer.span("orchestrator.install_segment",
                                     segment="%s->%s" % (link.src,
                                                         link.dst)):
                        path_id = self._install_segment(
                            sg, mapping, vnfs, link, base_match)
                    path_ids.append(path_id)
                    segment_paths[(link.src, link.dst)] = path_id
                return_ids: List[str] = []
                return_substrate: Optional[List[str]] = None
                if return_path == "direct":
                    return_ids, return_substrate = \
                        self._install_return_path(sg, base_match)
                elif return_path == "chain":
                    return_ids = self._install_chain_return(
                        sg, mapping, vnfs, base_match)
                path_ids.extend(return_ids)
            except Exception as exc:
                self._m_deploy_failures.inc()
                events.error("core.orchestrator",
                             "orchestrator.deploy_failed",
                             "%s: %s" % (sg.name, exc), service=sg.name)
                self._rollback(sg, mapping, mapper, vnfs, path_ids)
                raise
        chain = DeployedChain(self, sg, mapping, mapper, vnfs, path_ids,
                              segment_paths)
        chain.base_match = base_match
        chain.return_mode = return_path
        chain.return_path_ids = return_ids
        chain.return_substrate_path = return_substrate
        self.deployed[sg.name] = chain
        self._m_deploys.inc()
        self._m_deploy_time.observe(self.net.sim.now - started_at)
        events.info("core.orchestrator", "orchestrator.deployed",
                    "%s placed %s" % (
                        sg.name,
                        ", ".join("%s->%s" % item for item in
                                  sorted(mapping.vnf_placement.items()))),
                    service=sg.name, mapper=mapper.name)
        return chain

    # -- VNF lifecycle over NETCONF -------------------------------------------

    def _start_vnf(self, sg: ServiceGraph, mapping: Mapping,
                   vnf_name: str) -> DeployedVNF:
        vnf = sg.vnfs[vnf_name]
        entry = self.catalog.get(vnf.vnf_type)
        container_name = mapping.vnf_placement[vnf_name]
        container = self.net.get(container_name)
        client = self.netconf_client(container_name)
        self._vnf_counter += 1
        vnf_id = "%s-%s-%d" % (sg.name, vnf_name, self._vnf_counter)
        cpu, mem = (vnf.cpu if vnf.cpu is not None else entry.cpu,
                    vnf.mem if vnf.mem is not None else entry.mem)
        config = entry.render(vnf.params)
        tracer = self.telemetry.tracer
        with tracer.span("netconf.rpc", op="startVNF",
                         container=container_name):
            client.rpc("startVNF", VNF_NS, {
                "id": vnf_id, "click-config": config,
                "devices": ",".join(entry.devices),
                "cpu": str(cpu), "mem": str(mem),
            }).result(self.net.sim)
        device_interfaces: Dict[str, str] = {}
        try:
            free = container.free_interfaces()
            for device in entry.devices:
                if not free:
                    raise OrchestratorError(
                        "container %r has no free interface for %s.%s"
                        % (container_name, vnf_name, device))
                intf_name = free.pop(0)
                with tracer.span("netconf.rpc", op="connectVNF",
                                 container=container_name):
                    client.rpc("connectVNF", VNF_NS, {
                        "id": vnf_id, "device": device,
                        "interface": intf_name,
                    }).result(self.net.sim)
                device_interfaces[device] = intf_name
        except Exception:
            # the VNF already runs: stop it so a failed deploy leaves
            # nothing behind (rollback only sees registered VNFs)
            try:
                client.rpc("stopVNF", VNF_NS,
                           {"id": vnf_id}).result(self.net.sim)
            except Exception:
                pass
            raise
        return DeployedVNF(vnf_name, vnf_id, container_name,
                           device_interfaces, cpu, mem)

    # -- steering -------------------------------------------------------------

    def _default_match(self, sg: ServiceGraph) -> Match:
        source, sink = self._chain_endpoints(sg)
        src_host = self.net.get(source)
        dst_host = self.net.get(sink)
        return Match(dl_type=Ethernet.IP_TYPE, nw_src=src_host.ip,
                     nw_dst=dst_host.ip)

    def _chain_endpoints(self, sg: ServiceGraph) -> Tuple[str, str]:
        sources = [name for name in sg.saps
                   if sg.successors(name)
                   and not any(link.dst == name for link in sg.links)]
        sinks = [name for name in sg.saps
                 if not sg.successors(name)
                 and any(link.dst == name for link in sg.links)]
        if len(sources) != 1 or len(sinks) != 1:
            raise OrchestratorError(
                "cannot infer the chain flowspec (found %d source and %d "
                "sink SAPs); pass an explicit match" % (len(sources),
                                                        len(sinks)))
        return sources[0], sinks[0]

    def _ingress_device(self, entry_devices: List[str],
                        index: int = 0) -> str:
        ins = [dev for dev in entry_devices if dev.startswith("in")]
        return ins[index] if index < len(ins) else entry_devices[0]

    def _egress_device(self, entry_devices: List[str],
                       index: int = 0) -> str:
        outs = [dev for dev in entry_devices if dev.startswith("out")]
        if index < len(outs):
            return outs[index]
        raise OrchestratorError("VNF has no egress device #%d" % index)

    def _segment_hints(self, sg: ServiceGraph, vnfs: Dict[str, DeployedVNF],
                       link) -> Tuple[Optional[str], Optional[str]]:
        """Interface names anchoring a segment at container endpoints."""
        src_hint = None
        dst_hint = None
        if link.src in sg.vnfs:
            deployed = vnfs[link.src]
            entry = self.catalog.get(sg.vnfs[link.src].vnf_type)
            # successive SG links out of one VNF use out0, out1, ...
            out_index = [l for l in sg.links
                         if l.src == link.src].index(link)
            device = self._egress_device(entry.devices, out_index)
            src_hint = deployed.device_interfaces[device]
        if link.dst in sg.vnfs:
            deployed = vnfs[link.dst]
            entry = self.catalog.get(sg.vnfs[link.dst].vnf_type)
            in_index = [l for l in sg.links
                        if l.dst == link.dst].index(link)
            device = self._ingress_device(entry.devices, in_index)
            dst_hint = deployed.device_interfaces[device]
        return src_hint, dst_hint

    def _install_segment(self, sg: ServiceGraph, mapping: Mapping,
                         vnfs: Dict[str, DeployedVNF], link,
                         base_match: Match) -> str:
        path = mapping.link_paths[(link.src, link.dst)]
        src_hint, dst_hint = self._segment_hints(sg, vnfs, link)
        hops = self._path_hops(path, src_hint, dst_hint)
        self._path_counter += 1
        path_id = "%s/%s->%s/%d" % (sg.name, link.src, link.dst,
                                    self._path_counter)
        backup = (mapping.backup_paths.get((link.src, link.dst))
                  if self.protection else None)
        if backup is not None:
            backup_hops = self._path_hops(backup, src_hint, dst_hint)
            groups = self.steering.install_protected_path(
                path_id, hops, backup_hops, base_match)
            if groups:
                self._m_protected_segments.inc()
            else:
                self.telemetry.events.warn(
                    "core.orchestrator", "protection.no_divergence",
                    "%s: primary and backup never diverge on a shared "
                    "switch; segment unprotected" % path_id,
                    service=sg.name, path=path_id)
            return path_id
        self.steering.install_path(path_id, hops, base_match)
        return path_id

    def _path_hops(self, path: List[str], src_intf: Optional[str],
                   dst_intf: Optional[str]) -> List[PathHop]:
        """Turn a substrate node path into per-switch (in, out) hops."""
        hops: List[PathHop] = []
        for index in range(1, len(path) - 1):
            node = path[index]
            if self.view.kind(node) != ResourceView.SWITCH:
                continue  # paths may transit containers in odd topologies
            prev_name, next_name = path[index - 1], path[index + 1]
            in_hint = src_intf if index == 1 else None
            out_hint = dst_intf if index == len(path) - 2 else None
            in_port = self.ports.port(node, prev_name, in_hint)
            out_port = self.ports.port(node, next_name, out_hint)
            switch = self.net.get(node)
            hops.append(PathHop(switch.dpid, in_port, out_port))
        if not hops:
            raise OrchestratorError("path %r crosses no switch" % (path,))
        return hops

    def _install_return_path(self, sg: ServiceGraph, base_match: Match
                             ) -> Tuple[List[str], List[str]]:
        """Direct (chain-bypassing) steering for reply traffic.

        Returns the steering path ids and the substrate node path, so
        callers can later detect when a failed link invalidates it.
        """
        source, sink = self._chain_endpoints(sg)
        path = self.view.shortest_path(sink, source)
        if path is None:
            raise OrchestratorError("no return path %s -> %s"
                                    % (sink, source))
        reverse_match = Match(dl_type=base_match.dl_type,
                              nw_src=base_match.nw_dst,
                              nw_dst=base_match.nw_src,
                              nw_proto=base_match.nw_proto,
                              tp_src=base_match.tp_dst,
                              tp_dst=base_match.tp_src)
        hops = self._path_hops(path, None, None)
        self._path_counter += 1
        path_id = "%s/return/%d" % (sg.name, self._path_counter)
        self.steering.install_path(path_id, hops, reverse_match)
        return [path_id], path

    def _install_chain_return(self, sg: ServiceGraph, mapping: Mapping,
                              vnfs: Dict[str, DeployedVNF],
                              base_match: Match) -> List[str]:
        """Steer replies back through the chain in reverse."""
        reverse_match = Match(dl_type=base_match.dl_type,
                              nw_src=base_match.nw_dst,
                              nw_dst=base_match.nw_src)
        path_ids = []
        for link in reversed(sg.links):
            path = list(reversed(mapping.link_paths[(link.src, link.dst)]))
            src_hint, dst_hint = self._segment_hints(sg, vnfs, link)
            hops = self._path_hops(path, dst_hint, src_hint)
            self._path_counter += 1
            path_id = "%s/rev/%s->%s/%d" % (sg.name, link.dst, link.src,
                                            self._path_counter)
            self.steering.install_path(path_id, hops, reverse_match)
            path_ids.append(path_id)
        return path_ids

    # -- topology verification ------------------------------------------------

    def verify_topology(self, discovery) -> Dict[str, list]:
        """Compare LLDP-discovered switch adjacency to the resource view.

        Returns ``{"missing": [...], "unexpected": [...]}`` — inter-
        switch links the view has but discovery has not seen (down or
        not yet probed), and links discovery reports that the view
        lacks (miswired topology).  Empty lists mean the orchestrator's
        global network view matches reality.
        """
        name_of_dpid = {}
        for switch_name in self.view.switches():
            dpid = self.view.graph.nodes[switch_name].get("dpid")
            if dpid is not None:
                name_of_dpid[dpid] = switch_name
        discovered = set()
        for dpid1, _p1, dpid2, _p2 in discovery.links():
            pair = frozenset((name_of_dpid.get(dpid1),
                              name_of_dpid.get(dpid2)))
            discovered.add(pair)
        expected = set()
        for node1, node2 in self.view.graph.edges():
            if self.view.kind(node1) == ResourceView.SWITCH \
                    and self.view.kind(node2) == ResourceView.SWITCH:
                expected.add(frozenset((node1, node2)))
        return {
            "missing": sorted(tuple(sorted(pair))
                              for pair in expected - discovered),
            "unexpected": sorted(tuple(sorted(str(x) for x in pair))
                                 for pair in discovered - expected),
        }

    # -- migration ------------------------------------------------------------

    def migrate_vnf(self, chain: DeployedChain, vnf_name: str,
                    target_container: str, force: bool = False) -> None:
        """Move a chain VNF to ``target_container`` and re-steer.

        Make-before-break: the replacement instance starts on the
        target, the affected segments are re-routed and re-installed,
        then the old instance stops.  Raises OrchestratorError (leaving
        the chain on its old placement) when the target cannot host the
        VNF or no feasible re-route exists.

        ``force`` tolerates a failing stop of the old instance (its
        container crashed or its agent is unreachable) — the chain
        still moves over; the stranded instance is reaped when its
        container returns.
        """
        if not chain.active:
            raise OrchestratorError("chain %r is not active"
                                    % chain.sg.name)
        deployed = chain.vnfs.get(vnf_name)
        if deployed is None:
            raise OrchestratorError("chain has no VNF %r" % vnf_name)
        if target_container == deployed.container:
            return
        if target_container not in self.view.containers():
            raise OrchestratorError("no container %r" % target_container)
        sg = chain.sg
        cpu, mem, ports = chain.mapper.demand_of(sg, vnf_name)
        try:
            self.view.reserve_container(target_container, cpu, mem, ports)
        except ValueError as exc:
            raise OrchestratorError(str(exc))

        old_placement = chain.mapping.vnf_placement[vnf_name]
        chain.mapping.vnf_placement[vnf_name] = target_container
        new_deployed = None
        try:
            new_deployed = self._start_vnf(sg, chain.mapping, vnf_name)
            chain.vnfs[vnf_name] = new_deployed  # segments splice to it
            self._reroute_segments(chain, vnf_name)
        except Exception:
            chain.mapping.vnf_placement[vnf_name] = old_placement
            chain.vnfs[vnf_name] = deployed
            if new_deployed is not None:
                try:
                    self.netconf_client(target_container).rpc(
                        "stopVNF", VNF_NS,
                        {"id": new_deployed.vnf_id}).result(self.net.sim)
                except Exception:
                    pass
            self.view.release_container(target_container, cpu, mem,
                                        ports)
            raise

        # break: stop the old instance, release its resources
        try:
            old_client = self.netconf_client(deployed.container)
            # under force the old container is likely unreachable: use
            # a short deadline so failover doesn't stall on the timeout
            old_client.rpc("stopVNF", VNF_NS,
                           {"id": deployed.vnf_id}).result(
                self.net.sim, timeout=2.0 if force else 10.0)
        except Exception as exc:
            if not force:
                raise
            self.telemetry.events.warn(
                "core.orchestrator", "orchestrator.migrate_skip_stop",
                "%s/%s: old instance on %s not stopped (%s)"
                % (chain.sg.name, vnf_name, old_placement, exc),
                service=chain.sg.name, vnf=vnf_name,
                container=old_placement)
        self.view.release_container(old_placement, cpu, mem, ports)
        self._m_migrations.inc()
        self.telemetry.events.info(
            "core.orchestrator", "orchestrator.migrated",
            "%s/%s: %s -> %s" % (chain.sg.name, vnf_name, old_placement,
                                 target_container),
            service=chain.sg.name, vnf=vnf_name)

    def _reroute_segments(self, chain: DeployedChain,
                          vnf_name: Optional[str] = None,
                          affected_links: Optional[list] = None) -> None:
        """Recompute + reinstall the steering of every SG link touching
        ``vnf_name`` (or the explicit ``affected_links`` set) under the
        chain's updated placement.

        Break-before-make *across the affected set*: old and new
        segments can carry identical (match, in-port) entries on shared
        switches, so interleaving per-segment removal with installation
        would delete freshly installed entries.  All old paths go
        first, then all new ones.
        """
        sg = chain.sg
        base_match = getattr(chain, "base_match", None) \
            or self._default_match(sg)
        if affected_links is not None:
            affected = list(affected_links)
        else:
            affected = [link for link in sg.links
                        if vnf_name in (link.src, link.dst)]
        # phase 1: route everything (bandwidth moves over atomically)
        new_paths = {}
        for link in affected:
            src = chain.mapper._place_node(sg, link.src,
                                           chain.mapping.vnf_placement)
            dst = chain.mapper._place_node(sg, link.dst,
                                           chain.mapping.vnf_placement)
            bandwidth = chain.mapper._link_bandwidth(sg, link.src,
                                                     link.dst)
            old_path = chain.mapping.link_paths[(link.src, link.dst)]
            self.view.release_path_bandwidth(old_path, bandwidth)
            new_path = self.view.shortest_path(src, dst, bandwidth)
            if new_path is None:
                self.view.reserve_path_bandwidth(old_path, bandwidth)
                for done_link, (done_path, done_bw, done_old) \
                        in new_paths.items():
                    self.view.release_path_bandwidth(done_path, done_bw)
                    self.view.reserve_path_bandwidth(done_old, done_bw)
                raise OrchestratorError(
                    "no feasible re-route %s -> %s" % (src, dst))
            self.view.reserve_path_bandwidth(new_path, bandwidth)
            new_paths[(link.src, link.dst)] = (new_path, bandwidth,
                                               old_path)
        # phase 2: remove every old affected path
        for link in affected:
            old_id = chain.segment_paths[(link.src, link.dst)]
            self.steering.remove_path(old_id)
            chain.path_ids.remove(old_id)
        # phase 3: install the new ones
        for link in affected:
            chain.mapping.link_paths[(link.src, link.dst)] = \
                new_paths[(link.src, link.dst)][0]
        if self.protection:
            # re-provision backups against the updated view (the old
            # ones may traverse the edge that just died) — the chain's
            # traffic is already on its way, this is make-before-break
            compute_backup_paths(sg, chain.mapping, self.view)
        for link in affected:
            new_id = self._install_segment(sg, chain.mapping,
                                           chain.vnfs, link, base_match)
            chain.path_ids.append(new_id)
            chain.segment_paths[(link.src, link.dst)] = new_id

    # -- resilience (driven by repro.core.recovery) ---------------------------

    def restart_vnf(self, chain: DeployedChain, vnf_name: str) -> None:
        """Replace a crashed VNF instance in place (same container).

        Best-effort reap of the crashed instance first (``stopVNF``
        frees the budget the zombie still holds), then a fresh start
        from the catalog and a re-install of the segments touching it —
        the replacement may splice to different container interfaces.
        The resource view is untouched: placement does not change.
        """
        if not chain.active:
            raise OrchestratorError("chain %r is not active"
                                    % chain.sg.name)
        deployed = chain.vnfs.get(vnf_name)
        if deployed is None:
            raise OrchestratorError("chain has no VNF %r" % vnf_name)
        client = self.netconf_client(deployed.container)
        try:
            client.rpc("stopVNF", VNF_NS,
                       {"id": deployed.vnf_id}).result(self.net.sim)
        except Exception:
            pass  # already reaped, or raced with a container outage
        new_deployed = self._start_vnf(chain.sg, chain.mapping, vnf_name)
        chain.vnfs[vnf_name] = new_deployed
        self._reroute_segments(chain, vnf_name)
        self._m_restarts.inc()
        self.telemetry.events.info(
            "core.orchestrator", "orchestrator.restarted",
            "%s/%s: %s -> %s on %s" % (
                chain.sg.name, vnf_name, deployed.vnf_id,
                new_deployed.vnf_id, deployed.container),
            service=chain.sg.name, vnf=vnf_name,
            container=deployed.container)

    @staticmethod
    def _path_uses_edge(path: Optional[List[str]], edge: frozenset) -> bool:
        if not path:
            return False
        return any(frozenset((path[i], path[i + 1])) == edge
                   for i in range(len(path) - 1))

    def reinstall_return_path(self, chain: DeployedChain) -> None:
        """Recompute + re-steer a chain's direct return path (after a
        substrate link failure invalidated the old one)."""
        if chain.return_mode != "direct":
            return
        base_match = getattr(chain, "base_match", None) \
            or self._default_match(chain.sg)
        for path_id in chain.return_path_ids:
            try:
                self.steering.remove_path(path_id)
            except Exception:
                pass
            if path_id in chain.path_ids:
                chain.path_ids.remove(path_id)
        new_ids, substrate = self._install_return_path(chain.sg,
                                                       base_match)
        chain.return_path_ids = new_ids
        chain.return_substrate_path = substrate
        chain.path_ids.extend(new_ids)

    def chains_over_edge(self, node1: str, node2: str) -> List[str]:
        """Names of deployed chains whose steering traverses substrate
        edge ``node1 -- node2`` (segment paths or direct return path)."""
        edge = frozenset((node1, node2))
        return sorted(
            chain.sg.name for chain in self.deployed.values()
            if any(self._path_uses_edge(
                chain.mapping.link_paths[(link.src, link.dst)], edge)
                for link in chain.sg.links)
            or self._path_uses_edge(chain.return_substrate_path, edge))

    def reroute_chains_for_edge(self, node1: str, node2: str) -> List[str]:
        """Re-route every deployed chain mapped over substrate edge
        ``node1 -- node2`` (just marked down in the resource view).

        Returns the names of the chains that were re-steered.  Raises
        OrchestratorError when some segment has no feasible detour —
        callers decide whether to retry (e.g. after the link heals).
        """
        edge = frozenset((node1, node2))
        rerouted: List[str] = []
        for chain in list(self.deployed.values()):
            affected = [
                link for link in chain.sg.links
                if self._path_uses_edge(
                    chain.mapping.link_paths[(link.src, link.dst)], edge)]
            touched = False
            if affected:
                self._reroute_segments(chain, affected_links=affected)
                touched = True
            if self._path_uses_edge(chain.return_substrate_path, edge):
                self.reinstall_return_path(chain)
                touched = True
            if touched:
                rerouted.append(chain.sg.name)
                self.telemetry.events.info(
                    "core.orchestrator", "orchestrator.rerouted",
                    "%s re-steered around %s--%s" % (chain.sg.name,
                                                     node1, node2),
                    service=chain.sg.name, edge="%s--%s" % (node1, node2))
        return rerouted

    # -- teardown -------------------------------------------------------------

    def _rollback(self, sg: ServiceGraph, mapping: Mapping, mapper: Mapper,
                  vnfs: Dict[str, DeployedVNF],
                  path_ids: List[str]) -> None:
        for path_id in path_ids:
            try:
                self.steering.remove_path(path_id)
            except Exception:
                pass
        for deployed in vnfs.values():
            try:
                client = self.netconf_client(deployed.container)
                client.rpc("stopVNF", VNF_NS,
                           {"id": deployed.vnf_id}).result(self.net.sim)
            except Exception:
                pass
        mapper.release(mapping, self.view)

    def _undeploy(self, chain: DeployedChain) -> None:
        for path_id in chain.path_ids:
            self.steering.remove_path(path_id)
        for deployed in chain.vnfs.values():
            client = self.netconf_client(deployed.container)
            client.rpc("stopVNF", VNF_NS,
                       {"id": deployed.vnf_id}).result(self.net.sim)
        chain.mapper.release(chain.mapping, self.view)
        self.deployed.pop(chain.sg.name, None)
        self.telemetry.events.info("core.orchestrator",
                                   "orchestrator.undeployed",
                                   chain.sg.name, service=chain.sg.name)

    def __repr__(self) -> str:
        return "Orchestrator(%d chains deployed)" % len(self.deployed)
