"""The service layer: request handling and SLA verification.

"Service layer is aware of the service logic, handles service requests,
and is responsible for SLAs."  A :class:`ServiceRequest` bundles a
service graph with its SLA; the layer deploys it through the
orchestrator and can verify the SLA afterwards by *measuring* the
running chain (ping RTT for delay, UDP flow delivery for loss).
"""

from typing import Dict, List, Optional

from repro.core.mapping import Mapper
from repro.core.nffg import ServiceGraph
from repro.core.orchestrator import DeployedChain, Orchestrator
from repro.openflow import Match


class ServiceRequest:
    """A service graph plus deployment preferences."""

    def __init__(self, sg: ServiceGraph, match: Optional[Match] = None,
                 return_path: str = "direct"):
        self.sg = sg
        self.match = match
        self.return_path = return_path

    def __repr__(self) -> str:
        return "ServiceRequest(%s)" % self.sg.name


class SLAReport:
    """Outcome of verifying one requirement against measurements."""

    def __init__(self, requirement, measured_delay: Optional[float],
                 loss_percent: Optional[float], satisfied: bool):
        self.requirement = requirement
        self.measured_delay = measured_delay
        self.loss_percent = loss_percent
        self.satisfied = satisfied

    def __repr__(self) -> str:
        return "SLAReport(%r, delay=%s, loss=%s%%, %s)" % (
            self.requirement, self.measured_delay, self.loss_percent,
            "OK" if self.satisfied else "VIOLATED")


class ServiceLayer:
    """Accepts requests, tracks deployed services, verifies SLAs."""

    def __init__(self, orchestrator: Orchestrator, default_mapper: Mapper):
        self.orchestrator = orchestrator
        self.default_mapper = default_mapper
        self.services: Dict[str, DeployedChain] = {}

    def submit(self, request: ServiceRequest,
               mapper: Optional[Mapper] = None) -> DeployedChain:
        """Deploy a service request; raises MappingError/OrchestratorError
        when it cannot be satisfied."""
        chain = self.orchestrator.deploy(
            request.sg, mapper or self.default_mapper,
            match=request.match, return_path=request.return_path)
        self.services[request.sg.name] = chain
        return chain

    def terminate(self, name: str) -> None:
        chain = self.services.pop(name, None)
        if chain is None:
            raise KeyError("no deployed service %r" % name)
        chain.undeploy()

    def verify_sla(self, name: str, probes: int = 5,
                   probe_interval: float = 0.2) -> List[SLAReport]:
        """Measure each requirement of a deployed service with pings.

        The one-way chain-delay requirement is compared against half the
        measured round-trip (the return path is the direct route, so the
        RTT upper-bounds chain delay + direct delay; using RTT/2 keeps
        the check conservative for symmetric topologies).
        """
        chain = self.services.get(name)
        if chain is None:
            raise KeyError("no deployed service %r" % name)
        reports: List[SLAReport] = []
        net = self.orchestrator.net
        for requirement in chain.sg.requirements:
            src_host = net.get(requirement.src)
            dst_host = net.get(requirement.dst)
            result = src_host.ping(dst_host.ip, count=probes,
                                   interval=probe_interval)
            net.run(probes * probe_interval + 2.0)
            measured = (result.avg_rtt / 2.0
                        if result.avg_rtt is not None else None)
            satisfied = True
            if requirement.max_delay is not None:
                satisfied = (measured is not None
                             and measured <= requirement.max_delay)
            if result.loss_percent > 0.0:
                satisfied = False
            reports.append(SLAReport(requirement, measured,
                                     result.loss_percent, satisfied))
        return reports

    def __repr__(self) -> str:
        return "ServiceLayer(%d services)" % len(self.services)
