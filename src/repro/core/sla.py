"""Runtime SLA conformance monitoring for deployed chains.

The service graph carries end-to-end :class:`~repro.core.nffg.
Requirement`s (max delay, min bandwidth) that, before this module,
were only consulted once at mapping time.  :class:`SLAMonitor` closes
the loop: it periodically injects timestamped probe bursts through a
running :class:`~repro.core.orchestrator.DeployedChain` (the probes
ride the chain's steering entries like any other SAP-to-SAP traffic),
measures what actually arrives, and drives a per-chain state machine::

    OK --breach--> WARN --violate_after consecutive--> VIOLATED
     ^                                                     |
     +---------- recover_after consecutive clean ----------+

Measurements per probe round and requirement:

* **delay** — one-way, from the send timestamp carried in the probe
  payload to arrival at the sink SAP (both read the simulated clock),
* **delivered bandwidth** — packet-pair dispersion of the burst: the
  bottleneck spreads back-to-back frames apart, so
  ``(burst bytes after the first frame) * 8 / spread`` estimates the
  chain's delivered rate; zero spread means no bottleneck was
  observable (reported as infinite),
* **loss** — probes that missed the round's evaluation deadline.

Every transition emits a structured event (WARN / ERROR severity on
degradation, INFO on recovery) and fires alert callbacks; per-chain
``sla.state`` / ``sla.probe_delay`` gauges make the state visible in
the Prometheus export.  Each burst is wrapped in an ``sla.probe``
span whose id travels *inside* the probe payload, so a flight-recorder
capture of the probe on any substrate link can be joined back to this
monitor's trace (see :mod:`repro.packet.probe`).

The polling pattern follows :class:`~repro.core.monitor.VNFMonitor`:
a self-rescheduling simulator task that stands down when the chain
goes inactive.
"""

import itertools
from typing import Callable, Dict, List, Optional

from repro.core.nffg import Requirement
from repro.core.orchestrator import DeployedChain
from repro.netem.node import Host
from repro.packet.probe import pack_probe, parse_probe

OK = "OK"
WARN = "WARN"
VIOLATED = "VIOLATED"

STATES = (OK, WARN, VIOLATED)
STATE_VALUES = {OK: 0, WARN: 1, VIOLATED: 2}

# UDP wire overhead per probe frame: Ethernet(14) + IPv4(20) + UDP(8)
_FRAME_OVERHEAD = 42

# each monitor gets its own sink port so concurrent chains never mix
_PROBE_PORTS = itertools.count(49500)


class SLAError(Exception):
    pass


class _PendingBurst:
    """In-flight probe burst for one requirement."""

    __slots__ = ("requirement", "seq", "span", "sent", "sent_at",
                 "delays", "arrivals", "bytes_received")

    def __init__(self, requirement: Requirement, seq: int, span,
                 sent: int, sent_at: float):
        self.requirement = requirement
        self.seq = seq
        self.span = span
        self.sent = sent
        self.sent_at = sent_at
        self.delays: List[float] = []
        self.arrivals: List[float] = []
        self.bytes_received = 0


class RequirementReport:
    """Outcome of one probe round for one requirement."""

    __slots__ = ("requirement", "time", "delay", "bandwidth", "lost",
                 "received", "breached", "reasons", "trace_id")

    def __init__(self, requirement: Requirement, time: float,
                 delay: Optional[float], bandwidth: Optional[float],
                 lost: int, received: int, breached: bool,
                 reasons: List[str], trace_id: int):
        self.requirement = requirement
        self.time = time
        self.delay = delay
        self.bandwidth = bandwidth
        self.lost = lost
        self.received = received
        self.breached = breached
        self.reasons = reasons
        self.trace_id = trace_id

    def __repr__(self) -> str:
        return "RequirementReport(%s->%s, delay=%s, bw=%s, %s)" % (
            self.requirement.src, self.requirement.dst, self.delay,
            self.bandwidth, "BREACH" if self.breached else "ok")


class SLAMonitor:
    """Probes a deployed chain against its NFFG requirements.

    ``interval`` — seconds between probe rounds; ``burst`` — probes
    per requirement per round (≥2 enables the dispersion bandwidth
    estimate); ``violate_after`` — consecutive breached rounds before
    WARN escalates to VIOLATED; ``recover_after`` — consecutive clean
    rounds before returning to OK; ``timeout`` — how long a round
    waits before scoring missing probes as lost (defaults to 80% of
    the interval).
    """

    def __init__(self, chain: DeployedChain, interval: float = 0.5,
                 burst: int = 4, payload_size: int = 512,
                 violate_after: int = 3, recover_after: int = 2,
                 timeout: Optional[float] = None,
                 probe_port: Optional[int] = None):
        if not chain.sg.requirements:
            raise SLAError("chain %r carries no requirements to monitor"
                           % chain.sg.name)
        if burst < 1:
            raise SLAError("burst must be >= 1")
        self.chain = chain
        self.sim = chain.orchestrator.net.sim
        self.net = chain.orchestrator.net
        self.interval = interval
        self.burst = burst
        self.payload_size = payload_size
        self.violate_after = violate_after
        self.recover_after = recover_after
        self.timeout = timeout if timeout is not None else interval * 0.8
        self.probe_port = (probe_port if probe_port is not None
                           else next(_PROBE_PORTS))
        self.requirements = list(chain.sg.requirements)

        self.state = OK
        self.rounds = 0
        self.running = False
        self.reports: Dict[tuple, RequirementReport] = {}
        self.transitions: List[tuple] = []  # (time, old, new)
        self._breach_streak = 0
        self._clean_streak = 0
        self._seq = itertools.count(1)
        self._pending: Dict[int, List[_PendingBurst]] = {}
        self._bound_hosts: List[Host] = []
        self._task = None
        self._alerts: List[Callable] = []

        telemetry = chain.orchestrator.telemetry
        self.tracer = telemetry.tracer
        self.events = telemetry.events
        metrics = telemetry.metrics
        labels = {"chain": chain.sg.name}
        self._g_state = metrics.gauge(
            "sla.state", "chain SLA conformance (0=OK 1=WARN 2=VIOLATED)",
            labels=labels)
        self._g_delay = metrics.gauge(
            "sla.probe_delay", "last measured end-to-end probe delay (s)",
            labels=labels)
        self._g_bandwidth = metrics.gauge(
            "sla.probe_bandwidth",
            "last estimated delivered bandwidth (bit/s)", labels=labels)
        self._m_sent = metrics.counter(
            "sla.probes_sent", "probe packets injected", labels=labels)
        self._m_lost = metrics.counter(
            "sla.probes_lost", "probe packets that missed the deadline",
            labels=labels)
        self._m_breaches = metrics.counter(
            "sla.breaches", "probe rounds that breached a requirement",
            labels=labels)
        self._g_state.set(STATE_VALUES[OK])

    # -- lifecycle ---------------------------------------------------------

    def on_alert(self, callback: Callable[[str, str, str, dict],
                                          None]) -> None:
        """Register ``fn(chain_name, old_state, new_state, detail)``,
        fired on every state transition."""
        self._alerts.append(callback)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        for requirement in self.requirements:
            sink = self.net.get(requirement.dst)
            if not isinstance(sink, Host):
                raise SLAError("requirement sink %r is not a host SAP"
                               % requirement.dst)
            if sink not in self._bound_hosts:
                sink.bind_udp(self.probe_port, self._make_receiver(sink))
                self._bound_hosts.append(sink)
        self.events.info("core.sla", "monitor.started",
                         chain=self.chain.sg.name,
                         requirements=len(self.requirements),
                         interval=self.interval)
        self._task = self.sim.schedule(0.0, self._round)

    def stop(self) -> None:
        self.running = False
        if self._task is not None:
            self._task.cancel()
            self._task = None
        for host in self._bound_hosts:
            host.unbind_udp(self.probe_port)
        self._bound_hosts = []
        self.events.info("core.sla", "monitor.stopped",
                         chain=self.chain.sg.name, state=self.state)

    # -- probe rounds ------------------------------------------------------

    def _round(self) -> None:
        if not self.running:
            return
        if not self.chain.active:
            self.stop()  # unbinds the probe receivers too
            return
        seq = next(self._seq)
        self.rounds += 1
        bursts = []
        for requirement in self.requirements:
            bursts.append(self._send_burst(requirement, seq))
        self._pending[seq] = bursts
        self.sim.schedule(self.timeout, self._evaluate, seq)
        self._task = self.sim.schedule(self.interval, self._round)

    def _send_burst(self, requirement: Requirement,
                    seq: int) -> _PendingBurst:
        source = self.net.get(requirement.src)
        sink = self.net.get(requirement.dst)
        if not isinstance(source, Host):
            raise SLAError("requirement source %r is not a host SAP"
                           % requirement.src)
        with self.tracer.span("sla.probe", chain=self.chain.sg.name,
                              requirement="%s->%s" % (requirement.src,
                                                      requirement.dst),
                              seq=seq) as span:
            burst = _PendingBurst(requirement, seq, span, self.burst,
                                  self.sim.now)
            for index in range(self.burst):
                payload = pack_probe(span.span_id, seq, index,
                                     self.sim.now, self.chain.sg.name,
                                     pad_to=self.payload_size)
                source.send_udp(sink.ip, self.probe_port, payload)
                self._m_sent.inc()
        return burst

    def _make_receiver(self, sink: Host):
        def receive(_srcip, _srcport, payload: bytes) -> None:
            probe = parse_probe(payload)
            if probe is None or probe.chain != self.chain.sg.name:
                return
            for burst in self._pending.get(probe.seq, ()):
                if burst.span.span_id != probe.trace_id:
                    continue
                now = self.sim.now
                burst.delays.append(now - probe.send_time)
                burst.arrivals.append(now)
                burst.bytes_received += len(payload) + _FRAME_OVERHEAD
                return
        return receive

    # -- evaluation --------------------------------------------------------

    def _evaluate(self, seq: int) -> None:
        bursts = self._pending.pop(seq, None)
        if bursts is None or not self.running:
            return
        breached_round = False
        detail: Dict[str, dict] = {}
        for burst in bursts:
            report = self._score(burst)
            key = (burst.requirement.src, burst.requirement.dst)
            self.reports[key] = report
            detail["%s->%s" % key] = {
                "delay": report.delay,
                "bandwidth": report.bandwidth,
                "lost": report.lost,
                "reasons": report.reasons,
            }
            breached_round = breached_round or report.breached
        if breached_round:
            self._m_breaches.inc()
        self._advance(breached_round, detail)

    def _score(self, burst: _PendingBurst) -> RequirementReport:
        requirement = burst.requirement
        received = len(burst.delays)
        lost = burst.sent - received
        if lost > 0:
            self._m_lost.inc(lost)
        reasons: List[str] = []
        delay = max(burst.delays) if burst.delays else None
        bandwidth = self._dispersion_bandwidth(burst)
        if lost > 0:
            reasons.append("lost %d/%d probes" % (lost, burst.sent))
        if requirement.max_delay is not None:
            if delay is None:
                reasons.append("no probe arrived within the deadline")
            elif delay > requirement.max_delay:
                reasons.append("delay %.6fs > max %.6fs"
                               % (delay, requirement.max_delay))
        if requirement.min_bandwidth is not None:
            if bandwidth is None:
                reasons.append("bandwidth unmeasurable (got %d probes)"
                               % received)
            elif bandwidth < requirement.min_bandwidth:
                reasons.append("bandwidth %.0f < min %.0f bit/s"
                               % (bandwidth, requirement.min_bandwidth))
        if delay is not None:
            self._g_delay.set(delay)
        if bandwidth is not None and bandwidth != float("inf"):
            self._g_bandwidth.set(bandwidth)
        # annotate the probe span so trace readers see the outcome
        burst.span.tags.update({
            "received": received, "lost": lost,
            "delay": delay, "bandwidth": bandwidth,
        })
        return RequirementReport(requirement, self.sim.now, delay,
                                 bandwidth, lost, received,
                                 bool(reasons), reasons,
                                 burst.span.span_id)

    def _dispersion_bandwidth(self,
                              burst: _PendingBurst) -> Optional[float]:
        """Delivered-rate estimate from the burst's arrival spread."""
        if len(burst.arrivals) < 2:
            return None
        spread = max(burst.arrivals) - min(burst.arrivals)
        if spread <= 0:
            return float("inf")  # no bottleneck dispersion observed
        per_frame = burst.bytes_received / len(burst.arrivals)
        return (burst.bytes_received - per_frame) * 8.0 / spread

    # -- state machine -----------------------------------------------------

    def _advance(self, breached: bool, detail: Dict[str, dict]) -> None:
        if breached:
            self._clean_streak = 0
            self._breach_streak += 1
            if self.state == OK:
                self._transition(WARN, detail)
            elif self.state == WARN \
                    and self._breach_streak >= self.violate_after:
                self._transition(VIOLATED, detail)
        else:
            self._breach_streak = 0
            self._clean_streak += 1
            if self.state != OK and self._clean_streak >= self.recover_after:
                self._transition(OK, detail)

    def _transition(self, new_state: str, detail: Dict[str, dict]) -> None:
        old_state = self.state
        self.state = new_state
        self._g_state.set(STATE_VALUES[new_state])
        self.transitions.append((self.sim.now, old_state, new_state))
        emit = {VIOLATED: self.events.error, WARN: self.events.warn,
                OK: self.events.info}[new_state]
        emit("core.sla", "sla.%s" % new_state.lower(),
             "chain %s: %s -> %s" % (self.chain.sg.name, old_state,
                                     new_state),
             chain=self.chain.sg.name, old=old_state, new=new_state,
             breach_streak=self._breach_streak)
        for callback in self._alerts:
            callback(self.chain.sg.name, old_state, new_state, detail)

    # -- queries -----------------------------------------------------------

    def last_report(self, src: str, dst: str) -> Optional[RequirementReport]:
        return self.reports.get((src, dst))

    def status(self) -> dict:
        """Structured snapshot for dashboards and the CLI."""
        requirements = []
        for requirement in self.requirements:
            key = (requirement.src, requirement.dst)
            report = self.reports.get(key)
            requirements.append({
                "path": "%s->%s" % key,
                "max_delay": requirement.max_delay,
                "min_bandwidth": requirement.min_bandwidth,
                "measured_delay": report.delay if report else None,
                "measured_bandwidth": report.bandwidth if report else None,
                "lost": report.lost if report else None,
                "breached": report.breached if report else None,
                "reasons": report.reasons if report else [],
            })
        return {
            "chain": self.chain.sg.name,
            "state": self.state,
            "rounds": self.rounds,
            "running": self.running,
            "breach_streak": self._breach_streak,
            "transitions": list(self.transitions),
            "requirements": requirements,
        }

    def render(self) -> str:
        """One-line-per-requirement textual summary."""
        lines = ["%s: %s (%d rounds, %d transitions)"
                 % (self.chain.sg.name, self.state, self.rounds,
                    len(self.transitions))]
        for entry in self.status()["requirements"]:
            limits = []
            if entry["max_delay"] is not None:
                limits.append("delay<=%.4fs" % entry["max_delay"])
            if entry["min_bandwidth"] is not None:
                limits.append("bw>=%.0f" % entry["min_bandwidth"])
            measured = "-"
            if entry["measured_delay"] is not None:
                measured = "%.6fs" % entry["measured_delay"]
            verdict = ("BREACH: " + "; ".join(entry["reasons"])
                       if entry["breached"] else "ok")
            lines.append("  %-14s %-24s delay=%-10s %s"
                         % (entry["path"], ",".join(limits) or "-",
                            measured, verdict))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "SLAMonitor(%s, %s, %d rounds, %s)" % (
            self.chain.sg.name, self.state, self.rounds,
            "running" if self.running else "stopped")
