"""The ESCAPE facade: all three UNIFY layers in one object (Fig. 1).

Construction wires, bottom-up:

* **infrastructure layer** — the emulated network (hosts, OpenFlow
  switches, VNF containers) plus a NETCONF agent per container on a
  dedicated control channel,
* **orchestration layer** — the POX-analog controller (learning switch
  fallback, LLDP discovery, traffic steering) and the Orchestrator with
  its pluggable mapping algorithms and per-container NETCONF clients,
* **service layer** — the catalog-backed service API with SLA checks.

Typical use::

    from repro.core import ESCAPE
    from repro.core.sgfile import load_topology, load_service_graph

    escape = ESCAPE.from_topology(load_topology(topo_json))
    escape.start()
    chain = escape.deploy_service(load_service_graph(sg_json))
    escape.run(2.0)
    print(chain.read_handler("fw", "fw.passed"))
"""

from typing import Dict, Optional, Union

from repro.core.catalog import VNFCatalog, default_catalog
from repro.core.mapping import (BacktrackingMapper, CongestionAwareMapper,
                                GreedyMapper, Mapper,
                                ShortestPathMapper)
from repro.core.monitor import VNFMonitor
from repro.core.nffg import ServiceGraph
from repro.core.orchestrator import DeployedChain, Orchestrator
from repro.core.recovery import RecoveryManager
from repro.core.service import ServiceLayer, ServiceRequest
from repro.core.sgfile import load_service_graph
from repro.core.sla import SLAMonitor
from repro.netconf import NetconfClient, TransportPair, VNFAgent
from repro.netem import CLI, FlightRecorder, Network, Topo
from repro.openflow import Match
from repro.pox import (Core, Discovery, L2LearningSwitch, OpenFlowNexus,
                       StatsCollector, TrafficSteering)
from repro.sim import Simulator
from repro.telemetry import (FlowTraceError, Telemetry, set_current,
                             to_json, to_prometheus, write_snapshot)


class ESCAPE:
    """The prototyping framework, fully assembled."""

    STARTUP_SETTLE = 0.1  # simulated seconds for handshakes/discovery

    def __init__(self, net: Network,
                 catalog: Optional[VNFCatalog] = None,
                 steering_mode: str = "exact",
                 control_latency: float = 0.001,
                 discovery_interval: float = 1.0,
                 control_network: str = "outband",
                 of_wire: bool = False,
                 sla_autostart: bool = True,
                 protection: bool = False):
        self.net = net
        # proactive chain protection: precomputed backup paths behind
        # fast-failover groups (requires exact steering; see
        # Orchestrator)
        self.protection = protection
        # chains deployed with NFFG requirements get an SLAMonitor
        # automatically (see deploy_service); opt out per instance
        self.sla_autostart = sla_autostart
        net.serialize_openflow = of_wire
        self.sim: Simulator = net.sim
        # One telemetry bundle per framework instance, clocked by the
        # simulator.  Made *current* before any layer is constructed so
        # every component below binds its instruments to this registry.
        self.telemetry = set_current(Telemetry(self.sim))
        # the simulator predates the bundle, so its dispatch profiler
        # hook is wired explicitly rather than via telemetry.current()
        self.sim.profiler = self.telemetry.profiler
        # likewise the substrate: Network.build constructed links and
        # switch datapaths before this bundle became current, so their
        # bound-once hot-path handles point at the previous bundle —
        # re-home them here
        self._rebind_dataplane_handles()
        self.catalog = catalog or default_catalog()

        # orchestration layer: controller platform
        self.core = Core(self.sim)
        self.nexus = OpenFlowNexus(self.core)
        self.l2_learning = L2LearningSwitch(self.nexus)
        self.discovery = Discovery(self.nexus,
                                   send_interval=discovery_interval,
                                   link_timeout=6 * discovery_interval)
        self.steering = TrafficSteering(self.nexus, mode=steering_mode)
        self.stats = StatsCollector(self.nexus)
        self.core.register("openflow", self.nexus)
        self.core.register("stats", self.stats)
        self.core.register("l2_learning", self.l2_learning)
        self.core.register("discovery", self.discovery)
        self.core.register("steering", self.steering)
        net.add_controller(self.nexus)

        # infrastructure layer management plane: one NETCONF agent +
        # client per container over the dedicated control network.
        # "outband": in-memory latency-modelled pipes (the default).
        # "inband": an emulated hub network carrying the management
        # frames ("the establishment of dedicated control network is
        # also possible where the management agents of the VNFs are
        # connected", §2 of the paper).
        if control_network not in ("outband", "inband"):
            raise ValueError("control_network must be outband or inband")
        self.control_network = control_network
        self.agents: Dict[str, VNFAgent] = {}
        self.netconf_clients: Dict[str, NetconfClient] = {}
        if control_network == "inband":
            self._build_inband_control_network(control_latency)
        else:
            for container in net.vnf_containers():
                client = NetconfClient(
                    self._outband_dial(container, control_latency),
                    default_timeout=self.RPC_TIMEOUT)
                client.set_transport_factory(
                    lambda c=container: self._outband_dial(
                        c, control_latency))
                self.netconf_clients[container.name] = client

        # orchestrator + service layer
        self._finish_init(net)

    RPC_TIMEOUT = 10.0  # per-RPC deadline on outband NETCONF sessions

    def _rebind_dataplane_handles(self) -> None:
        """Point pre-built dataplane components at this bundle's
        profiler/flowtrace.  Anything constructed after ``set_current``
        above (click elements at deploy time, NETCONF sessions, the
        steering module) binds correctly on its own."""
        profiler = self.telemetry.profiler
        flowtrace = self.telemetry.flowtrace
        for link in self.net.links:
            link._profiler = profiler
            link._flowtrace = flowtrace
        for switch in self.net.switches():
            switch.datapath._flowtrace = flowtrace

    def _outband_dial(self, container, control_latency: float):
        """Fresh control pipe to ``container``: a new transport pair
        with the agent re-homed on the server end.  Used at
        construction and by client reconnects after a session died
        (e.g. a chaos-injected management blackhole)."""
        pair = TransportPair(self.sim, latency=control_latency)
        self.agents[container.name] = VNFAgent(container, pair.server)
        return pair.client

    def _build_inband_control_network(self,
                                      control_latency: float) -> None:
        """Hang every container's management interface (and one
        orchestrator-side interface per agent) off a dedicated hub."""
        from repro.netconf.ethtransport import EthTransport
        from repro.netem.node import Node as PlainNode
        self.mgmt_hub = self.net.add_hub("mgmt0")
        self.mgmt_node = self.net.add_node(
            PlainNode("orchestrator-mgmt", self.sim))
        for container in self.net.vnf_containers():
            orch_link = self.net.add_link(self.mgmt_node, self.mgmt_hub,
                                          delay=control_latency / 2)
            agent_link = self.net.add_link(container, self.mgmt_hub,
                                           delay=control_latency / 2)
            orch_intf = (orch_link.intf1
                         if orch_link.intf1.node is self.mgmt_node
                         else orch_link.intf2)
            agent_intf = (agent_link.intf1
                          if agent_link.intf1.node is container
                          else agent_link.intf2)
            container.set_mgmt_interface(agent_intf)
            agent_transport = EthTransport(agent_intf, orch_intf.mac)
            client_transport = EthTransport(orch_intf, agent_intf.mac)
            self.agents[container.name] = VNFAgent(container,
                                                   agent_transport)
            self.netconf_clients[container.name] = NetconfClient(
                client_transport)

    def _finish_init(self, net: Network) -> None:
        self.orchestrator = Orchestrator(net, self.steering, self.catalog,
                                         self.netconf_clients,
                                         protection=self.protection)
        self.mappers: Dict[str, Mapper] = {
            "greedy": GreedyMapper(self.catalog),
            "shortest-path": ShortestPathMapper(self.catalog),
            "backtracking": BacktrackingMapper(self.catalog),
            "congestion-aware": CongestionAwareMapper(self.catalog),
        }
        self.service_layer = ServiceLayer(self.orchestrator,
                                          self.mappers["shortest-path"])
        self.recorder = FlightRecorder(net, self.telemetry)
        self.recovery = RecoveryManager(
            self.orchestrator, net,
            protection=self.orchestrator.protection)
        self.recovery.watch_discovery(self.discovery)
        self.chaos_engines: list = []
        self.sla_monitors: Dict[str, SLAMonitor] = {}
        self._m_service_deploys = self.telemetry.metrics.counter(
            "service.layer.deploys", "service requests submitted")
        self.telemetry.metrics.add_collector(self._collect_metrics)
        # time-series sampler: a recurring sim event sweeping every
        # metric into its history ring (powers `series` / rate queries)
        self.series_interval = self.SERIES_INTERVAL
        self._series_event = None
        self.started = False

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: pull the hot-path plain-int counters
        of all three layers into registry gauges (zero per-event cost)."""
        datapaths = [switch.datapath for switch in self.net.switches()]

        def total(attr: str) -> int:
            return sum(getattr(dp, attr) for dp in datapaths)

        registry.gauge("openflow.switch.packet_ins").set(
            total("packet_in_count"))
        registry.gauge("openflow.switch.flow_mods").set(
            total("flow_mod_count"))
        registry.gauge("openflow.switch.forwarded").set(
            total("forwarded_count"))
        registry.gauge("openflow.switch.dropped").set(
            total("dropped_count"))
        registry.gauge("openflow.switch.table_hits").set(
            total("table_hit_count"))
        registry.gauge("openflow.switch.table_misses").set(
            total("table_miss_count"))
        registry.gauge("openflow.switch.flow_entries").set(
            sum(len(dp.table) for dp in datapaths))
        registry.gauge("openflow.switch.group_mods").set(
            total("group_mod_count"))
        registry.gauge("openflow.switch.group_flips").set(
            total("group_flip_count"))
        registry.gauge("openflow.switch.group_entries").set(
            sum(len(dp.groups) for dp in datapaths))
        link_stats = self.net.link_stats()
        registry.gauge("netem.link.delivered").set(
            link_stats["delivered"])
        registry.gauge("netem.link.dropped").set(link_stats["dropped"])
        registry.gauge("netem.link.dropped_down").set(
            link_stats["dropped_down"])
        registry.gauge("netem.link.dropped_loss").set(
            link_stats["dropped_loss"])
        registry.gauge("netem.link.dropped_queue").set(
            link_stats["dropped_queue"])
        registry.gauge("netem.link.delivered_bytes").set(
            link_stats["delivered_bytes"])
        registry.gauge("netem.link.max_utilization").set(
            link_stats["max_utilization"])
        pushes = pulls = running = 0
        for container in self.net.vnf_containers():
            for process in container.vnfs.values():
                running += 1
                counts = process.router.transfer_counts()
                pushes += counts[0]
                pulls += counts[1]
        registry.gauge("click.element.pushes").set(pushes)
        registry.gauge("click.element.pulls").set(pulls)
        registry.gauge("netem.container.running_vnfs").set(running)
        acct = self.sim.accounting
        registry.gauge("sim.heap.depth",
                       "events pending in the scheduler heap").set(
            self.sim.heap_depth)
        registry.gauge("sim.events.scheduled",
                       "events scheduled since simulator start").set(
            self.sim.scheduled)
        registry.gauge("sim.events.dispatched",
                       "events dispatched while accounting was on").set(
            acct.dispatched)
        registry.gauge("sim.events.coalescable",
                       "dispatched events sharing a timestamp with "
                       "their predecessor").set(acct.coalescable)
        registry.gauge("sim.events.cancelled_popped",
                       "cancelled events discarded by the loop").set(
            acct.cancelled_popped)
        registry.gauge("sim.events.wakeups",
                       "pull-driver activations armed event-driven "
                       "(notifier edges, hint/credit shots)").set(
            acct.wakeups)
        registry.gauge("sim.events.polls",
                       "pull-driver activations armed as blind "
                       "interval polls").set(acct.polls)
        registry.gauge("sim.events.pending",
                       "not-cancelled events queued (O(1) live "
                       "counter)").set(self.sim.pending)
        registry.gauge("sim.heap.compactions",
                       "dead-entry heap compactions performed").set(
            self.sim.compactions)
        registry.gauge("sim.heap.max_depth",
                       "peak heap depth seen while accounting was on"
                       ).set(acct.max_heap_depth)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_topology(cls, topo: Topo, sim: Optional[Simulator] = None,
                      **options) -> "ESCAPE":
        """Demo step (1): containers + the rest of the topology."""
        return cls(Network.build(topo, sim=sim), **options)

    # -- lifecycle ------------------------------------------------------------

    def start(self, settle: Optional[float] = None) -> None:
        """Bring the framework up: OF handshakes, NETCONF hellos, LLDP."""
        if self.started:
            return
        self.net.static_arp()
        self.net.start()
        self.net.run(settle if settle is not None else self.STARTUP_SETTLE)
        # the OF handshake must complete before guards/steering can be
        # installed, whatever settle the caller picked
        deadline = self.sim.now + 5.0
        while len(self.nexus.connections) < len(self.net.switches()):
            if self.sim.peek() is None or self.sim.now > deadline:
                raise RuntimeError("OpenFlow handshake did not complete")
            self.sim.step()
        for client in self.netconf_clients.values():
            client.wait_connected()
        self._install_container_port_guards()
        self.net.run(0.01)  # let the guard flow-mods land
        self._start_series_sampler()
        self.started = True

    SERIES_INTERVAL = 0.25  # simulated seconds between series samples

    def _start_series_sampler(self) -> None:
        if self._series_event is not None:
            return

        def sample() -> None:
            self.telemetry.metrics.sample()
            self._series_event = self.sim.schedule(self.series_interval,
                                                   sample)

        self.telemetry.metrics.sample()  # t=now baseline point
        self._series_event = self.sim.schedule(self.series_interval,
                                               sample)

    def _stop_series_sampler(self) -> None:
        if self._series_event is not None:
            self._series_event.cancel()
            self._series_event = None

    GUARD_PRIORITY = 0x3000  # above l2_learning, below steering

    def _install_container_port_guards(self) -> None:
        """Drop non-steered traffic entering from VNF-container ports.

        Learning-switch flooding copies frames into container ports;
        bump-in-the-wire VNFs would forward them back, and two VNFs on
        different switches turn that into a broadcast storm.  Container
        ports are not part of the L2 learning domain: anything a VNF
        emits either matches a steering entry (higher priority) or is
        chain-internal leakage to drop.
        """
        from repro.netem.node import Switch
        from repro.netem.vnf import VNFContainer
        from repro.openflow import FlowMod, Match
        for link in self.net.links:
            for intf, peer in ((link.intf1, link.intf2),
                               (link.intf2, link.intf1)):
                if not isinstance(intf.node, Switch):
                    continue
                if not isinstance(peer.node, VNFContainer):
                    continue
                switch = intf.node
                port_no = switch.port_number(intf)
                self.nexus.send(switch.dpid, FlowMod(
                    Match(in_port=port_no), actions=[],
                    priority=self.GUARD_PRIORITY))

    def stop(self) -> None:
        self._stop_series_sampler()
        for monitor in self.sla_monitors.values():
            if monitor.running:
                monitor.stop()
        self.sla_monitors.clear()
        self.recorder.detach_all()
        for chain in list(self.service_layer.services.values()):
            chain.undeploy()
        self.net.stop()
        self.started = False

    def run(self, duration: float) -> None:
        """Advance simulated time."""
        self.net.run(duration)

    # -- service layer API ----------------------------------------------------

    def add_mapper(self, name: str, mapper: Mapper) -> None:
        """Plug in a custom mapping algorithm."""
        self.mappers[name] = mapper

    def deploy_service(self, sg: Union[ServiceGraph, dict, str],
                       mapper: Union[str, Mapper] = "shortest-path",
                       match: Optional[Match] = None,
                       return_path: str = "direct") -> DeployedChain:
        """Demo steps (2)+(3): take an SG and map+deploy it."""
        if not self.started:
            raise RuntimeError("call start() before deploying services")
        tracer = self.telemetry.tracer
        with tracer.span("service.deploy") as root:
            with tracer.span("service.parse_sg"):
                if not isinstance(sg, ServiceGraph):
                    sg = load_service_graph(sg)
            root.tags["service"] = sg.name
            if isinstance(mapper, str):
                if mapper not in self.mappers:
                    raise KeyError(
                        "unknown mapper %r (have: %s)"
                        % (mapper, ", ".join(sorted(self.mappers))))
                mapper = self.mappers[mapper]
            self._m_service_deploys.inc()
            request = ServiceRequest(sg, match=match,
                                     return_path=return_path)
            chain = self.service_layer.submit(request, mapper)
        if self.sla_autostart and sg.requirements:
            self.watch_sla(chain)
        return chain

    def terminate_service(self, name: str) -> None:
        monitor = self.sla_monitors.pop(name, None)
        if monitor is not None and monitor.running:
            monitor.stop()
        self.service_layer.terminate(name)

    def inject_chaos(self, scenario) -> "ChaosEngine":
        """Arm a chaos scenario (a :class:`~repro.chaos.ChaosScenario`,
        a dict, a JSON string, or a file path) against this instance.
        Faults fire as the simulation advances; the recovery manager
        repairs what they break."""
        from repro.chaos import ChaosEngine, ChaosScenario
        if not isinstance(scenario, ChaosScenario):
            scenario = ChaosScenario.load(scenario)
        engine = ChaosEngine(self, scenario).arm()
        self.chaos_engines.append(engine)
        return engine

    def monitor(self, chain: DeployedChain,
                interval: float = 0.5) -> VNFMonitor:
        """Demo step (5): a Clicky-style monitor on a running chain."""
        monitor = VNFMonitor(chain, interval=interval)
        monitor.watch_catalog_defaults()
        return monitor

    def watch_sla(self, chain: DeployedChain, **options) -> SLAMonitor:
        """Start (or return the running) SLA conformance monitor for a
        deployed chain carrying NFFG requirements."""
        existing = self.sla_monitors.get(chain.sg.name)
        if existing is not None and existing.running:
            return existing
        monitor = SLAMonitor(chain, **options)
        monitor.start()
        self.sla_monitors[chain.sg.name] = monitor
        return monitor

    def health(self) -> dict:
        """One-look operational summary: per-chain SLA state, recent
        WARN/ERROR events, per-cause link drop attribution and
        flight-recorder occupancy."""
        from repro.telemetry import WARN as EV_WARN
        slas = {name: {"state": monitor.state,
                       "rounds": monitor.rounds,
                       "running": monitor.running}
                for name, monitor in sorted(self.sla_monitors.items())}
        alerts = [event.to_dict() for event in
                  self.telemetry.events.query(min_severity=EV_WARN,
                                              limit=20)]
        return {
            "time": self.sim.now,
            "services": {name: chain.active for name, chain
                         in self.service_layer.services.items()},
            "sla": slas,
            "alerts": alerts,
            "links": self.net.link_stats(),
            "flowtrace": self.telemetry.flowtrace.status(),
            "recorder": self.recorder.status(),
            "recovery": {
                "chain_state": dict(self.recovery.chain_state),
                "unrecovered": self.recovery.unrecovered(),
                "pending": self.recovery.pending(),
                "repairs": len([action for action
                                in self.recovery.actions
                                if action.get("ok")]),
            },
            "protection": {
                "enabled": self.orchestrator.protection,
                "protected_paths":
                    len(self.steering.protected_paths()),
                "flips": sum(switch.datapath.group_flip_count
                             for switch in self.net.switches()),
            },
        }

    def status(self) -> dict:
        """Structured snapshot of the whole framework: the "real-time
        management information" the paper's orchestration layer exposes.
        """
        services = {}
        for name, chain in self.service_layer.services.items():
            services[name] = {
                "active": chain.active,
                "mapper": chain.mapper.name,
                "placement": dict(chain.mapping.vnf_placement),
                "paths": len(chain.path_ids),
            }
        containers = {}
        for container in self.net.vnf_containers():
            snapshot = container.budget.snapshot()
            containers[container.name] = {
                "vnfs": sorted(container.vnfs),
                "cpu_used": snapshot["cpu_used"],
                "cpu_capacity": snapshot["cpu_capacity"],
                "mem_used": snapshot["mem_used"],
                "mem_capacity": snapshot["mem_capacity"],
                "free_interfaces": len(container.free_interfaces()),
            }
        switches = {}
        for switch in self.net.switches():
            switches[switch.name] = {
                "dpid": switch.dpid,
                "connected": switch.dpid in self.nexus.connections,
                "flows": len(switch.datapath.table),
                "packet_ins": switch.datapath.packet_in_count,
                "forwarded": switch.datapath.forwarded_count,
            }
        return {
            "time": self.sim.now,
            "started": self.started,
            "services": services,
            "containers": containers,
            "switches": switches,
            "steering_paths": len(self.steering.paths),
            "discovered_links": len(self.discovery.links()),
        }

    # -- telemetry ------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The unified metrics snapshot (all three layers)."""
        return self.telemetry.metrics.snapshot()

    def export_metrics(self, fmt: str = "json",
                       path: Optional[str] = None) -> str:
        """Serialize the telemetry snapshot as ``json`` or ``prom``
        text; optionally write it to ``path``.  Returns the text."""
        if path is not None:
            return write_snapshot(path, self.telemetry.metrics,
                                  self.telemetry.tracer, fmt=fmt,
                                  events=self.telemetry.events)
        if fmt == "json":
            return to_json(self.telemetry.metrics, self.telemetry.tracer,
                           events=self.telemetry.events)
        if fmt in ("prom", "prometheus"):
            return to_prometheus(self.telemetry.metrics)
        raise ValueError("unknown export format %r (json or prom)" % fmt)

    def last_trace(self):
        """The most recent chain-deployment trace tree (root Span), or
        None.  Sampled dataplane packet spans are skipped."""
        for trace in reversed(self.telemetry.tracer.traces):
            if trace.name == "service.deploy":
                return trace
        return None

    @property
    def profiler(self):
        """The scoped-region wall-clock profiler (off by default)."""
        return self.telemetry.profiler

    @property
    def accounting(self):
        """Per-event-kind dispatch accounting on the simulator loop
        (off by default, same overhead budget as the profiler)."""
        return self.sim.accounting

    @property
    def flowtrace(self):
        """Sampled per-packet path tracing (off by default; see
        :mod:`repro.telemetry.flowtrace`)."""
        return self.telemetry.flowtrace

    def cli(self) -> CLI:
        """The interactive console: Mininet-style network commands plus
        ESCAPE service commands (services / deploy / undeploy / migrate
        / topology / metrics / trace), the observability commands
        (health / sla / events / record / flowtrace / profile /
        dispatch / flame / top / series) and fault-injection commands
        (chaos)."""
        console = CLI(self.net)
        console.commands.update({
            "services": self._cli_services,
            "deploy": self._cli_deploy,
            "undeploy": self._cli_undeploy,
            "migrate": self._cli_migrate,
            "topology": self._cli_topology,
            "catalog": self._cli_catalog,
            "status": self._cli_status,
            "metrics": self._cli_metrics,
            "trace": self._cli_trace,
            "health": self._cli_health,
            "sla": self._cli_sla,
            "events": self._cli_events,
            "record": self._cli_record,
            "flowtrace": self._cli_flowtrace,
            "chaos": self._cli_chaos,
            "profile": self._cli_profile,
            "dispatch": self._cli_dispatch,
            "flame": self._cli_flame,
            "top": self._cli_top,
            "series": self._cli_series,
            "scenario": self._cli_scenario,
        })
        return console

    # -- CLI command handlers -------------------------------------------------

    def _cli_services(self, args) -> str:
        if not self.service_layer.services:
            return "no services deployed"
        lines = []
        for name, chain in sorted(self.service_layer.services.items()):
            placement = ", ".join("%s->%s" % item for item
                                  in chain.mapping.vnf_placement.items())
            lines.append("%s: %s [%s]"
                         % (name, placement,
                            "active" if chain.active else "down"))
        return "\n".join(lines)

    def _cli_deploy(self, args) -> str:
        if len(args) < 1:
            return ("usage: deploy <sg.json path> [mapper]\n"
                    "       (a JSON service-graph description file)")
        with open(args[0]) as handle:
            sg = load_service_graph(handle.read())
        mapper = args[1] if len(args) > 1 else "shortest-path"
        chain = self.deploy_service(sg, mapper=mapper)
        return "deployed %s: %r" % (sg.name, chain.mapping.vnf_placement)

    def _cli_undeploy(self, args) -> str:
        if len(args) != 1:
            return "usage: undeploy <service-name>"
        self.terminate_service(args[0])
        return "undeployed %s" % args[0]

    def _cli_migrate(self, args) -> str:
        if len(args) != 3:
            return "usage: migrate <service-name> <vnf> <container>"
        chain = self.service_layer.services.get(args[0])
        if chain is None:
            return "*** no service %r" % args[0]
        chain.migrate(args[1], args[2])
        return "migrated %s/%s to %s" % (args[0], args[1], args[2])

    def _cli_topology(self, args) -> str:
        report = self.orchestrator.verify_topology(self.discovery)
        if not report["missing"] and not report["unexpected"]:
            return "topology verified: view matches discovery"
        lines = []
        for pair in report["missing"]:
            lines.append("MISSING   %s -- %s (in view, not discovered)"
                         % pair)
        for pair in report["unexpected"]:
            lines.append("UNEXPECTED %s -- %s (discovered, not in view)"
                         % pair)
        return "\n".join(lines)

    def _cli_status(self, args) -> str:
        import json
        return json.dumps(self.status(), indent=2, sort_keys=True)

    def _cli_metrics(self, args) -> str:
        fmt = args[0] if args else "json"
        if fmt not in ("json", "prom", "prometheus"):
            return "usage: metrics [json|prom] [output-file]"
        path = args[1] if len(args) > 1 else None
        text = self.export_metrics(fmt, path)
        if path is not None:
            return "wrote %s snapshot to %s" % (fmt, path)
        return text

    def _cli_trace(self, args) -> str:
        trace = self.last_trace()
        if trace is None:
            return "no deployment trace recorded yet"
        return trace.render()

    def _cli_health(self, args) -> str:
        health = self.health()
        lines = ["t=%.3f  %d service(s)" % (health["time"],
                                            len(health["services"]))]
        for name, active in sorted(health["services"].items()):
            sla = health["sla"].get(name)
            sla_text = sla["state"] if sla else "unmonitored"
            lines.append("  %-20s %-8s sla=%s"
                         % (name, "active" if active else "down",
                            sla_text))
        if health["alerts"]:
            lines.append("recent alerts:")
            for alert in health["alerts"][-5:]:
                lines.append("  %.3f %-5s %s %s"
                             % (alert["time"], alert["severity"],
                                alert["name"], alert["message"]))
        else:
            lines.append("no WARN/ERROR events recorded")
        links = health["links"]
        lines.append("links: %d delivered, drops: down=%d loss=%d "
                     "queue=%d"
                     % (links["delivered"], links["dropped_down"],
                        links["dropped_loss"], links["dropped_queue"]))
        flowtrace = health["flowtrace"]
        if flowtrace["enabled"]:
            lines.append("flowtrace: 1/%d sampling, %d trace(s), "
                         "%d postcard(s)"
                         % (flowtrace["rate"], flowtrace["traces"],
                            flowtrace["postcards"]))
        taps = health["recorder"]
        lines.append("flight recorder: %d tap(s)" % len(taps))
        return "\n".join(lines)

    def _cli_sla(self, args) -> str:
        if args:
            monitor = self.sla_monitors.get(args[0])
            if monitor is None:
                return "*** no SLA monitor for %r" % args[0]
            return monitor.render()
        if not self.sla_monitors:
            return ("no SLA monitors running (deploy a service graph "
                    "with requirements)")
        return "\n".join(monitor.render() for _name, monitor
                         in sorted(self.sla_monitors.items()))

    def _cli_events(self, args) -> str:
        from repro.telemetry import SEVERITIES
        if args and args[0] == "jsonl":
            if len(args) != 2:
                return "usage: events jsonl <output-file>"
            count = self.telemetry.events.write_jsonl(args[1])
            return "wrote %d events to %s" % (count, args[1])
        from repro.telemetry import DEBUG as EV_DEBUG
        min_severity = EV_DEBUG
        limit = 20
        rest = list(args)
        if rest and rest[0].upper() in SEVERITIES:
            min_severity = rest.pop(0).upper()
        if rest:
            try:
                limit = int(rest[0])
            except ValueError:
                return "usage: events [debug|info|warn|error] [limit]"
        selected = self.telemetry.events.query(min_severity=min_severity,
                                               limit=limit)
        if not selected:
            return "no events recorded"
        return "\n".join(event.render() for event in selected)

    def _cli_record(self, args) -> str:
        recorder = self.recorder
        if not args or args[0] in ("list", "status"):
            return recorder.render()
        command, rest = args[0], args[1:]
        if command == "start":
            if len(rest) == 1:
                tap = recorder.attach(rest[0])
                return "recording %s" % tap.label
            if len(rest) == 2:
                links = self.net.links_between(rest[0], rest[1])
                if not links:
                    return "*** no link between %r and %r" % (rest[0],
                                                              rest[1])
                taps = [recorder.attach(link) for link in links]
                return "recording %s" % ", ".join(tap.label
                                                  for tap in taps)
            return "usage: record start <link-name> | <node1> <node2>"
        if command == "chain":
            if len(rest) != 1:
                return "usage: record chain <service-name>"
            chain = self.service_layer.services.get(rest[0])
            if chain is None:
                return "*** no service %r" % rest[0]
            taps = recorder.attach_chain(chain)
            return "recording %d link(s) of %s" % (len(taps), rest[0])
        if command == "stop":
            if rest == ["all"] or not rest:
                count = len(recorder.taps)
                recorder.detach_all()
                return "stopped %d tap(s)" % count
            try:
                recorder.detach(rest[0])
            except Exception as exc:
                return "*** %s" % exc
            return "stopped %s" % rest[0]
        if command == "pcap":
            if not rest:
                return "usage: record pcap <output-file> [trace-id]"
            trace_id = None
            if len(rest) > 1:
                try:
                    trace_id = int(rest[1])
                except ValueError:
                    return "*** trace-id must be an integer"
            count = recorder.export_pcap(rest[0], trace_id=trace_id)
            return "wrote %d frames to %s" % (count, rest[0])
        if command == "flow":
            if len(rest) != 1:
                return "usage: record flow <flowtrace-id>"
            try:
                flow_trace = int(rest[0], 0)
            except ValueError:
                return "*** flowtrace-id must be an integer"
            selected = recorder.records(flow_trace=flow_trace)
            lines = ["%d ring record(s) for flowtrace %08x"
                     % (len(selected), flow_trace)]
            lines.extend(record.render() for record in selected)
            trace = self.flowtrace._traces.get(flow_trace)
            if trace is not None:
                lines.append("%d postcard(s):" % len(trace.hops))
                for hop_time, kind, hop, dpid in trace.hops:
                    lines.append("  %.6f %-9s %s%s"
                                 % (hop_time, kind, hop,
                                    " dpid=%d" % dpid
                                    if dpid is not None else ""))
            return "\n".join(lines)
        return ("usage: record [list|status] | start <link|node1 node2> "
                "| chain <service> | stop <tap|all> | pcap <file> "
                "[trace-id] | flow <flowtrace-id>")

    def _cli_flowtrace(self, args) -> str:
        from repro.telemetry import render_flowtrace_report
        flowtrace = self.flowtrace
        if not args or args[0] == "status":
            status = flowtrace.status()
            return ("flowtrace %s: 1/%d sampling (seed %d), "
                    "%d trace(s), %d postcard(s), %d evicted, "
                    "%d path(s) registered"
                    % ("on" if status["enabled"] else "off",
                       status["rate"], status["seed"],
                       status["traces"], status["postcards"],
                       status["evicted"], status["paths_registered"]))
        command, rest = args[0], args[1:]
        if command == "on":
            try:
                flowtrace.enable(
                    rate=int(rest[0]) if rest else None,
                    seed=int(rest[1]) if len(rest) > 1 else None)
            except (ValueError, FlowTraceError) as exc:
                return "*** %s" % exc
            return ("flowtrace on: sampling 1/%d, seed %d"
                    % (flowtrace.rate, flowtrace.seed))
        if command == "off":
            flowtrace.disable()
            return "flowtrace off (%d trace(s) kept)" % len(flowtrace)
        if command == "reset":
            flowtrace.reset()
            return "flowtrace reset"
        if command == "report":
            report = flowtrace.publish(self.telemetry.metrics)
            return render_flowtrace_report(
                report, chain=rest[0] if rest else None)
        if command == "traces":
            limit = int(rest[0]) if rest else 10
            records = flowtrace.trace_records()[-limit:]
            if not records:
                return "no sampled traces collected"
            lines = ["%-10s %10s %6s %-20s %11s %s"
                     % ("TRACE", "T", "HOPS", "CHAIN", "ONE-WAY",
                        "CONFORMANT")]
            for record in records:
                lines.append("%08x %10.4f %6d %-20s %9.3fms %s"
                             % (record["trace"], record["time"],
                                len(record["hops"]),
                                record["chain"] or "-",
                                record["one_way"] * 1e3,
                                {True: "yes", False: "NO",
                                 None: "-"}[record["conformant"]]))
            return "\n".join(lines)
        if command == "chain":
            if len(rest) != 2:
                return "usage: flowtrace chain <name> <rate>"
            try:
                flowtrace.set_chain_rate(rest[0], int(rest[1]))
            except (ValueError, FlowTraceError) as exc:
                return "*** %s" % exc
            return "chain %s sampled at 1/%s" % (rest[0], rest[1])
        if command == "jsonl":
            if len(rest) != 1:
                return "usage: flowtrace jsonl <output-file>"
            count = flowtrace.write_jsonl(rest[0])
            return "wrote %d trace(s) to %s" % (count, rest[0])
        return ("usage: flowtrace [status] | on [rate] [seed] | off | "
                "reset | report [chain] | traces [limit] | "
                "chain <name> <rate> | jsonl <file>")

    def _cli_chaos(self, args) -> str:
        if not args or args[0] == "status":
            if not self.chaos_engines:
                return ("no chaos scenarios armed "
                        "(chaos run <scenario.json>)")
            lines = []
            for engine in self.chaos_engines:
                lines.append("%s: seed=%d, %d injected, %d active"
                             % (engine.scenario.name,
                                engine.scenario.seed,
                                len(engine.injections),
                                len(engine.active)))
                for record in engine.injections:
                    note = (" (skipped: %s)" % record["skipped"]
                            if "skipped" in record else "")
                    lines.append("  %.3f %-18s %s%s"
                                 % (record["time"], record["kind"],
                                    record["target"], note))
            return "\n".join(lines)
        command, rest = args[0], args[1:]
        if command == "run":
            if len(rest) != 1:
                return "usage: chaos run <scenario.json path>"
            try:
                engine = self.inject_chaos(rest[0])
            except Exception as exc:
                return "*** %s" % exc
            return ("armed %s: %d fault(s), seed %d"
                    % (engine.scenario.name,
                       len(engine.scenario.faults),
                       engine.scenario.seed))
        if command == "heal":
            healed = sum(engine.heal_all()
                         for engine in self.chaos_engines)
            return "healed %d active fault(s)" % healed
        if command == "recovery":
            lines = ["%d repair(s), %d pending, unrecovered: %s"
                     % (len([a for a in self.recovery.actions
                             if a.get("ok")]),
                        len(self.recovery.pending()),
                        ", ".join(self.recovery.unrecovered()) or "none")]
            for action in self.recovery.actions:
                if action.get("ok"):
                    lines.append("  %.3f %-8s %-24s mttr=%.3fs"
                                 % (action["time"], action["kind"],
                                    action["target"], action["mttr"]))
                else:
                    lines.append("  %.3f %-8s %-24s GAVE UP: %s"
                                 % (action["time"], action["kind"],
                                    action["target"], action["error"]))
            return "\n".join(lines)
        return "usage: chaos [status] | run <scenario.json> | heal | recovery"

    def _cli_profile(self, args) -> str:
        profiler = self.telemetry.profiler
        if not args or args[0] in ("report", "status"):
            state = "on" if profiler.enabled else "off"
            if not profiler.stats:
                return ("profiler is %s, no regions recorded "
                        "(profile on, then run traffic)" % state)
            return profiler.render_top(limit=0)
        command = args[0]
        if command == "on":
            profiler.enable()
            return "profiler enabled"
        if command == "off":
            profiler.disable()
            return "profiler disabled"
        if command == "reset":
            profiler.reset()
            return "profiler statistics cleared"
        return "usage: profile [on|off|reset|report]"

    def _cli_dispatch(self, args) -> str:
        acct = self.sim.accounting
        if not args or args[0] in ("report", "status"):
            state = "on" if acct.enabled else "off"
            if not acct.kinds:
                return ("dispatch accounting is %s, no events recorded "
                        "(dispatch on, then run traffic)" % state)
            return acct.render_top(limit=0)
        command = args[0]
        if command == "on":
            acct.enable()
            return "dispatch accounting enabled"
        if command == "off":
            acct.disable()
            return "dispatch accounting disabled"
        if command == "reset":
            acct.reset()
            return "dispatch accounting cleared"
        return "usage: dispatch [on|off|reset|report]"

    def _cli_flame(self, args) -> str:
        profiler = self.telemetry.profiler
        text = profiler.render_flame()
        if not text:
            return ("no profile data recorded "
                    "(profile on, then run traffic)")
        if args:
            from repro.telemetry import writable_path
            path = writable_path(args[0])
            with open(path, "w") as handle:
                handle.write(text + "\n")
            return ("wrote %d collapsed stack(s) to %s"
                    % (len(text.splitlines()), path))
        return text

    def _cli_top(self, args) -> str:
        profiler = self.telemetry.profiler
        limit = 10
        if args:
            try:
                limit = int(args[0])
            except ValueError:
                return "usage: top [n]"
        if not profiler.stats:
            return ("no profile data recorded "
                    "(profile on, then run traffic)")
        return profiler.render_top(limit=limit)

    def _cli_series(self, args) -> str:
        registry = self.telemetry.metrics
        if not args:
            names = registry.series_names()
            if not names:
                return ("no series recorded yet "
                        "(the sampler runs while the simulation "
                        "advances)")
            return "\n".join(names)
        name = args[0]
        window = None
        if len(args) > 1:
            try:
                window = float(args[1])
            except ValueError:
                return "usage: series [<metric> [window-seconds]]"
        from repro.telemetry import MetricError
        try:
            series = registry.series(name)
        except MetricError as exc:
            return "*** %s" % exc
        since = (self.sim.now - window) if window is not None else None
        stats = series.stats(since=since)
        if not stats["points"]:
            return "%s: no points in window" % name
        lines = ["%s: %d point(s)%s"
                 % (name, stats["points"],
                    " in last %.3fs" % window if window else "")]
        lines.append("  latest=%.6g  min=%.6g  max=%.6g  mean=%.6g"
                     % (stats["latest"], stats["min"], stats["max"],
                        stats["mean"]))
        if stats.get("rate") is not None:
            lines.append("  rate=%.6g/s  delta=%.6g  p50=%.6g  p90=%.6g"
                         % (stats["rate"], stats["delta"], stats["p50"],
                            stats["p90"]))
        if stats["evicted"]:
            lines.append("  (%d older point(s) evicted from the ring)"
                         % stats["evicted"])
        return "\n".join(lines)

    def _cli_scenario(self, args) -> str:
        """Read-only scenario-engine access from the console; full
        campaigns run through ``escape scenario run`` (repro.cli),
        which builds its own framework instance per seed."""
        from repro.scenario import (CHAIN_TEMPLATES, TOPOLOGY_KINDS,
                                    load_bundles, load_scenario,
                                    render_report)
        if not args or args[0] == "list":
            return ("topology kinds:  %s\nchain templates: %s"
                    % (", ".join(sorted(TOPOLOGY_KINDS)),
                       ", ".join(sorted(CHAIN_TEMPLATES))))
        command, rest = args[0], args[1:]
        if command == "show":
            if len(rest) != 1:
                return "usage: scenario show <scenario file>"
            try:
                scenario = load_scenario(rest[0])
            except Exception as exc:
                return "*** %s" % exc
            return ("%r\n%s" % (scenario, scenario.description)).rstrip()
        if command == "report":
            if not rest:
                return "usage: scenario report <bundle|results-dir>..."
            try:
                return render_report(load_bundles(rest))
            except Exception as exc:
                return "*** %s" % exc
        return ("usage: scenario [list] | show <file> | "
                "report <bundle|results-dir>... "
                "(campaigns: `escape scenario run` from the shell)")

    def _cli_catalog(self, args) -> str:
        lines = []
        for name in self.catalog.names():
            entry = self.catalog.get(name)
            params = ", ".join(entry.parameters()) or "-"
            lines.append("%-16s cpu=%.2f mem=%-6.0f params: %s"
                         % (name, entry.cpu, entry.mem, params))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "ESCAPE(%r, %d containers, %s)" % (
            self.net, len(self.agents),
            "started" if self.started else "stopped")
