"""Clicky-analog VNF monitoring.

Demo step (5): "monitor the VNFs with Clicky".  Clicky is Click's GUI
that polls element handlers; :class:`VNFMonitor` does the same through
the management plane — each poll is a ``getVNFInfo`` NETCONF RPC — and
keeps per-handler time series.
"""

from typing import Callable, Dict, List, Optional

from repro.core.orchestrator import DeployedChain


class MonitorSample:
    __slots__ = ("time", "value")

    def __init__(self, time: float, value: str):
        self.time = time
        self.value = value

    def as_float(self) -> Optional[float]:
        # TypeError covers None/odd handler replies, not just bad strings
        try:
            return float(self.value)
        except (TypeError, ValueError):
            return None

    def __repr__(self) -> str:
        return "MonitorSample(%.3f, %r)" % (self.time, self.value)


class VNFMonitor:
    """Periodic handler polling over NETCONF, with time series."""

    def __init__(self, chain: DeployedChain, interval: float = 0.5):
        self.chain = chain
        self.sim = chain.orchestrator.net.sim
        self.interval = interval
        # (vnf name, handler) -> samples
        self.series: Dict[tuple, List[MonitorSample]] = {}
        self._watch: List[tuple] = []
        self._task = None
        # polls/poll_errors live in the metrics registry now; the
        # properties below keep the old attributes working
        # (per-instance, via baseline offsets on the shared counters)
        metrics = chain.orchestrator.telemetry.metrics
        self._m_polls = metrics.counter(
            "core.monitor.polls", "getVNFInfo handler polls issued")
        self._m_poll_errors = metrics.counter(
            "core.monitor.poll_errors", "handler polls answered with "
            "rpc-error")
        self._polls_base = self._m_polls.value
        self._poll_errors_base = self._m_poll_errors.value
        self._events = chain.orchestrator.telemetry.events
        self._warned_unparseable: set = set()
        self.running = False
        self._callbacks: List[Callable] = []

    def watch(self, vnf_name: str, handler: str) -> None:
        """Add a handler to the polling set."""
        key = (vnf_name, handler)
        if key not in self._watch:
            self._watch.append(key)
            self.series.setdefault(key, [])

    def watch_catalog_defaults(self) -> None:
        """Watch every chain VNF's catalog-declared monitor handlers."""
        for vnf_name, vnf in self.chain.sg.vnfs.items():
            entry = self.chain.orchestrator.catalog.get(vnf.vnf_type)
            for handler in entry.monitor_handlers:
                self.watch(vnf_name, handler)

    def on_sample(self, callback: Callable[[str, str, MonitorSample],
                                           None]) -> None:
        """Live-dashboard hook: called for every new sample."""
        self._callbacks.append(callback)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._task = self.sim.schedule(0.0, self._poll_round)

    def stop(self) -> None:
        self.running = False
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _poll_round(self) -> None:
        if not self.running or not self.chain.active:
            self.running = False
            return
        for vnf_name, handler in self._watch:
            self._poll_one(vnf_name, handler)
        self._task = self.sim.schedule(self.interval, self._poll_round)

    def _poll_one(self, vnf_name: str, handler: str) -> None:
        """Issue one async handler read; record the sample on reply."""
        from repro.netconf.vnf_yang import VNF_NS
        from repro.netconf.messages import qn
        deployed = self.chain.vnfs.get(vnf_name)
        if deployed is None:
            return
        client = self.chain.orchestrator.netconf_client(deployed.container)
        self._m_polls.inc()
        pending = client.rpc("getVNFInfo", VNF_NS,
                             {"id": deployed.vnf_id, "handler": handler})

        def record(reply_handle, key=(vnf_name, handler)):
            if reply_handle.error is not None:
                self._m_poll_errors.inc()
                return
            value_el = reply_handle.reply.find(qn("value", VNF_NS))
            sample = MonitorSample(self.sim.now,
                                   value_el.text or ""
                                   if value_el is not None else "")
            if sample.as_float() is None \
                    and key not in self._warned_unparseable:
                # once per handler: textual handlers stay quiet after
                # the first heads-up
                self._warned_unparseable.add(key)
                self._events.warn(
                    "core.monitor", "monitor.unparseable_sample",
                    "%s/%s returned non-numeric %r" % (key[0], key[1],
                                                       sample.value),
                    vnf=key[0], handler=key[1])
            self.series[key].append(sample)
            for callback in self._callbacks:
                callback(key[0], key[1], sample)

        pending.on_done(record)

    # -- compat counter attributes -------------------------------------------

    @property
    def polls(self) -> int:
        return int(self._m_polls.value - self._polls_base)

    @property
    def poll_errors(self) -> int:
        return int(self._m_poll_errors.value - self._poll_errors_base)

    # -- queries ------------------------------------------------------------

    def latest(self, vnf_name: str, handler: str) -> Optional[MonitorSample]:
        samples = self.series.get((vnf_name, handler))
        return samples[-1] if samples else None

    def rate_of(self, vnf_name: str, handler: str) -> Optional[float]:
        """Delta/second between the last two numeric samples."""
        samples = self.series.get((vnf_name, handler), [])
        if len(samples) < 2:
            return None
        previous, current = samples[-2], samples[-1]
        prev_value, curr_value = previous.as_float(), current.as_float()
        if prev_value is None or curr_value is None \
                or current.time <= previous.time:
            return None
        return (curr_value - prev_value) / (current.time - previous.time)

    def dashboard(self) -> str:
        """One-line-per-handler textual snapshot."""
        lines = []
        for (vnf_name, handler) in self._watch:
            sample = self.latest(vnf_name, handler)
            rate = self.rate_of(vnf_name, handler)
            rate_text = " (%.1f/s)" % rate if rate is not None else ""
            lines.append("%-20s %-20s %s%s"
                         % (vnf_name, handler,
                            sample.value if sample else "-", rate_text))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "VNFMonitor(%d handlers, %d polls, %s)" % (
            len(self._watch), self.polls,
            "running" if self.running else "stopped")
