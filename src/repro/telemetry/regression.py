"""Perf-regression harness: profile snapshots and the comparator.

``benchmarks/run_profile.py`` drives a fixed demo-chain workload with
the profiler enabled and writes a ``BENCH_profile.json`` snapshot —
per-region timings plus key throughput numbers.  The snapshot that
ships in the repository is the committed baseline; CI re-runs the
workload and :func:`compare_profiles` flags any *guarded* region whose
normalized per-call self-time regressed beyond the threshold (15% by
default), so a PR that slows a hot path down fails visibly instead of
silently bending the trajectory.

Raw wall-clock numbers are machine-dependent, so every snapshot embeds
a *calibration unit* — the measured cost of a fixed pure-Python loop on
the same machine — and regions are compared by their calibration-
normalized score (``per_call_self / calibration``), which cancels
out most of the host-speed difference between the baseline machine
and the CI runner.
"""

import json
import os
import time
from typing import Any, Dict, List, Optional

SCHEMA_VERSION = 1

#: Regions the CI comparator guards by default: present in every
#: run of the standard workload and hot enough that a slowdown there
#: is a real finding, not noise.
DEFAULT_GUARDED = (
    "sim.event.dispatch",
    "netem.link.transmit",
    "click.element.push",
    "openflow.wire.encode",
    "openflow.wire.decode",
    "netconf.rpc.encode",
    "netconf.rpc.decode",
    "core.mapping.solve",
    "pox.steering.install",
)

#: Throughput numbers the gate *requires*: unlike the opportunistic
#: baseline-driven comparison (any shared number is checked), a guarded
#: throughput key missing from the current snapshot is itself a
#: failure — a workload change cannot silently drop the floor.
GUARDED_THROUGHPUT = (
    "udp_pps_wall",
)

CALIBRATION_LOOPS = 200_000


def calibrate(loops: int = CALIBRATION_LOOPS) -> float:
    """Seconds one fixed arithmetic loop takes on this machine — the
    normalization unit embedded in every profile snapshot."""
    best = None
    for _ in range(3):
        started = time.perf_counter()
        total = 0
        for index in range(loops):
            total += index * 3 % 7
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def profile_snapshot(profiler, throughput: Optional[Dict[str, float]] = None,
                     calibration: Optional[float] = None,
                     meta: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
    """The ``BENCH_profile.json`` structure for one profiled run."""
    if calibration is None:
        calibration = calibrate()
    regions: Dict[str, Any] = {}
    for name, stat in sorted(profiler.stats.items()):
        entry = stat.to_dict()
        entry["score"] = (stat.per_call / calibration
                          if calibration > 0 else 0.0)
        regions[name] = entry
    return {
        "schema": SCHEMA_VERSION,
        "calibration_s": calibration,
        "regions": regions,
        "throughput": dict(throughput or {}),
        "overhead_s": profiler.overhead,
        "entries": profiler.entries,
        "meta": dict(meta or {}),
    }


def write_profile(path, snapshot: Dict[str, Any]) -> str:
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return text


def load_profile(path) -> Dict[str, Any]:
    with open(os.fspath(path)) as handle:
        return json.load(handle)


def compare_profiles(baseline: Dict[str, Any], current: Dict[str, Any],
                     threshold: float = 0.15,
                     guarded: Optional[List[str]] = None
                     ) -> List[Dict[str, Any]]:
    """Regressions of ``current`` against ``baseline``.

    A guarded region regresses when its calibration-normalized score
    grew by more than ``threshold`` (fractional); a throughput number
    regresses when it *dropped* by more than ``threshold``.  Regions
    absent from either snapshot are skipped (a renamed region is a
    baseline update, not a regression) — except the
    :data:`GUARDED_THROUGHPUT` names, which the current snapshot must
    carry whenever the baseline does: a run that stops measuring
    ``udp_pps_wall`` would otherwise pass the gate with the floor
    silently gone.  Returns one record per finding; an empty list
    means the gate passes.
    """
    if guarded is None:
        guarded = list(DEFAULT_GUARDED)
    findings: List[Dict[str, Any]] = []
    base_regions = baseline.get("regions", {})
    cur_regions = current.get("regions", {})
    for name in guarded:
        base = base_regions.get(name)
        cur = cur_regions.get(name)
        if base is None or cur is None:
            continue
        base_score = base.get("score", 0.0)
        cur_score = cur.get("score", 0.0)
        if base_score <= 0.0:
            continue
        change = cur_score / base_score - 1.0
        if change > threshold:
            findings.append({
                "kind": "region", "name": name,
                "baseline_score": base_score, "current_score": cur_score,
                "change": change,
            })
    base_tp = baseline.get("throughput", {})
    cur_tp = current.get("throughput", {})
    for name in sorted(base_tp):
        if name not in cur_tp:
            if name in GUARDED_THROUGHPUT and base_tp[name] > 0.0:
                findings.append({
                    "kind": "throughput_missing", "name": name,
                    "baseline": base_tp[name],
                })
            continue
        if base_tp[name] <= 0.0:
            continue
        change = cur_tp[name] / base_tp[name] - 1.0
        if change < -threshold:
            findings.append({
                "kind": "throughput", "name": name,
                "baseline": base_tp[name], "current": cur_tp[name],
                "change": change,
            })
    return findings


def render_comparison(findings: List[Dict[str, Any]],
                      threshold: float = 0.15) -> str:
    if not findings:
        return ("perf gate PASS: no guarded region or throughput "
                "number regressed beyond %.0f%%" % (threshold * 100))
    lines = ["perf gate FAIL: %d regression(s) beyond %.0f%%"
             % (len(findings), threshold * 100)]
    for finding in findings:
        if finding["kind"] == "region":
            lines.append(
                "  region %-36s score %.3f -> %.3f (%+.1f%%)"
                % (finding["name"], finding["baseline_score"],
                   finding["current_score"], finding["change"] * 100))
        elif finding["kind"] == "throughput_missing":
            lines.append(
                "  throughput %-32s %.1f -> MISSING (guarded floor "
                "not measured)" % (finding["name"], finding["baseline"]))
        else:
            lines.append(
                "  throughput %-32s %.1f -> %.1f (%+.1f%%)"
                % (finding["name"], finding["baseline"],
                   finding["current"], finding["change"] * 100))
    return "\n".join(lines)
