"""In-band flow telemetry: sampled per-packet path tracing.

INT-style "postcard" telemetry for the emulated dataplane.  Every hop
that can delay a packet — link serialization/propagation in
``netem.link``, the OpenFlow pipeline, Click queue residency, VNF
traversal — re-derives a **trace id** from the frame bytes and, when
the packet is sampled, appends a postcard ``(time, kind, hop, dpid)``
to a bounded collector.  Nothing is added to the packet: the id is a
seeded CRC over the *trailing* bytes of the frame, which are invariant
under VLAN tagging/stripping (the tag is inserted after the source
MAC) and unique per packet for the workload/probe payloads (both embed
a per-packet send timestamp).

Sampling is deterministic: a packet is traced iff
``crc32(frame[-64:], seed) % rate == 0``, so the same seed and the
same scenario reproduce the byte-identical sampled set — the property
``tests/test_flowtrace.py`` locks down.  The hot-path discipline
matches the profiler: every instrumented site holds a bound-once
handle and the disabled path is one attribute check.

On top of the collector sit two consumers:

* :meth:`FlowTrace.aggregate` — per-chain hop-latency breakdowns
  (p50/p99/mean per hop plus each hop's attributed share of the
  one-way delay), classified by matching the sampled frame against the
  steering-registered chain matches;
* the **chain-conformance checker** — each sampled packet's observed
  switch-dpid sequence is compared against the steering-installed
  path; a packet that visits a switch off its chain's path (or out of
  order) raises a ``flowtrace.nonconformant`` event.  Protected paths
  register their backup dpids as acceptable alternates, so a
  fast-failover flip is not a false positive.

:class:`repro.pox.steering.TrafficSteering` registers/unregisters the
expected paths; :class:`repro.core.ESCAPE` exposes the bundle instance
as ``escape.flowtrace`` and through the ``flowtrace`` console command;
the campaign runner enables it per scenario (``flowtrace:`` key),
writes one JSONL line per trace, and embeds the aggregated report in
the result bundle (schema 4).
"""

import json
import os
import zlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional

__all__ = ["FlowTrace", "FlowTraceError", "load_flowtrace_report",
           "render_flowtrace_report", "report_from_jsonl"]


class FlowTraceError(Exception):
    pass


# How postcard kinds label the latency *delta* that ends at them: the
# time between a postcard and its predecessor is attributed to whatever
# the packet just crossed.
_DELTA_KIND = {
    "link.tx": "emit",     # node processing before entering the link
    "link.rx": "link",     # tx-queue wait + serialization + propagation
    "switch": "switch",    # OpenFlow pipeline
    "queue.in": "proc",    # element processing ahead of the queue
    "queue.out": "queue",  # queue residency
    "vnf.in": "vnf.in",    # hand-off from the device splice
    "vnf.out": "vnf",      # traversal of the element graph
}


def _delta_label(kind: str, hop: str) -> str:
    return "%s:%s" % (_DELTA_KIND.get(kind, kind), hop)


def _iter_deltas(hops: List[tuple]):
    """Yield ``(label, seconds)`` for consecutive postcards."""
    for index in range(1, len(hops)):
        prev_t = hops[index - 1][0]
        t, kind, hop = hops[index][0], hops[index][1], hops[index][2]
        yield _delta_label(kind, hop), t - prev_t


def _percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 1]); None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class _Trace:
    """One sampled packet: first frame bytes + its postcards."""

    __slots__ = ("id", "first", "frame", "hops")

    def __init__(self, trace_id: int, first: float, frame: bytes):
        self.id = trace_id
        self.first = first
        self.frame = frame       # as first seen: classification input
        self.hops: List[tuple] = []  # (time, kind, hop, dpid)


class _ExpectedPath:
    """One steering-installed path the conformance checker knows."""

    __slots__ = ("path_id", "chain", "match", "dpids", "alt_dpids")

    def __init__(self, path_id: str, chain: str, match,
                 dpids: List[int], alt_dpids: List[int]):
        self.path_id = path_id
        self.chain = chain
        self.match = match
        self.dpids = dpids
        self.alt_dpids = alt_dpids


class FlowTrace:
    """The postcard sampler, collector, aggregator and conformance
    checker.  Off by default; the disabled hot path is a single
    attribute check at every instrumented site."""

    DIGEST_TAIL = 64     # trailing frame bytes hashed into the trace id
    DEFAULT_RATE = 64    # sample 1 in N packets when enabled

    def __init__(self, events=None, rate: int = DEFAULT_RATE,
                 seed: int = 1, max_traces: int = 4096,
                 max_hops: int = 96):
        self.enabled = False
        self._events = events
        self.max_traces = max_traces
        self.max_hops = max_hops
        self.postcards = 0
        self.evicted = 0
        self.truncated = 0
        self._traces: "OrderedDict[int, _Trace]" = OrderedDict()
        self._paths: List[_ExpectedPath] = []
        self._chain_rates: Dict[str, int] = {}
        self._flagged: set = set()
        self.configure(rate=rate, seed=seed)

    # -- configuration / lifecycle ---------------------------------------

    def configure(self, rate: Optional[int] = None,
                  seed: Optional[int] = None) -> "FlowTrace":
        if rate is not None:
            if rate < 1:
                raise FlowTraceError("rate must be >= 1, got %r" % rate)
            self.rate = int(rate)
        if seed is not None:
            self.seed = int(seed)
            self._basis = self.seed & 0xFFFFFFFF
        return self

    def enable(self, rate: Optional[int] = None,
               seed: Optional[int] = None) -> "FlowTrace":
        self.configure(rate=rate, seed=seed)
        self.enabled = True
        return self

    def disable(self) -> "FlowTrace":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop collected traces (keeps config and path registry)."""
        self._traces.clear()
        self._flagged.clear()
        self.postcards = 0
        self.evicted = 0
        self.truncated = 0

    def set_chain_rate(self, chain: str, rate: int) -> None:
        """Coarsen sampling for one chain.  Applied at aggregation:
        a chain-rate trace set is the subset of the base-rate set with
        ``trace_id % rate == 0``, so it must be a multiple of the base
        rate to select anything."""
        rate = int(rate)
        if rate < self.rate or rate % self.rate:
            raise FlowTraceError(
                "chain rate %d must be a multiple of the base rate %d"
                % (rate, self.rate))
        self._chain_rates[chain] = rate

    # -- hot path ---------------------------------------------------------

    def digest(self, data: bytes) -> int:
        """The trace id of a frame: seeded CRC over its trailing bytes
        (invariant under VLAN tag insertion/removal)."""
        return zlib.crc32(data[-self.DIGEST_TAIL:], self._basis)

    def record(self, kind: str, hop: str, now: float, data: bytes,
               dpid: Optional[int] = None) -> None:
        """Append a postcard for ``data`` if it is sampled.  Call sites
        guard with ``if flowtrace.enabled:`` — this method assumes the
        sampler is on."""
        trace_id = zlib.crc32(data[-self.DIGEST_TAIL:], self._basis)
        if trace_id % self.rate:
            return
        traces = self._traces
        trace = traces.get(trace_id)
        if trace is None:
            if len(traces) >= self.max_traces:
                traces.popitem(last=False)
                self.evicted += 1
            trace = _Trace(trace_id, now, bytes(data))
            traces[trace_id] = trace
        hops = trace.hops
        if len(hops) >= self.max_hops:
            self.truncated += 1
            return
        hops.append((now, kind, hop, dpid))
        self.postcards += 1

    # -- expected-path registry (fed by pox steering) --------------------

    def register_path(self, path_id: str, chain: str, match,
                      dpids: List[int],
                      alt_dpids: Optional[List[int]] = None) -> None:
        self._paths.append(_ExpectedPath(path_id, chain, match,
                                         list(dpids),
                                         list(alt_dpids or [])))

    def unregister_path(self, path_id: str) -> None:
        self._paths = [path for path in self._paths
                       if path.path_id != path_id]

    def registered_paths(self) -> List[str]:
        return [path.path_id for path in self._paths]

    # -- classification / conformance -------------------------------------

    def _classify(self, trace: _Trace):
        """Which chain the sampled frame belongs to, with the expected
        dpid sequence: ``(chain, expected_dpids, allowed_dpids)`` or
        ``(None, [], set())`` when no registered match covers it."""
        if not self._paths:
            return None, [], set()
        # imported lazily: repro.openflow pulls repro.telemetry back in
        from repro.openflow.match import Match
        try:
            concrete = Match.from_packet(trace.frame)
        except Exception:
            return None, [], set()
        chain = None
        expected: List[int] = []
        allowed: set = set()
        for path in self._paths:
            if not path.match.matches(concrete):
                continue
            if chain is None:
                chain = path.chain
            if path.chain != chain:
                continue  # first matching chain wins
            expected.extend(path.dpids)
            allowed.update(path.dpids)
            allowed.update(path.alt_dpids)
        return chain, expected, allowed

    @staticmethod
    def _is_substring(observed: List[int], expected: List[int]) -> bool:
        if not observed:
            return True
        n = len(observed)
        for start in range(len(expected) - n + 1):
            if expected[start:start + n] == observed:
                return True
        return False

    def _conformant(self, trace: _Trace, expected: List[int],
                    allowed: set) -> bool:
        observed = [hop[3] for hop in trace.hops if hop[1] == "switch"]
        if self._is_substring(observed, expected):
            return True
        # a fast-failover flip legitimately detours through backup
        # switches; anything outside primary+backup is mis-steering
        if allowed != set(expected) and all(dpid in allowed
                                            for dpid in observed):
            return True
        return False

    # -- analysis ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._traces)

    def trace_records(self) -> List[Dict[str, Any]]:
        """One dict per sampled packet, in collection order."""
        records = []
        for trace in self._traces.values():
            chain, expected, allowed = self._classify(trace)
            record = {
                "trace": trace.id,
                "time": trace.first,
                "chain": chain,
                "one_way": (trace.hops[-1][0] - trace.hops[0][0]
                            if trace.hops else 0.0),
                "conformant": (self._conformant(trace, expected, allowed)
                               if chain is not None else None),
                "hops": [list(hop) for hop in trace.hops],
            }
            records.append(record)
        return records

    def aggregate(self, emit_events: bool = True) -> Dict[str, Any]:
        """The per-chain hop-latency breakdown + conformance report."""
        report: Dict[str, Any] = {
            "enabled": self.enabled,
            "rate": self.rate,
            "seed": self.seed,
            "traces": len(self._traces),
            "postcards": self.postcards,
            "evicted": self.evicted,
            "truncated": self.truncated,
            "paths_registered": len(self._paths),
            "unclassified": 0,
            "chains": {},
        }
        buckets: Dict[str, Dict[str, Any]] = {}
        for record in self.trace_records():
            chain = record["chain"]
            if chain is None:
                report["unclassified"] += 1
                continue
            chain_rate = self._chain_rates.get(chain, self.rate)
            if record["trace"] % chain_rate:
                continue  # chain sampled coarser than the base rate
            bucket = buckets.setdefault(chain, {
                "rate": chain_rate, "one_ways": [],
                "hops": OrderedDict(), "nonconformant": 0})
            bucket["one_ways"].append(record["one_way"])
            for label, delta in _iter_deltas(record["hops"]):
                bucket["hops"].setdefault(label, []).append(delta)
            if record["conformant"] is False:
                bucket["nonconformant"] += 1
                if emit_events and self._events is not None \
                        and record["trace"] not in self._flagged:
                    self._flagged.add(record["trace"])
                    observed = [hop[3] for hop in record["hops"]
                                if hop[1] == "switch"]
                    self._events.warn(
                        "telemetry.flowtrace", "flowtrace.nonconformant",
                        "chain %s packet %08x visited dpids %r off its "
                        "installed path" % (chain, record["trace"],
                                            observed),
                        chain=chain, trace=record["trace"],
                        observed=",".join(str(d) for d in observed))
        for chain, bucket in sorted(buckets.items()):
            report["chains"][chain] = _summarize_chain(bucket)
        return report

    report = aggregate

    # -- export -----------------------------------------------------------

    def publish(self, registry) -> Dict[str, Any]:
        """Run :meth:`aggregate` and push the per-chain results into a
        :class:`MetricsRegistry` (gauges get series rings for free via
        the sampler).  Returns the report."""
        report = self.aggregate()
        for chain, summary in report["chains"].items():
            labels = {"chain": chain}
            for quantile in ("p50", "p99"):
                value = summary["one_way"][quantile]
                if value is not None:
                    registry.gauge(
                        "flowtrace.chain.one_way_%s" % quantile,
                        "sampled one-way delay (%s)" % quantile,
                        labels=labels).set(value)
            registry.gauge("flowtrace.chain.traces",
                           "sampled packets aggregated per chain",
                           labels=labels).set(summary["traces"])
            registry.gauge("flowtrace.chain.nonconformant",
                           "sampled packets off their installed path",
                           labels=labels).set(summary["nonconformant"])
        return report

    def write_jsonl(self, path: str) -> int:
        """One line per sampled packet (plus a leading meta line);
        returns the number of trace lines written."""
        records = self.trace_records()
        with open(path, "w") as handle:
            meta = {"meta": {"rate": self.rate, "seed": self.seed,
                             "traces": len(records),
                             "postcards": self.postcards,
                             "evicted": self.evicted}}
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def status(self) -> Dict[str, Any]:
        return {"enabled": self.enabled, "rate": self.rate,
                "seed": self.seed, "traces": len(self._traces),
                "postcards": self.postcards, "evicted": self.evicted,
                "truncated": self.truncated,
                "paths_registered": len(self._paths)}

    def __repr__(self) -> str:
        return "FlowTrace(%s, 1/%d, %d traces, %d postcards)" % (
            "on" if self.enabled else "off", self.rate,
            len(self._traces), self.postcards)


def _summarize_chain(bucket: Dict[str, Any]) -> Dict[str, Any]:
    one_ways = bucket["one_ways"]
    total_one_way = sum(one_ways)
    hops = []
    attributed = 0.0
    for label, deltas in bucket["hops"].items():
        hop_total = sum(deltas)
        attributed += hop_total
        hops.append({
            "hop": label,
            "p50": _percentile(deltas, 0.5),
            "p99": _percentile(deltas, 0.99),
            "mean": hop_total / len(deltas),
            "share": (hop_total / total_one_way
                      if total_one_way else 0.0),
        })
    return {
        "rate": bucket["rate"],
        "traces": len(one_ways),
        "nonconformant": bucket["nonconformant"],
        "one_way": {
            "p50": _percentile(one_ways, 0.5),
            "p99": _percentile(one_ways, 0.99),
            "mean": (total_one_way / len(one_ways)
                     if one_ways else 0.0),
        },
        "attributed_ratio": (attributed / total_one_way
                             if total_one_way else 1.0),
        "hops": hops,
    }


# -- offline report loading (the `escape flowtrace` CLI) ----------------------

def report_from_jsonl(path: str) -> Dict[str, Any]:
    """Rebuild the aggregated report from a ``flowtrace.jsonl`` file
    (chain classification and conformance were already resolved when
    the lines were written)."""
    buckets: Dict[str, Dict[str, Any]] = {}
    meta: Dict[str, Any] = {}
    traces = unclassified = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "meta" in record:
                meta = record["meta"]
                continue
            traces += 1
            chain = record.get("chain")
            if chain is None:
                unclassified += 1
                continue
            bucket = buckets.setdefault(chain, {
                "rate": meta.get("rate", 0), "one_ways": [],
                "hops": OrderedDict(), "nonconformant": 0})
            bucket["one_ways"].append(record["one_way"])
            for label, delta in _iter_deltas(record["hops"]):
                bucket["hops"].setdefault(label, []).append(delta)
            if record.get("conformant") is False:
                bucket["nonconformant"] += 1
    report = {
        "rate": meta.get("rate"), "seed": meta.get("seed"),
        "traces": traces, "postcards": meta.get("postcards", 0),
        "evicted": meta.get("evicted", 0),
        "unclassified": unclassified, "chains": {},
    }
    for chain, bucket in sorted(buckets.items()):
        report["chains"][chain] = _summarize_chain(bucket)
    return report


def load_flowtrace_report(source: str) -> Dict[str, Any]:
    """A flowtrace report from a ``bundle.json``, a
    ``flowtrace.jsonl``, or a directory containing either."""
    if os.path.isdir(source):
        candidates = []
        for root, _dirs, files in os.walk(source):
            for name in files:
                if name in ("bundle.json", "flowtrace.jsonl"):
                    candidates.append(os.path.join(root, name))
        jsonls = [c for c in candidates if c.endswith(".jsonl")]
        bundles = [c for c in candidates if c.endswith("bundle.json")]
        for path in sorted(bundles) + sorted(jsonls):
            try:
                return load_flowtrace_report(path)
            except FlowTraceError:
                continue
        raise FlowTraceError(
            "no bundle.json/flowtrace.jsonl with a flowtrace section "
            "under %s" % source)
    if not os.path.exists(source):
        raise FlowTraceError("no such file: %s" % source)
    if source.endswith(".jsonl"):
        return report_from_jsonl(source)
    with open(source) as handle:
        data = json.load(handle)
    if "flowtrace" in data:
        return data["flowtrace"]
    if "chains" in data and "traces" in data:
        return data  # a bare report dump
    raise FlowTraceError("%s carries no flowtrace section" % source)


def _fmt_s(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return "%.3fms" % (value * 1e3)


def render_flowtrace_report(report: Dict[str, Any],
                            chain: Optional[str] = None) -> str:
    """The per-chain hop-latency table."""
    chains = report.get("chains", {})
    if chain is not None:
        if chain not in chains:
            return "no flowtrace data for chain %r (have: %s)" % (
                chain, ", ".join(sorted(chains)) or "none")
        chains = {chain: chains[chain]}
    lines = ["flowtrace: 1/%s sampling, seed %s — %d trace(s), "
             "%d unclassified"
             % (report.get("rate"), report.get("seed"),
                report.get("traces", 0), report.get("unclassified", 0))]
    if not chains:
        lines.append("no classified chains (enable sampling and drive "
                     "traffic through a steered chain)")
        return "\n".join(lines)
    for name, summary in sorted(chains.items()):
        one_way = summary["one_way"]
        lines.append("")
        lines.append("%s: %d trace(s) at 1/%d, one-way p50=%s p99=%s, "
                     "attributed %.1f%%, nonconformant %d"
                     % (name, summary["traces"], summary["rate"],
                        _fmt_s(one_way["p50"]), _fmt_s(one_way["p99"]),
                        100.0 * summary["attributed_ratio"],
                        summary["nonconformant"]))
        lines.append("  %-40s %10s %10s %10s %7s"
                     % ("HOP", "P50", "P99", "MEAN", "SHARE"))
        for hop in summary["hops"]:
            lines.append("  %-40s %10s %10s %10s %6.1f%%"
                         % (hop["hop"], _fmt_s(hop["p50"]),
                            _fmt_s(hop["p99"]), _fmt_s(hop["mean"]),
                            100.0 * hop["share"]))
    return "\n".join(lines)
