"""Metric primitives and the registry that unifies them.

Three instrument kinds cover the reproduction's needs:

* :class:`Counter` — monotonically increasing event counts,
* :class:`Gauge` — point-in-time values (set directly or computed by a
  collector callback at snapshot time),
* :class:`Histogram` — value distributions over a bounded ring buffer,
  with nearest-rank percentiles.

Every metric lives in a :class:`MetricsRegistry` under a dotted
``layer.component.name`` identifier and is timestamped from the
registry's clock — wired to ``Simulator.now`` by the ESCAPE facade, so
telemetry output is as deterministic as the simulation itself.

Hot paths (per-packet switch/link/element work) deliberately do *not*
call into metric objects: they keep their plain integer counters and a
registry *collector* callback pulls those values into gauges when a
snapshot is taken.  Control-path events (RPCs, deploys, mapping) use
Counter/Histogram objects directly.
"""

import re
from collections import deque
from typing import Any, Callable, Dict, List, Optional

# layer.component.name — lowercase dotted segments; the convention is
# three segments but deeper hierarchies are allowed.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_-]*)+$")


class MetricError(Exception):
    """Bad metric name, kind conflict, or illegal operation."""


def _default_clock() -> float:
    return 0.0


def labelled_key(name: str, labels: Optional[Dict[str, str]]) -> str:
    """Registry key for a (name, labels) pair: ``name{k=v,...}``."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join(
        "%s=%s" % (key, value) for key, value in sorted(labels.items())))


class Metric:
    """Base: a named instrument with a last-updated timestamp.

    ``labels`` (optional, immutable after creation) distinguish
    instances of one logical metric — e.g. ``sla.state`` per chain.
    Labelled metrics register under ``name{k=v}`` keys and export as
    Prometheus labelled series.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._clock = clock or _default_clock
        self.last_updated: Optional[float] = None

    @property
    def key(self) -> str:
        return labelled_key(self.name, self.labels)

    def _touch(self) -> None:
        self.last_updated = self._clock()

    def _base_snapshot(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"type": self.kind,
                                "last_updated": self.last_updated}
        if self.labels:
            data["labels"] = dict(self.labels)
        return data

    def snapshot(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.key)


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help, clock, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError("counter %s cannot decrease (inc by %r)"
                              % (self.name, amount))
        self.value += amount
        self._touch()

    def snapshot(self) -> Dict[str, Any]:
        data = self._base_snapshot()
        data["value"] = self.value
        return data


class Gauge(Metric):
    """A value that can go up and down, or be computed on demand."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help, clock, labels)
        self._value: float = 0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._value = value
        self._fn = None
        self._touch()

    def inc(self, amount: float = 1) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self._value - amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the value lazily at read time (callback gauge)."""
        self._fn = fn
        self._touch()

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def snapshot(self) -> Dict[str, Any]:
        data = self._base_snapshot()
        data["value"] = self.value
        return data


class Histogram(Metric):
    """A distribution over a bounded window of observations.

    Lifetime ``count``/``sum`` accumulate forever; percentiles are
    computed over the last ``size`` observations (a ring buffer), which
    bounds memory and keeps quantiles responsive to recent behaviour.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None,
                 size: int = 1024):
        super().__init__(name, help, clock, labels)
        if size <= 0:
            raise MetricError("histogram %s needs a positive window size"
                              % name)
        self.size = size
        self._window: deque = deque(maxlen=size)
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self._window.append(value)
        self.count += 1
        self.sum += value
        self._touch()

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the window (p in [0, 100])."""
        if not self._window:
            return None
        if p < 0 or p > 100:
            raise MetricError("percentile must be in [0, 100], got %r" % p)
        ordered = sorted(self._window)
        if p == 0:
            return ordered[0]
        rank = max(1, int(-(-p * len(ordered) // 100)))  # ceil
        return ordered[rank - 1]

    @property
    def window_values(self) -> List[float]:
        return list(self._window)

    def snapshot(self) -> Dict[str, Any]:
        window = list(self._window)
        data = self._base_snapshot()
        data.update({
            "count": self.count,
            "sum": self.sum,
            "window": len(window),
        })
        if window:
            data.update({
                "min": min(window),
                "max": max(window),
                "mean": sum(window) / len(window),
                "p50": self.percentile(50),
                "p90": self.percentile(90),
                "p99": self.percentile(99),
            })
        return data


class MetricsRegistry:
    """All instruments of one framework instance, by dotted name.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with one name return the same object, and asking for a name
    under a different kind is an error.  *Collectors* — callbacks
    invoked before every :meth:`snapshot` — let hot-path components
    export plain-integer counters without paying per-event costs.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock or _default_clock
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument creation ----------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Optional[Dict[str, str]] = None,
                       **kwargs) -> Metric:
        key = labelled_key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    "metric %r already registered as %s, not %s"
                    % (key, existing.kind, cls.kind))
            return existing
        if not _NAME_RE.match(name):
            raise MetricError(
                "bad metric name %r (want dotted layer.component.name)"
                % name)
        metric = cls(name, help, clock=self.clock, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  size: int = 1024) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   size=size)

    # -- access -----------------------------------------------------------

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[Metric]:
        return self._metrics.get(labelled_key(name, labels))

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- collectors and snapshots -----------------------------------------

    def add_collector(self,
                      fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before each snapshot; it receives the
        registry and typically sets gauges from live object state."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """{name: metric snapshot}, after running the collectors."""
        self.collect()
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}

    def __repr__(self) -> str:
        return "MetricsRegistry(%d metrics, %d collectors)" % (
            len(self._metrics), len(self._collectors))
