"""Metric primitives and the registry that unifies them.

Three instrument kinds cover the reproduction's needs:

* :class:`Counter` — monotonically increasing event counts,
* :class:`Gauge` — point-in-time values (set directly or computed by a
  collector callback at snapshot time),
* :class:`Histogram` — value distributions over a bounded ring buffer,
  with nearest-rank percentiles.

Every metric lives in a :class:`MetricsRegistry` under a dotted
``layer.component.name`` identifier and is timestamped from the
registry's clock — wired to ``Simulator.now`` by the ESCAPE facade, so
telemetry output is as deterministic as the simulation itself.

Hot paths (per-packet switch/link/element work) deliberately do *not*
call into metric objects: they keep their plain integer counters and a
registry *collector* callback pulls those values into gauges when a
snapshot is taken.  Control-path events (RPCs, deploys, mapping) use
Counter/Histogram objects directly.
"""

import re
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

# layer.component.name — lowercase dotted segments; the convention is
# three segments but deeper hierarchies are allowed.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_-]*)+$")


class MetricError(Exception):
    """Bad metric name, kind conflict, or illegal operation."""


def _default_clock() -> float:
    return 0.0


def labelled_key(name: str, labels: Optional[Dict[str, str]]) -> str:
    """Registry key for a (name, labels) pair: ``name{k=v,...}``."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join(
        "%s=%s" % (key, value) for key, value in sorted(labels.items())))


class Metric:
    """Base: a named instrument with a last-updated timestamp.

    ``labels`` (optional, immutable after creation) distinguish
    instances of one logical metric — e.g. ``sla.state`` per chain.
    Labelled metrics register under ``name{k=v}`` keys and export as
    Prometheus labelled series.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._clock = clock or _default_clock
        self.last_updated: Optional[float] = None

    @property
    def key(self) -> str:
        return labelled_key(self.name, self.labels)

    def _touch(self) -> None:
        self.last_updated = self._clock()

    def _base_snapshot(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"type": self.kind,
                                "last_updated": self.last_updated}
        if self.labels:
            data["labels"] = dict(self.labels)
        return data

    def snapshot(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.key)


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help, clock, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError("counter %s cannot decrease (inc by %r)"
                              % (self.name, amount))
        self.value += amount
        self._touch()

    def snapshot(self) -> Dict[str, Any]:
        data = self._base_snapshot()
        data["value"] = self.value
        return data


class Gauge(Metric):
    """A value that can go up and down, or be computed on demand."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help, clock, labels)
        self._value: float = 0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._value = value
        self._fn = None
        self._touch()

    def inc(self, amount: float = 1) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self._value - amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the value lazily at read time (callback gauge)."""
        self._fn = fn
        self._touch()

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def snapshot(self) -> Dict[str, Any]:
        data = self._base_snapshot()
        data["value"] = self.value
        return data


class Histogram(Metric):
    """A distribution over a bounded window of observations.

    Lifetime ``count``/``sum`` accumulate forever; percentiles are
    computed over the last ``size`` observations (a ring buffer), which
    bounds memory and keeps quantiles responsive to recent behaviour.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 clock: Optional[Callable[[], float]] = None,
                 labels: Optional[Dict[str, str]] = None,
                 size: int = 1024,
                 buckets: Optional[List[float]] = None):
        super().__init__(name, help, clock, labels)
        if size <= 0:
            raise MetricError("histogram %s needs a positive window size"
                              % name)
        self.size = size
        self._window: deque = deque(maxlen=size)
        self.count = 0
        self.sum: float = 0.0
        # optional explicit bucket bounds (Prometheus ``le`` upper
        # bounds, +Inf implied): lifetime counts kept per bucket
        self.bucket_bounds: Tuple[float, ...] = tuple(
            sorted(buckets)) if buckets else ()
        self._bucket_counts: List[int] = [0] * len(self.bucket_bounds)

    def observe(self, value: float) -> None:
        self._window.append(value)
        self.count += 1
        self.sum += value
        if self.bucket_bounds:
            index = bisect_left(self.bucket_bounds, value)
            if index < len(self._bucket_counts):
                self._bucket_counts[index] += 1
        self._touch()

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, always
        terminated by the mandatory ``(+Inf, lifetime count)``."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bucket_bounds, self._bucket_counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the window (p in [0, 100])."""
        if not self._window:
            return None
        if p < 0 or p > 100:
            raise MetricError("percentile must be in [0, 100], got %r" % p)
        ordered = sorted(self._window)
        if p == 0:
            return ordered[0]
        rank = max(1, int(-(-p * len(ordered) // 100)))  # ceil
        return ordered[rank - 1]

    @property
    def window_values(self) -> List[float]:
        return list(self._window)

    def snapshot(self) -> Dict[str, Any]:
        window = list(self._window)
        data = self._base_snapshot()
        data.update({
            "count": self.count,
            "sum": self.sum,
            "window": len(window),
        })
        if self.bucket_bounds:
            data["buckets"] = [[bound, count] for bound, count
                               in self.cumulative_buckets()[:-1]]
        if window:
            data.update({
                "min": min(window),
                "max": max(window),
                "mean": sum(window) / len(window),
                "p50": self.percentile(50),
                "p90": self.percentile(90),
                "p99": self.percentile(99),
            })
        return data


class Series:
    """Bounded (time, value) history of one metric — the trajectory
    behind a point-in-time snapshot.

    Points are appended by :meth:`MetricsRegistry.sample`; the ring
    bounds memory (oldest points evict first) and the query helpers
    turn the raw points into the questions operators actually ask:
    *how fast is this counter moving* (:meth:`rate`), *what has this
    gauge looked like recently* (:meth:`percentile`, :meth:`stats`).
    """

    def __init__(self, key: str, capacity: int = 512):
        if capacity <= 0:
            raise MetricError("series %s needs a positive capacity" % key)
        self.key = key
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0

    def append(self, time_stamp: float, value: float) -> None:
        self._ring.append((time_stamp, value))
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def evicted(self) -> int:
        """Points pushed out of the ring by newer ones."""
        return self.recorded - len(self._ring)

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(self._ring)

    def window(self, since: Optional[float] = None
               ) -> List[Tuple[float, float]]:
        """Points with timestamp >= ``since`` (all when None)."""
        if since is None:
            return list(self._ring)
        return [point for point in self._ring if point[0] >= since]

    def latest(self) -> Optional[Tuple[float, float]]:
        return self._ring[-1] if self._ring else None

    def values(self, since: Optional[float] = None) -> List[float]:
        return [value for _t, value in self.window(since)]

    def delta(self, since: Optional[float] = None) -> Optional[float]:
        """Value change across the window (None with <2 points)."""
        points = self.window(since)
        if len(points) < 2:
            return None
        return points[-1][1] - points[0][1]

    def rate(self, since: Optional[float] = None) -> Optional[float]:
        """Mean value change per time unit across the window — turns a
        sampled counter into events/second.  None with <2 points or a
        zero time span."""
        points = self.window(since)
        if len(points) < 2:
            return None
        span = points[-1][0] - points[0][0]
        if span <= 0:
            return None
        return (points[-1][1] - points[0][1]) / span

    def percentile(self, p: float,
                   since: Optional[float] = None) -> Optional[float]:
        """Nearest-rank percentile of the windowed values.  None on an
        empty window; a single sample is every percentile of itself.
        An out-of-range ``p`` raises regardless of window size — a bad
        argument is a caller bug, not a data condition."""
        if p < 0 or p > 100:
            raise MetricError("percentile must be in [0, 100], got %r" % p)
        values = self.values(since)
        if not values:
            return None
        ordered = sorted(values)
        if p == 0:
            return ordered[0]
        rank = max(1, int(-(-p * len(ordered) // 100)))  # ceil
        return ordered[rank - 1]

    def stats(self, since: Optional[float] = None) -> Dict[str, Any]:
        """One-call summary the CLI ``series`` command renders.

        The key set is fixed regardless of window size, so consumers
        can index without guarding: value keys are None on an empty
        window, and ``rate``/``delta`` are additionally None with
        fewer than two points (or a zero time span)."""
        values = self.values(since)
        data: Dict[str, Any] = {
            "points": len(values),
            "recorded": self.recorded,
            "evicted": self.evicted,
            "latest": values[-1] if values else None,
            "min": min(values) if values else None,
            "max": max(values) if values else None,
            "mean": sum(values) / len(values) if values else None,
            "p50": self.percentile(50, since),
            "p90": self.percentile(90, since),
            "rate": self.rate(since),
            "delta": self.delta(since),
        }
        return data

    def __repr__(self) -> str:
        return "Series(%s, %d/%d points)" % (self.key, len(self._ring),
                                             self.capacity)


class MetricsRegistry:
    """All instruments of one framework instance, by dotted name.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with one name return the same object, and asking for a name
    under a different kind is an error.  *Collectors* — callbacks
    invoked before every :meth:`snapshot` — let hot-path components
    export plain-integer counters without paying per-event costs.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 series_capacity: int = 512):
        self.clock = clock or _default_clock
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self.series_capacity = series_capacity
        self._series: Dict[str, Series] = {}
        # self-overhead accounting: the metrics layer measures its own
        # cost (host wall-clock) as first-class numbers
        self.collect_seconds = 0.0
        self.collect_count = 0
        self.sample_seconds = 0.0
        self.sample_count = 0

    # -- instrument creation ----------------------------------------------

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Optional[Dict[str, str]] = None,
                       **kwargs) -> Metric:
        key = labelled_key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    "metric %r already registered as %s, not %s"
                    % (key, existing.kind, cls.kind))
            return existing
        if not _NAME_RE.match(name):
            raise MetricError(
                "bad metric name %r (want dotted layer.component.name)"
                % name)
        metric = cls(name, help, clock=self.clock, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  size: int = 1024,
                  buckets: Optional[List[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   size=size, buckets=buckets)

    # -- access -----------------------------------------------------------

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[Metric]:
        return self._metrics.get(labelled_key(name, labels))

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- collectors and snapshots -----------------------------------------

    def add_collector(self,
                      fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before each snapshot; it receives the
        registry and typically sets gauges from live object state."""
        self._collectors.append(fn)

    def collect(self) -> None:
        started = time.perf_counter()
        for collector in self._collectors:
            collector(self)
        self.collect_seconds += time.perf_counter() - started
        self.collect_count += 1

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """{name: metric snapshot}, after running the collectors."""
        self.collect()
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}

    # -- time-series history ----------------------------------------------

    def sample(self) -> int:
        """Record one history point per metric (after running the
        collectors): counters and gauges contribute their value,
        histograms their lifetime observation count.  Returns the
        number of series appended to."""
        started = time.perf_counter()
        self.collect()
        now = self.clock()
        appended = 0
        for key, metric in self._metrics.items():
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = Series(
                    key, self.series_capacity)
            if isinstance(metric, Histogram):
                value = float(metric.count)
            else:
                value = float(metric.value)
            series.append(now, value)
            appended += 1
        self.sample_seconds += time.perf_counter() - started
        self.sample_count += 1
        return appended

    def series(self, name: str,
               labels: Optional[Dict[str, str]] = None) -> Series:
        """The history ring of one metric.  The metric must exist;
        a metric never sampled yet returns an empty series."""
        key = labelled_key(name, labels)
        if key not in self._metrics:
            raise MetricError("no metric %r to read a series from" % key)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = Series(key, self.series_capacity)
        return series

    def series_names(self) -> List[str]:
        """Keys that have at least one recorded history point."""
        return sorted(key for key, series in self._series.items()
                      if len(series))

    def __repr__(self) -> str:
        return "MetricsRegistry(%d metrics, %d collectors)" % (
            len(self._metrics), len(self._collectors))
