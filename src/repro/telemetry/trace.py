"""Span-based tracing over the simulated clock.

A *span* is one timed operation; spans opened while another span is
active become its children, so a chain deployment produces one tree::

    service.deploy
      service.parse_sg
      orchestrator.deploy
        orchestrator.map
        orchestrator.start_vnf
          netconf.rpc (startVNF)
          netconf.rpc (connectVNF)
        orchestrator.install_segment
          steering.install_path
            openflow.flow_mod

Spans are context managers and must be closed in LIFO order — which
Python's ``with`` nesting guarantees, including across simulator pumps
(a blocking ``PendingReply.result`` call runs nested callbacks to
completion inside the enclosing span, so their spans nest correctly).

All timestamps come from the tracer's clock (``Simulator.now`` when
bound by the ESCAPE facade), so traces are deterministic and span
durations measure *simulated* latency — e.g. a ``netconf.rpc`` span's
duration is the RPC's round trip over the emulated control network.
"""

import itertools
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("tracer", "name", "span_id", "parent", "tags", "start",
                 "end", "children", "status")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 tags: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent: Optional["Span"] = None
        self.tags = tags
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.status = "open"

    # -- context manager protocol ------------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._open(self)
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        self.tracer._close(self, error=exc_type is not None)
        return False  # never swallow

    # -- queries -----------------------------------------------------------

    @property
    def duration(self) -> Optional[float]:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def depth(self) -> int:
        """Levels in this subtree (a leaf span has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> List["Span"]:
        """All spans named ``name`` in this subtree."""
        return [span for span in self.iter_spans() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.tags:
            data["tags"] = dict(self.tags)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def render(self, indent: int = 0) -> str:
        """Indented one-line-per-span tree (the CLI ``trace`` output)."""
        duration = self.duration
        timing = ("%.6fs" % duration) if duration is not None else "?"
        tags = " ".join("%s=%s" % item for item in sorted(self.tags.items()))
        line = "%s%s [%s]%s" % ("  " * indent, self.name, timing,
                                (" " + tags) if tags else "")
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Span(%s, id=%d, %s)" % (self.name, self.span_id,
                                        self.status)


class _NullSpan:
    """No-op stand-in returned when a sampled span is skipped."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, tracks the active stack, keeps finished traces.

    Finished *root* spans (those with no parent) are retained in a
    bounded ring (``max_traces``); :attr:`last_trace` is the most
    recently completed one — for a chain deployment, the full deploy
    tree.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_traces: int = 16):
        self.clock = clock or (lambda: 0.0)
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self.traces: deque = deque(maxlen=max_traces)
        self.spans_started = 0

    def span(self, name: str, **tags: Any) -> Span:
        """A new span; use as ``with tracer.span("x"): ...``."""
        return Span(self, name, next(self._ids), tags)

    def sampled_span(self, name: str, seq: int, every: int,
                     **tags: Any):
        """``span(name)`` once per ``every`` calls (by the caller's
        ``seq`` counter); :data:`NULL_SPAN` otherwise.  For per-packet
        dataplane sampling."""
        if every <= 0 or seq % every:
            return NULL_SPAN
        return self.span(name, **tags)

    # -- stack management (driven by Span's context protocol) -------------

    def _open(self, span: Span) -> None:
        span.start = self.clock()
        if self._stack:
            span.parent = self._stack[-1]
            span.parent.children.append(span)
        self._stack.append(span)
        self.spans_started += 1

    def _close(self, span: Span, error: bool = False) -> None:
        span.end = self.clock()
        span.status = "error" if error else "ok"
        # LIFO discipline: with-blocks close innermost first.  Be
        # lenient about a missing frame (a span closed twice).
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if span.parent is None:
            self.traces.append(span)

    # -- queries -----------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def last_trace(self) -> Optional[Span]:
        return self.traces[-1] if self.traces else None

    def find_span(self, span_id: int) -> Optional[Span]:
        """Resolve a span id against the kept traces (and the open
        stack) — how a flight-recorder frame or an event joins back to
        its pipeline span."""
        for trace in self.traces:
            for span in trace.iter_spans():
                if span.span_id == span_id:
                    return span
        for open_span in self._stack:
            for span in open_span.iter_spans():
                if span.span_id == span_id:
                    return span
        return None

    def render_last(self) -> str:
        trace = self.last_trace
        return trace.render() if trace is not None else ""

    def reset(self) -> None:
        self._stack = []
        self.traces.clear()

    def __repr__(self) -> str:
        return "Tracer(%d traces kept, %d spans started, depth=%d)" % (
            len(self.traces), self.spans_started, len(self._stack))
