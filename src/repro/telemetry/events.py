"""Structured event log: the "what happened, and when" record.

Metrics say *how much*, traces say *how long*; events say *what
happened*.  Every layer emits :class:`Event` records — severity-
levelled, sim-clock timestamped, tagged, and (when a span is open)
correlated to the active trace — into one bounded ring buffer per
framework instance.  The log is queryable (by severity, source, name,
time window), streamable (subscriber callbacks, for live dashboards)
and exportable as JSON lines, so a degraded chain can be explained
after the fact: the SLA transition event, the steering restoration it
triggered, and the link flap that caused both all share one timeline.

Severity follows syslog's spirit with four levels::

    DEBUG < INFO < WARN < ERROR

Sources follow the metric convention (``layer.component``), names are
short dotted verbs (``chain.deployed``, ``sla.violated``,
``link.down``), and tags carry the specifics.
"""

import itertools
import json
import os
from collections import deque
from typing import Any, Callable, Dict, List, Optional

DEBUG = "DEBUG"
INFO = "INFO"
WARN = "WARN"
ERROR = "ERROR"

SEVERITIES = (DEBUG, INFO, WARN, ERROR)
_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


class EventError(Exception):
    """Bad severity or malformed emit call."""


def severity_rank(severity: str) -> int:
    try:
        return _RANK[severity]
    except KeyError:
        raise EventError("unknown severity %r (want one of %s)"
                         % (severity, "/".join(SEVERITIES)))


class Event:
    """One structured log record."""

    __slots__ = ("seq", "time", "severity", "source", "name", "message",
                 "trace_id", "tags")

    def __init__(self, seq: int, time: float, severity: str, source: str,
                 name: str, message: str = "",
                 trace_id: Optional[int] = None,
                 tags: Optional[Dict[str, Any]] = None):
        self.seq = seq
        self.time = time
        self.severity = severity
        self.source = source
        self.name = name
        self.message = message
        self.trace_id = trace_id
        self.tags = tags or {}

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "seq": self.seq,
            "time": self.time,
            "severity": self.severity,
            "source": self.source,
            "name": self.name,
        }
        if self.message:
            data["message"] = self.message
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.tags:
            data["tags"] = {key: value for key, value
                            in sorted(self.tags.items())}
        return data

    def to_json(self) -> str:
        """One JSON-lines record (keys sorted, so logs diff cleanly)."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)

    def render(self) -> str:
        """One human-readable line (the CLI ``events`` output)."""
        tags = " ".join("%s=%s" % item for item in sorted(self.tags.items()))
        trace = (" [trace %d]" % self.trace_id
                 if self.trace_id is not None else "")
        return "%10.6f %-5s %-20s %-22s %s%s%s" % (
            self.time, self.severity, self.source, self.name,
            self.message, (" " + tags) if tags else "", trace)

    def __repr__(self) -> str:
        return "Event(%s %s/%s @%.6f)" % (self.severity, self.source,
                                          self.name, self.time)


class EventLog:
    """Bounded, sim-clocked, trace-correlated structured log.

    ``capacity`` bounds memory (oldest records evict first);
    ``min_severity`` drops emits below the threshold before they cost
    anything; ``tracer`` (optional) stamps each event with the id of
    the span open at emit time, joining the event timeline to the
    trace tree.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 4096, tracer=None,
                 min_severity: str = DEBUG):
        if capacity <= 0:
            raise EventError("event log capacity must be positive")
        self.clock = clock or (lambda: 0.0)
        self.capacity = capacity
        self.tracer = tracer
        self.min_severity = min_severity
        self._ring: deque = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self.emitted = 0
        self.suppressed = 0
        self._by_severity: Dict[str, int] = {s: 0 for s in SEVERITIES}
        self._subscribers: List[Callable[[Event], None]] = []

    # -- emission ----------------------------------------------------------

    def emit(self, severity: str, source: str, name: str,
             message: str = "", trace_id: Optional[int] = None,
             **tags: Any) -> Optional[Event]:
        """Append one record; returns it (or None when below threshold)."""
        if severity_rank(severity) < severity_rank(self.min_severity):
            self.suppressed += 1
            return None
        if trace_id is None and self.tracer is not None:
            current = self.tracer.current
            if current is not None:
                trace_id = current.span_id
        event = Event(next(self._seq), self.clock(), severity, source,
                      name, message, trace_id, tags)
        self._ring.append(event)
        self.emitted += 1
        self._by_severity[severity] += 1
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def debug(self, source: str, name: str, message: str = "",
              **tags: Any) -> Optional[Event]:
        return self.emit(DEBUG, source, name, message, **tags)

    def info(self, source: str, name: str, message: str = "",
             **tags: Any) -> Optional[Event]:
        return self.emit(INFO, source, name, message, **tags)

    def warn(self, source: str, name: str, message: str = "",
             **tags: Any) -> Optional[Event]:
        return self.emit(WARN, source, name, message, **tags)

    def error(self, source: str, name: str, message: str = "",
              **tags: Any) -> Optional[Event]:
        return self.emit(ERROR, source, name, message, **tags)

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Live hook: called synchronously for every kept event."""
        self._subscribers.append(callback)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def evicted(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self.emitted - len(self._ring)

    def counts(self) -> Dict[str, int]:
        """Lifetime emit counts by severity (evictions included)."""
        return dict(self._by_severity)

    def events(self) -> List[Event]:
        return list(self._ring)

    def query(self, min_severity: str = DEBUG,
              source: Optional[str] = None, name: Optional[str] = None,
              since: Optional[float] = None,
              trace_id: Optional[int] = None,
              limit: Optional[int] = None) -> List[Event]:
        """Filter retained events; ``source`` matches prefixes, so
        ``core`` selects every core-layer component."""
        floor = severity_rank(min_severity)
        selected = []
        for event in self._ring:
            if severity_rank(event.severity) < floor:
                continue
            if source is not None and not (
                    event.source == source
                    or event.source.startswith(source + ".")):
                continue
            if name is not None and event.name != name:
                continue
            if since is not None and event.time < since:
                continue
            if trace_id is not None and event.trace_id != trace_id:
                continue
            selected.append(event)
        if limit is not None and limit >= 0:
            selected = selected[-limit:]
        return selected

    # -- export ------------------------------------------------------------

    def to_jsonl(self, min_severity: str = DEBUG) -> str:
        """The retained events as JSON lines, oldest first."""
        return "\n".join(event.to_json()
                         for event in self.query(min_severity))

    def write_jsonl(self, path, min_severity: str = DEBUG) -> int:
        """Write the retained events to ``path`` (str or Path; missing
        parent directories are created); returns the count."""
        events = self.query(min_severity)
        path = os.fspath(path)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            for event in events:
                handle.write(event.to_json() + "\n")
        return len(events)

    def render(self, min_severity: str = DEBUG,
               limit: Optional[int] = 20) -> str:
        events = self.query(min_severity, limit=limit)
        if not events:
            return "no events recorded"
        return "\n".join(event.render() for event in events)

    def __repr__(self) -> str:
        return "EventLog(%d kept / %d emitted, capacity=%d)" % (
            len(self._ring), self.emitted, self.capacity)
