"""The event-core flight deck: unified perf attribution and diffing.

The measurement layers each answer one question — the profiler *how
much* wall-clock the framework burns per region, the simulator's
dispatch accounting *which event kinds* the dispatcher works for, the
workload drivers *what throughput* came out the other end.  This module
merges the three into one **attribution report**: a machine-readable
JSON structure plus a top-consumers rendering, built from live objects
(:func:`build_report`), from a scenario result bundle
(:func:`report_from_bundle`), or from any JSON file a perf workflow
already produces (:func:`load_report` understands attribution reports,
``BENCH_profile.json`` snapshots, and schema-2 ``bundle.json`` files).

Reports embed the same *calibration unit* the regression harness uses
(:mod:`repro.telemetry.regression`), so :func:`diff_reports` can
compare two reports taken on different machines by their
calibration-normalized scores — ``escape perf diff`` is the
before/after tool of the perf arc, and it reuses the committed
``BENCH_profile.json`` threshold gate in CI.
"""

import json
import os
from typing import Any, Dict, List, Optional

from repro.telemetry.regression import (DEFAULT_GUARDED, compare_profiles,
                                        render_comparison)

REPORT_SCHEMA = 1

#: Dispatch-time coverage tolerance: per-kind self-times must sum to
#: within this fraction of the profiler's inclusive dispatch time for
#: the two layers to corroborate each other.
COVERAGE_TOLERANCE = 0.10

DISPATCH_REGION = "sim.event.dispatch"


class IntrospectError(Exception):
    """Unreadable or unrecognizable perf source."""


def _scored(entries: Dict[str, Any],
            calibration: Optional[float]) -> Dict[str, Any]:
    """Copy of ``entries`` with a calibration-normalized ``score``
    (``per_call_s / calibration``) on every record."""
    scored: Dict[str, Any] = {}
    for name in sorted(entries):
        entry = dict(entries[name])
        if calibration and calibration > 0:
            entry["score"] = entry.get("per_call_s", 0.0) / calibration
        else:
            entry.setdefault("score", 0.0)
        scored[name] = entry
    return scored


def _coverage(dispatch: Dict[str, Any],
              regions: Dict[str, Any]) -> Dict[str, Any]:
    """How well per-kind self-times reconcile with the profiler's
    inclusive ``sim.event.dispatch`` time (None ratio when either side
    did not measure)."""
    kinds_self = dispatch.get("self_seconds")
    dispatch_region = regions.get(DISPATCH_REGION, {})
    dispatch_cum = dispatch_region.get("cum_s")
    ratio = None
    if kinds_self is not None and dispatch_cum:
        ratio = kinds_self / dispatch_cum
    return {
        "kinds_self_s": kinds_self,
        "dispatch_cum_s": dispatch_cum,
        "ratio": ratio,
        "tolerance": COVERAGE_TOLERANCE,
    }


def build_report(profiler=None, accounting=None,
                 throughput: Optional[Dict[str, float]] = None,
                 calibration: Optional[float] = None,
                 meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """One attribution report from live measurement objects.

    Any of the three sources may be absent (``None``); the report
    carries whatever was measured.  ``calibration`` is the
    machine-speed unit from :func:`repro.telemetry.regression.
    calibrate` — without it scores default to 0 and the report can
    still be rendered, but not meaningfully diffed across machines.
    """
    regions: Dict[str, Any] = {}
    if profiler is not None:
        regions = _scored(
            {name: stat.to_dict()
             for name, stat in profiler.stats.items()}, calibration)
    dispatch: Dict[str, Any] = {}
    if accounting is not None:
        # a live DispatchAccounting, or an already-rendered report
        # dict (e.g. kept from the best benchmark round)
        dispatch = (dict(accounting) if isinstance(accounting, dict)
                    else accounting.report())
    if dispatch.get("kinds"):
        dispatch["kinds"] = _scored(dispatch["kinds"], calibration)
    return {
        "schema": REPORT_SCHEMA,
        "kind": "attribution",
        "calibration_s": calibration,
        "regions": regions,
        "dispatch": dispatch,
        "throughput": dict(throughput or {}),
        "coverage": _coverage(dispatch, regions),
        "meta": dict(meta or {}),
    }


def report_from_bundle(bundle: Dict[str, Any]) -> Dict[str, Any]:
    """An attribution report out of a scenario result bundle
    (schema 2: carries ``dispatch`` and ``calibration_s``; a
    ``profiler`` section appears when the scenario enabled
    profiling)."""
    calibration = bundle.get("calibration_s")
    dispatch = dict(bundle.get("dispatch") or {})
    if dispatch.get("kinds"):
        dispatch["kinds"] = _scored(dispatch["kinds"], calibration)
    meta = {
        "source": "bundle",
        "scenario": bundle.get("scenario", {}).get("name"),
        "seed": bundle.get("seed"),
        "sim_duration": bundle.get("sim_duration"),
        "wall_seconds": bundle.get("wall_seconds"),
    }
    regions = _scored(bundle.get("profiler") or {}, calibration)
    return {
        "schema": REPORT_SCHEMA,
        "kind": "attribution",
        "calibration_s": calibration,
        "regions": regions,
        "dispatch": dispatch,
        "throughput": dict(bundle.get("throughput") or {}),
        "coverage": _coverage(dispatch, regions),
        "meta": meta,
    }


def coerce_report(data: Dict[str, Any],
                  source: str = "<data>") -> Dict[str, Any]:
    """Normalize any recognized perf JSON into an attribution report.

    Recognized shapes: an attribution report (passed through), a
    scenario result bundle (``seed`` + ``workload``/``scenario``), and
    a ``BENCH_profile.json`` regression snapshot (``regions`` +
    ``calibration_s``)."""
    if not isinstance(data, dict):
        raise IntrospectError("%s: perf source must be a JSON object"
                              % source)
    if data.get("kind") == "attribution":
        return data
    if "seed" in data and ("workload" in data or "scenario" in data):
        return report_from_bundle(data)
    if "regions" in data:
        calibration = data.get("calibration_s")
        return {
            "schema": REPORT_SCHEMA,
            "kind": "attribution",
            "calibration_s": calibration,
            "regions": _scored(data.get("regions") or {}, calibration),
            "dispatch": dict(data.get("dispatch") or {}),
            "throughput": dict(data.get("throughput") or {}),
            "coverage": _coverage(data.get("dispatch") or {},
                                  data.get("regions") or {}),
            "meta": dict(data.get("meta") or {},
                         source="profile-snapshot"),
        }
    raise IntrospectError(
        "%s: not an attribution report, profile snapshot, or result "
        "bundle (keys: %s)" % (source, ", ".join(sorted(data)[:8])))


def load_report(path) -> Dict[str, Any]:
    """Attribution report from a JSON file or a results directory
    containing exactly one ``bundle.json``."""
    path = os.fspath(path)
    if os.path.isdir(path):
        found: List[str] = []
        for root, _dirs, names in os.walk(path):
            found.extend(os.path.join(root, name) for name in names
                         if name == "bundle.json")
        if not found:
            raise IntrospectError("%s: no bundle.json underneath" % path)
        if len(found) > 1:
            raise IntrospectError(
                "%s: %d bundles underneath — name one (%s, ...)"
                % (path, len(found), sorted(found)[0]))
        path = found[0]
    if not os.path.isfile(path):
        raise IntrospectError("no such perf source: %s" % path)
    with open(path) as handle:
        try:
            data = json.load(handle)
        except ValueError as exc:
            raise IntrospectError("%s: invalid JSON (%s)" % (path, exc))
    return coerce_report(data, source=path)


# -- diffing ------------------------------------------------------------------


def _score_deltas(base: Dict[str, Any], cur: Dict[str, Any],
                  value_key: str = "score") -> List[Dict[str, Any]]:
    """Fractional change of every name present in both maps with a
    positive baseline value, biggest mover first."""
    deltas = []
    for name in sorted(set(base) & set(cur)):
        base_value = base[name].get(value_key, 0.0) or 0.0
        cur_value = cur[name].get(value_key, 0.0) or 0.0
        if base_value <= 0.0:
            continue
        deltas.append({
            "name": name,
            "baseline": base_value,
            "current": cur_value,
            "delta": cur_value / base_value - 1.0,
        })
    deltas.sort(key=lambda item: (-abs(item["delta"]), item["name"]))
    return deltas


def diff_reports(baseline: Dict[str, Any], current: Dict[str, Any],
                 threshold: float = 0.15,
                 guarded: Optional[List[str]] = None) -> Dict[str, Any]:
    """Calibration-normalized comparison of two attribution reports.

    ``regions`` and ``dispatch`` deltas compare normalized scores
    (machine speed cancels), ``throughput`` compares raw numbers.
    ``findings`` reuses the regression harness's guarded gate
    (:func:`repro.telemetry.regression.compare_profiles`): guarded
    regions that slowed beyond ``threshold``, throughput floors that
    dropped or vanished.  An empty findings list means the gate
    passes."""
    baseline = coerce_report(baseline, "<baseline>")
    current = coerce_report(current, "<current>")
    region_deltas = _score_deltas(baseline.get("regions") or {},
                                  current.get("regions") or {})
    kind_deltas = _score_deltas(
        (baseline.get("dispatch") or {}).get("kinds") or {},
        (current.get("dispatch") or {}).get("kinds") or {})
    throughput_deltas = []
    base_tp = baseline.get("throughput") or {}
    cur_tp = current.get("throughput") or {}
    for name in sorted(set(base_tp) & set(cur_tp)):
        if not base_tp[name]:
            continue
        throughput_deltas.append({
            "name": name, "baseline": base_tp[name],
            "current": cur_tp[name],
            "delta": cur_tp[name] / base_tp[name] - 1.0,
        })
    findings = compare_profiles(baseline, current, threshold=threshold,
                                guarded=guarded)
    all_deltas = [item["delta"] for item in
                  region_deltas + kind_deltas + throughput_deltas]
    return {
        "threshold": threshold,
        "guarded": list(guarded if guarded is not None
                        else DEFAULT_GUARDED),
        "normalized": bool(baseline.get("calibration_s")
                           and current.get("calibration_s")),
        "regions": region_deltas,
        "dispatch": kind_deltas,
        "throughput": throughput_deltas,
        "max_abs_delta": max((abs(d) for d in all_deltas), default=0.0),
        "findings": findings,
    }


# -- rendering ----------------------------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    return "%.6f" % value if value is not None else "-"


def render_report(report: Dict[str, Any], limit: int = 12) -> str:
    """The human top-consumers view of one attribution report."""
    report = coerce_report(report)
    lines: List[str] = []
    meta = report.get("meta") or {}
    header = "perf attribution"
    if meta.get("scenario") is not None:
        header += " — %s seed %s" % (meta["scenario"], meta.get("seed"))
    calibration = report.get("calibration_s")
    if calibration:
        header += " (calibration %.6fs)" % calibration
    lines.append(header)

    dispatch = report.get("dispatch") or {}
    kinds = dispatch.get("kinds") or {}
    if kinds:
        total = dispatch.get("self_seconds") or sum(
            entry.get("self_s", 0.0) for entry in kinds.values()) or 1.0
        lines.append("dispatch accounting — %d event(s), %ss self"
                     % (dispatch.get("dispatched", 0),
                        _fmt_seconds(dispatch.get("self_seconds"))))
        lines.append("  %-42s %9s %11s %7s %10s"
                     % ("event kind", "count", "self(s)", "self%",
                        "score"))
        ordered = sorted(kinds.items(),
                         key=lambda item: -item[1].get("self_s", 0.0))
        for name, entry in ordered[:limit] if limit else ordered:
            lines.append("  %-42s %9d %11.6f %6.1f%% %10.4g"
                         % (name, entry.get("count", 0),
                            entry.get("self_s", 0.0),
                            100.0 * entry.get("self_s", 0.0) / total,
                            entry.get("score", 0.0)))
        if limit and len(kinds) > limit:
            lines.append("  ... %d more kind(s)" % (len(kinds) - limit))
        lines.append(
            "  coalescable %d/%d (%.1f%%), cancelled churn %d, "
            "late %d, peak heap %d"
            % (dispatch.get("coalescable", 0),
               dispatch.get("dispatched", 0),
               100.0 * dispatch.get("coalescable_ratio", 0.0),
               dispatch.get("cancelled_popped", 0),
               (dispatch.get("lag") or {}).get("late", 0),
               (dispatch.get("heap") or {}).get("max_depth", 0)))

    regions = report.get("regions") or {}
    if regions:
        lines.append("profiler regions")
        lines.append("  %-42s %9s %11s %11s %10s"
                     % ("region", "calls", "self(s)", "cum(s)", "score"))
        ordered = sorted(regions.items(),
                         key=lambda item: -item[1].get("self_s", 0.0))
        for name, entry in ordered[:limit] if limit else ordered:
            lines.append("  %-42s %9d %11.6f %11.6f %10.4g"
                         % (name, entry.get("calls", 0),
                            entry.get("self_s", 0.0),
                            entry.get("cum_s", 0.0),
                            entry.get("score", 0.0)))
        if limit and len(regions) > limit:
            lines.append("  ... %d more region(s)"
                         % (len(regions) - limit))

    coverage = report.get("coverage") or {}
    if coverage.get("ratio") is not None:
        lines.append(
            "coverage: kind self-times sum to %.1f%% of profiler "
            "%s cum (%ss / %ss)"
            % (100.0 * coverage["ratio"], DISPATCH_REGION,
               _fmt_seconds(coverage.get("kinds_self_s")),
               _fmt_seconds(coverage.get("dispatch_cum_s"))))

    throughput = report.get("throughput") or {}
    if throughput:
        lines.append("throughput: " + "  ".join(
            "%s=%.4g" % item for item in sorted(throughput.items())))
    if len(lines) == 1:
        lines.append("(no dispatch, region, or throughput data)")
    return "\n".join(lines)


def render_diff(diff: Dict[str, Any], limit: int = 10) -> str:
    """The human view of :func:`diff_reports` output."""
    lines: List[str] = []
    lines.append(
        "perf diff (%s scores, threshold %.0f%%): max |delta| %.2f%%"
        % ("calibration-normalized" if diff.get("normalized")
           else "raw per-call", diff["threshold"] * 100,
           100.0 * diff.get("max_abs_delta", 0.0)))
    for section, label in (("regions", "region"),
                           ("dispatch", "dispatch kind"),
                           ("throughput", "throughput")):
        deltas = diff.get(section) or []
        if not deltas:
            continue
        lines.append("%s deltas (%d compared):" % (label, len(deltas)))
        for item in deltas[:limit]:
            lines.append("  %-44s %10.4g -> %10.4g  %+7.2f%%"
                         % (item["name"], item["baseline"],
                            item["current"], item["delta"] * 100))
        if len(deltas) > limit:
            lines.append("  ... %d more" % (len(deltas) - limit))
    lines.append(render_comparison(diff.get("findings") or [],
                                   diff["threshold"]))
    return "\n".join(lines)
