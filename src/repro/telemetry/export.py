"""Telemetry exporters: JSON snapshots and Prometheus text format.

Both formats are pure functions of the registry (and optionally the
tracer), so exporting twice without advancing the simulation yields
byte-identical output — snapshots can be diffed across runs.
"""

import json
import re
from typing import Any, Dict, Optional

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.trace import Tracer

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def snapshot_dict(registry: MetricsRegistry,
                  tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """The canonical snapshot structure both exporters build on."""
    data: Dict[str, Any] = {
        "time": registry.clock(),
        "metrics": registry.snapshot(),
    }
    if tracer is not None:
        data["traces"] = [trace.to_dict() for trace in tracer.traces]
    return data


def to_json(registry: MetricsRegistry, tracer: Optional[Tracer] = None,
            indent: Optional[int] = 2) -> str:
    return json.dumps(snapshot_dict(registry, tracer), indent=indent,
                      sort_keys=True)


def prometheus_name(name: str) -> str:
    """``layer.component.name`` -> ``layer_component_name``."""
    return _PROM_BAD.sub("_", name)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus exposition text: counters and gauges as-is,
    histograms as summaries (quantile series plus _count/_sum)."""
    registry.collect()
    lines = []
    for metric in registry.metrics():
        name = prometheus_name(metric.name)
        if metric.help:
            lines.append("# HELP %s %s" % (name, metric.help))
        if isinstance(metric, Histogram):
            lines.append("# TYPE %s summary" % name)
            for quantile in (0.5, 0.9, 0.99):
                value = metric.percentile(quantile * 100)
                if value is not None:
                    lines.append('%s{quantile="%g"} %s'
                                 % (name, quantile, _fmt(value)))
            lines.append("%s_count %d" % (name, metric.count))
            lines.append("%s_sum %s" % (name, _fmt(metric.sum)))
        else:
            lines.append("# TYPE %s %s" % (name, metric.kind))
            lines.append("%s %s" % (name, _fmt(metric.value)))
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def write_snapshot(path: str, registry: MetricsRegistry,
                   tracer: Optional[Tracer] = None,
                   fmt: str = "json") -> str:
    """Write a snapshot to ``path``; returns the serialized text."""
    if fmt == "json":
        text = to_json(registry, tracer)
    elif fmt in ("prom", "prometheus"):
        text = to_prometheus(registry)
    else:
        raise ValueError("unknown export format %r (json or prom)" % fmt)
    with open(path, "w") as handle:
        handle.write(text)
    return text
