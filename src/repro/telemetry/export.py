"""Telemetry exporters: JSON snapshots and Prometheus text format.

Both formats are pure functions of the registry (and optionally the
tracer), so exporting twice without advancing the simulation yields
byte-identical output — snapshots can be diffed across runs.
"""

import json
import re
from typing import Any, Dict, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.trace import Tracer

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def snapshot_dict(registry: MetricsRegistry,
                  tracer: Optional[Tracer] = None,
                  events: Optional[EventLog] = None) -> Dict[str, Any]:
    """The canonical snapshot structure both exporters build on."""
    data: Dict[str, Any] = {
        "time": registry.clock(),
        "metrics": registry.snapshot(),
    }
    if tracer is not None:
        data["traces"] = [trace.to_dict() for trace in tracer.traces]
    if events is not None:
        data["events"] = [event.to_dict() for event in events.events()]
    return data


def to_json(registry: MetricsRegistry, tracer: Optional[Tracer] = None,
            events: Optional[EventLog] = None,
            indent: Optional[int] = 2) -> str:
    return json.dumps(snapshot_dict(registry, tracer, events),
                      indent=indent, sort_keys=True)


def prometheus_name(name: str) -> str:
    """``layer.component.name`` -> ``layer_component_name``."""
    return _PROM_BAD.sub("_", name)


def _label_text(labels: Dict[str, str],
                extra: Optional[Dict[str, str]] = None) -> str:
    """``{k="v",...}`` rendering, empty string for no labels."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (key, value) for key, value
                             in sorted(merged.items()))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus exposition text: counters and gauges as-is (with
    their labels), histograms as summaries (quantile series plus
    _count/_sum)."""
    registry.collect()
    lines = []
    typed = set()
    for metric in registry.metrics():
        name = prometheus_name(metric.name)
        if name not in typed:
            typed.add(name)
            if metric.help:
                lines.append("# HELP %s %s" % (name, metric.help))
            lines.append("# TYPE %s %s"
                         % (name, "summary" if isinstance(metric, Histogram)
                            else metric.kind))
        if isinstance(metric, Histogram):
            for quantile in (0.5, 0.9, 0.99):
                value = metric.percentile(quantile * 100)
                if value is not None:
                    lines.append("%s%s %s" % (
                        name, _label_text(metric.labels,
                                          {"quantile": "%g" % quantile}),
                        _fmt(value)))
            labels = _label_text(metric.labels)
            lines.append("%s_count%s %d" % (name, labels, metric.count))
            lines.append("%s_sum%s %s" % (name, labels, _fmt(metric.sum)))
        else:
            lines.append("%s%s %s" % (name, _label_text(metric.labels),
                                      _fmt(metric.value)))
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def write_snapshot(path: str, registry: MetricsRegistry,
                   tracer: Optional[Tracer] = None,
                   fmt: str = "json",
                   events: Optional[EventLog] = None) -> str:
    """Write a snapshot to ``path``; returns the serialized text."""
    if fmt == "json":
        text = to_json(registry, tracer, events)
    elif fmt in ("prom", "prometheus"):
        text = to_prometheus(registry)
    else:
        raise ValueError("unknown export format %r (json or prom)" % fmt)
    with open(path, "w") as handle:
        handle.write(text)
    return text
