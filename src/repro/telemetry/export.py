"""Telemetry exporters: JSON snapshots and Prometheus text format.

Both formats are pure functions of the registry (and optionally the
tracer), so exporting twice without advancing the simulation yields
byte-identical output — snapshots can be diffed across runs.
"""

import json
import os
import re
from typing import Any, Dict, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.trace import Tracer

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def snapshot_dict(registry: MetricsRegistry,
                  tracer: Optional[Tracer] = None,
                  events: Optional[EventLog] = None) -> Dict[str, Any]:
    """The canonical snapshot structure both exporters build on."""
    data: Dict[str, Any] = {
        "time": registry.clock(),
        "metrics": registry.snapshot(),
    }
    if tracer is not None:
        data["traces"] = [trace.to_dict() for trace in tracer.traces]
    if events is not None:
        data["events"] = [event.to_dict() for event in events.events()]
    return data


def to_json(registry: MetricsRegistry, tracer: Optional[Tracer] = None,
            events: Optional[EventLog] = None,
            indent: Optional[int] = 2) -> str:
    return json.dumps(snapshot_dict(registry, tracer, events),
                      indent=indent, sort_keys=True)


def prometheus_name(name: str) -> str:
    """``layer.component.name`` -> ``layer_component_name``."""
    return _PROM_BAD.sub("_", name)


def _escape_label_value(value: str) -> str:
    """Exposition-format escaping: backslash, double-quote and newline
    must be escaped inside label values (everything else is literal)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_text(labels: Dict[str, str],
                extra: Optional[Dict[str, str]] = None) -> str:
    """``{k="v",...}`` rendering, empty string for no labels."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (key, _escape_label_value(value))
        for key, value in sorted(merged.items()))


def _le_text(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return "%g" % bound


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus exposition text: counters and gauges as-is (with
    their labels), histograms with cumulative ``_bucket`` series (the
    mandatory ``+Inf`` bucket always present) plus _count/_sum."""
    registry.collect()
    lines = []
    typed = set()
    for metric in registry.metrics():
        name = prometheus_name(metric.name)
        if name not in typed:
            typed.add(name)
            if metric.help:
                lines.append("# HELP %s %s" % (name, metric.help))
            lines.append("# TYPE %s %s" % (name, metric.kind))
        if isinstance(metric, Histogram):
            for bound, count in metric.cumulative_buckets():
                lines.append("%s_bucket%s %d" % (
                    name, _label_text(metric.labels,
                                      {"le": _le_text(bound)}), count))
            labels = _label_text(metric.labels)
            lines.append("%s_count%s %d" % (name, labels, metric.count))
            lines.append("%s_sum%s %s" % (name, labels, _fmt(metric.sum)))
        else:
            lines.append("%s%s %s" % (name, _label_text(metric.labels),
                                      _fmt(metric.value)))
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def writable_path(path) -> str:
    """Normalize ``path`` (str or :class:`pathlib.Path`) and create
    missing parent directories, so exports never fail on a fresh
    output tree."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return path


def write_snapshot(path, registry: MetricsRegistry,
                   tracer: Optional[Tracer] = None,
                   fmt: str = "json",
                   events: Optional[EventLog] = None) -> str:
    """Write a snapshot to ``path`` (str or Path; missing parent
    directories are created); returns the serialized text."""
    if fmt == "json":
        text = to_json(registry, tracer, events)
    elif fmt in ("prom", "prometheus"):
        text = to_prometheus(registry)
    else:
        raise ValueError("unknown export format %r (json or prom)" % fmt)
    with open(writable_path(path), "w") as handle:
        handle.write(text)
    return text
