"""repro.telemetry — unified metrics & tracing across the UNIFY layers.

One :class:`Telemetry` bundle pairs a :class:`MetricsRegistry` with a
:class:`Tracer`, both reading the same clock.  The ESCAPE facade
creates a bundle bound to its simulator (``Simulator.now``) and makes
it *current*; components grab handles at construction time via
:func:`current` (or lazily, on hot paths).

Metric names follow ``layer.component.name`` — e.g.
``netconf.client.rpc_latency`` or ``core.mapping.placement_attempts``
— so one snapshot shows all three layers side by side.
"""

from typing import Callable, Optional

from repro.telemetry.export import (snapshot_dict, to_json, to_prometheus,
                                    write_snapshot)
from repro.telemetry.metrics import (Counter, Gauge, Histogram, Metric,
                                     MetricError, MetricsRegistry)
from repro.telemetry.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "Metric", "MetricError",
    "MetricsRegistry", "NULL_SPAN", "Span", "Telemetry", "Tracer",
    "current", "set_current", "snapshot_dict", "to_json",
    "to_prometheus", "write_snapshot",
]


class Telemetry:
    """A metrics registry and a tracer sharing one clock."""

    def __init__(self, sim=None, max_traces: int = 16):
        self.sim = sim
        clock: Optional[Callable[[], float]] = (
            (lambda: sim.now) if sim is not None else None)
        self.metrics = MetricsRegistry(clock=clock)
        self.tracer = Tracer(clock=clock, max_traces=max_traces)

    def snapshot(self):
        return snapshot_dict(self.metrics, self.tracer)

    def __repr__(self) -> str:
        return "Telemetry(%d metrics, %d traces)" % (
            len(self.metrics), len(self.tracer.traces))


# The current bundle.  Components constructed outside an ESCAPE facade
# (unit tests, standalone simulations) share this default instance.
_current = Telemetry()


def current() -> Telemetry:
    """The telemetry bundle new components should bind to."""
    return _current


def set_current(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as current; returns it for chaining."""
    global _current
    _current = telemetry
    return telemetry
