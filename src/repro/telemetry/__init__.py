"""repro.telemetry — unified metrics, tracing & events across the
UNIFY layers.

One :class:`Telemetry` bundle groups a :class:`MetricsRegistry`, a
:class:`Tracer` and an :class:`EventLog`, all reading the same clock.
The ESCAPE facade creates a bundle bound to its simulator
(``Simulator.now``) and makes it *current*; components grab handles at
construction time via :func:`current` (or lazily, on hot paths).

Metric names follow ``layer.component.name`` — e.g.
``netconf.client.rpc_latency`` or ``core.mapping.placement_attempts``
— so one snapshot shows all three layers side by side.  Events use
``layer.component`` sources and are stamped with the id of whatever
span is open at emit time, joining the three signal kinds together.
"""

from typing import Callable, Optional

from repro.telemetry.events import (DEBUG, ERROR, INFO, SEVERITIES, WARN,
                                    Event, EventError, EventLog)
from repro.telemetry.export import (snapshot_dict, to_json, to_prometheus,
                                    writable_path, write_snapshot)
from repro.telemetry.flowtrace import (FlowTrace, FlowTraceError,
                                       load_flowtrace_report,
                                       render_flowtrace_report,
                                       report_from_jsonl)
from repro.telemetry.introspect import (IntrospectError, build_report,
                                        diff_reports, load_report,
                                        report_from_bundle)
from repro.telemetry.metrics import (Counter, Gauge, Histogram, Metric,
                                     MetricError, MetricsRegistry, Series)
from repro.telemetry.profiler import NULL_REGION, Profiler, RegionStat, profile
from repro.telemetry.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter", "DEBUG", "ERROR", "Event", "EventError", "EventLog",
    "FlowTrace", "FlowTraceError", "Gauge", "Histogram", "INFO",
    "IntrospectError", "Metric", "MetricError", "MetricsRegistry",
    "NULL_REGION", "NULL_SPAN", "Profiler", "RegionStat", "SEVERITIES",
    "Series", "Span", "Telemetry", "Tracer", "WARN", "build_report",
    "current", "diff_reports", "load_flowtrace_report", "load_report",
    "profile", "render_flowtrace_report", "report_from_bundle",
    "report_from_jsonl", "set_current", "snapshot_dict", "to_json",
    "to_prometheus", "writable_path", "write_snapshot",
]


class Telemetry:
    """A metrics registry, a tracer, an event log and a profiler —
    the first three sharing one (simulated) clock, the profiler on
    host wall-clock (it measures the framework, not the simulation)."""

    def __init__(self, sim=None, max_traces: int = 16,
                 event_capacity: int = 4096, series_capacity: int = 512):
        self.sim = sim
        clock: Optional[Callable[[], float]] = (
            (lambda: sim.now) if sim is not None else None)
        self.metrics = MetricsRegistry(clock=clock,
                                       series_capacity=series_capacity)
        self.tracer = Tracer(clock=clock, max_traces=max_traces)
        self.events = EventLog(clock=clock, capacity=event_capacity,
                               tracer=self.tracer)
        self.profiler = Profiler()
        self.flowtrace = FlowTrace(events=self.events)
        self.metrics.add_collector(self._collect_event_counts)
        self.metrics.add_collector(self._collect_self_overhead)
        self.metrics.add_collector(self._collect_flowtrace)

    def _collect_event_counts(self, registry: MetricsRegistry) -> None:
        for severity, count in self.events.counts().items():
            registry.gauge("telemetry.events.emitted",
                           "events emitted by severity",
                           labels={"severity": severity.lower()}
                           ).set(count)

    def _collect_self_overhead(self, registry: MetricsRegistry) -> None:
        """Telemetry self-overhead as first-class metrics: the cost of
        observing is part of what is observed."""
        registry.gauge("telemetry.profiler.enabled",
                       "1 while the profiler records regions").set(
            1.0 if self.profiler.enabled else 0.0)
        registry.gauge("telemetry.profiler.entries",
                       "region entries recorded by the profiler").set(
            self.profiler.entries)
        registry.gauge("telemetry.profiler.regions",
                       "distinct profile regions recorded").set(
            len(self.profiler.stats))
        registry.gauge("telemetry.profiler.overhead_seconds",
                       "host seconds spent on profiler bookkeeping").set(
            self.profiler.overhead)
        registry.gauge("telemetry.metrics.collect_seconds",
                       "host seconds spent running snapshot collectors"
                       ).set(registry.collect_seconds)
        registry.gauge("telemetry.metrics.sample_seconds",
                       "host seconds spent recording series samples").set(
            registry.sample_seconds)
        registry.gauge("telemetry.metrics.samples",
                       "series sampling sweeps taken").set(
            registry.sample_count)

    def _collect_flowtrace(self, registry: MetricsRegistry) -> None:
        flowtrace = self.flowtrace
        registry.gauge("telemetry.flowtrace.enabled",
                       "1 while postcard sampling is on").set(
            1.0 if flowtrace.enabled else 0.0)
        registry.gauge("telemetry.flowtrace.traces",
                       "sampled packets currently collected").set(
            len(flowtrace))
        registry.gauge("telemetry.flowtrace.postcards",
                       "per-hop postcards recorded").set(
            flowtrace.postcards)
        registry.gauge("telemetry.flowtrace.evicted",
                       "sampled packets evicted from the bounded "
                       "collector").set(flowtrace.evicted)

    def snapshot(self):
        return snapshot_dict(self.metrics, self.tracer, self.events)

    def __repr__(self) -> str:
        return "Telemetry(%d metrics, %d traces, %d events)" % (
            len(self.metrics), len(self.tracer.traces),
            len(self.events))


# The current bundle.  Components constructed outside an ESCAPE facade
# (unit tests, standalone simulations) share this default instance.
_current = Telemetry()


def current() -> Telemetry:
    """The telemetry bundle new components should bind to."""
    return _current


def set_current(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as current; returns it for chaining."""
    global _current
    _current = telemetry
    return telemetry
