"""Deterministic wall-clock profiling of the framework itself.

Metrics/traces/events (PRs 1-2) observe the *simulated* system; this
module observes the *simulator* — where the reproduction's own Python
code spends host wall-clock time.  Components bracket their hot
sections in scoped *regions*::

    with profiler.profile("core.mapping.solve"):
        mapping = mapper.map(sg, view)

Regions nest (the region stack mirrors the call stack), so every
region accumulates

* ``calls`` — how many times it was entered,
* ``cum`` — cumulative (inclusive) seconds, children included,
* ``self`` — seconds minus time spent in nested regions,

and every unique region *path* accumulates self-time separately, which
is exactly the collapsed-stack format flamegraph tooling consumes
(``sim.event.dispatch;netem.link.transmit 1234``).

The profiler is off by default and the disabled path is a single
attribute check — instrumentation stays in place permanently and the
no-profile dataplane cost is guarded below 5% by
``benchmarks/test_bench_observability.py``.  When enabled, the
profiler meters *its own* bookkeeping cost too (:attr:`overhead`):
telemetry that cannot account for itself would silently poison the
numbers it reports.
"""

import time
from typing import Any, Callable, Dict, List, Optional


class RegionStat:
    """Aggregate timing of one named region across all its entries."""

    __slots__ = ("name", "calls", "cum", "self_time")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.cum = 0.0
        self.self_time = 0.0

    @property
    def per_call(self) -> float:
        """Mean self seconds per entry."""
        return self.self_time / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"calls": self.calls, "cum_s": self.cum,
                "self_s": self.self_time, "per_call_s": self.per_call}

    def __repr__(self) -> str:
        return "RegionStat(%s, calls=%d, self=%.6fs, cum=%.6fs)" % (
            self.name, self.calls, self.self_time, self.cum)


class _NullRegion:
    """No-op stand-in handed out while the profiler is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NULL_REGION = _NullRegion()


class _Region:
    """One live region entry (context manager).

    Frame layout on the profiler stack: ``[name, start, child_seconds,
    path]``.  ``start`` is stamped *after* the enter bookkeeping and
    the exit timestamp is read *before* the exit bookkeeping, so the
    region's measured span excludes the profiler's own work.  Exit
    bookkeeping is charged to :attr:`Profiler.overhead`; the (smaller)
    enter bookkeeping leaks into the parent's self time rather than
    paying a second clock read per entry.
    """

    __slots__ = ("profiler", "name", "_suffix")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name
        self._suffix = ";" + name

    def __enter__(self) -> "_Region":
        # bookkeeping first, *then* stamp: the enter cost leaks into
        # the parent's self time (sub-microsecond) instead of paying a
        # second clock read per entry — these run per event on the hot
        # path, so clock reads are budgeted
        prof = self.profiler
        stack = prof._stack
        name = self.name
        if stack:
            frame = [name, 0.0, 0.0, stack[-1][3] + self._suffix]
        else:
            frame = [name, 0.0, 0.0, name]
        stack.append(frame)
        frame[1] = prof._clock()
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        prof = self.profiler
        end = prof._clock()
        stack = prof._stack
        # LIFO discipline is guaranteed by with-nesting; be lenient
        # about a foreign frame on top (a region closed twice).
        while stack:
            frame = stack.pop()
            if frame[0] == self.name:
                break
        else:
            return False
        prof._finish_frame(frame, end)
        prof.overhead += prof._clock() - end
        return False


class Profiler:
    """Scoped wall-clock regions with self/cumulative attribution.

    ``clock`` defaults to :func:`time.perf_counter`; tests inject a
    fake clock to make attribution assertions exact.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self.enabled = False
        self._stack: List[list] = []
        self.stats: Dict[str, RegionStat] = {}
        self._paths: Dict[str, float] = {}
        # _Region keeps no per-entry state (frames live on _stack), so
        # one instance per name serves every entry — hot regions skip
        # an allocation per call
        self._regions: Dict[str, _Region] = {}
        self.entries = 0          # region entries recorded
        self.overhead = 0.0       # seconds spent on profiler bookkeeping

    # -- control -----------------------------------------------------------

    def enable(self) -> "Profiler":
        self.enabled = True
        return self

    def disable(self) -> "Profiler":
        self.enabled = False
        self._stack = []
        return self

    def reset(self) -> None:
        """Drop every recorded sample (keeps the enabled state)."""
        self._stack = []
        self.stats = {}
        self._paths = {}
        self.entries = 0
        self.overhead = 0.0

    # -- recording ---------------------------------------------------------

    def profile(self, name: str):
        """A region context manager (:data:`NULL_REGION` when off)."""
        if not self.enabled:
            return NULL_REGION
        region = self._regions.get(name)
        if region is None:
            region = self._regions[name] = _Region(self, name)
        return region

    def open_frame(self, name: str, start: float) -> list:
        """Push a region frame with a caller-provided start stamp.

        The frame-protocol half of :class:`_Region` for callers that
        already hold a timestamp (the simulator's fused dispatch path
        shares one clock pair between dispatch accounting and the
        ``sim.event.dispatch`` region instead of stamping four).  Must
        be balanced with :meth:`close_frame`.
        """
        stack = self._stack
        if stack:
            frame = [name, start, 0.0, stack[-1][3] + ";" + name]
        else:
            frame = [name, start, 0.0, name]
        stack.append(frame)
        return frame

    def close_frame(self, frame: list, end: float) -> None:
        """Pop + record a frame opened by :meth:`open_frame` (lenient
        about foreign frames a callback failed to close)."""
        stack = self._stack
        if stack and stack[-1] is frame:
            stack.pop()
            self._finish_frame(frame, end)
            return
        while stack:
            if stack.pop() is frame:
                self._finish_frame(frame, end)
                return

    def _finish_frame(self, frame: list, end: float) -> None:
        """Record a popped frame: stat, flame path, parent child-time."""
        elapsed = end - frame[1]
        if elapsed < 0.0:
            elapsed = 0.0
        self_time = elapsed - frame[2]
        if self_time < 0.0:
            self_time = 0.0
        name = frame[0]
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = RegionStat(name)
        stat.calls += 1
        stat.cum += elapsed
        stat.self_time += self_time
        path = frame[3]
        paths = self._paths
        paths[path] = paths.get(path, 0.0) + self_time
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed
        self.entries += 1

    # -- queries -----------------------------------------------------------

    def region(self, name: str) -> Optional[RegionStat]:
        return self.stats.get(name)

    def regions(self) -> List[RegionStat]:
        """All region stats, hottest (most self-time) first."""
        return sorted(self.stats.values(),
                      key=lambda stat: (-stat.self_time, stat.name))

    @property
    def total_self(self) -> float:
        return sum(stat.self_time for stat in self.stats.values())

    def report(self) -> Dict[str, Dict[str, Any]]:
        """{region name: stat dict} — the BENCH_profile.json payload."""
        return {name: stat.to_dict()
                for name, stat in sorted(self.stats.items())}

    def collapsed(self, unit: float = 1e-6) -> List[str]:
        """Collapsed-stack lines (``path value``), flamegraph.pl /
        speedscope compatible.  ``unit`` scales seconds to the integer
        sample value (default: microseconds)."""
        lines = []
        for path in sorted(self._paths):
            value = int(round(self._paths[path] / unit))
            lines.append("%s %d" % (path, value))
        return lines

    def render_flame(self) -> str:
        return "\n".join(self.collapsed())

    def render_top(self, limit: int = 10) -> str:
        """A ``top``-style hot-path table, most self-time first.
        ``limit=0`` shows every region."""
        regions = self.regions()
        if limit > 0:
            regions = regions[:limit]
        if not regions:
            return ("no profile data recorded "
                    "(profiler %s)" % ("on" if self.enabled else "off"))
        total = self.total_self or 1.0
        lines = ["%-36s %10s %12s %12s %8s %12s"
                 % ("region", "calls", "self(s)", "cum(s)", "self%",
                    "per-call")]
        for stat in regions:
            lines.append("%-36s %10d %12.6f %12.6f %7.1f%% %12.9f"
                         % (stat.name, stat.calls, stat.self_time,
                            stat.cum, 100.0 * stat.self_time / total,
                            stat.per_call))
        lines.append("profiler: %d entries, %.6fs self-overhead (%s)"
                     % (self.entries, self.overhead,
                        "on" if self.enabled else "off"))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Profiler(%s, %d regions, %d entries)" % (
            "on" if self.enabled else "off", len(self.stats),
            self.entries)


def profile(name: str):
    """Region on the *current* telemetry bundle's profiler — the
    convenience instrumentation points use."""
    from repro import telemetry
    return telemetry.current().profiler.profile(name)
