"""Deterministic wall-clock profiling of the framework itself.

Metrics/traces/events (PRs 1-2) observe the *simulated* system; this
module observes the *simulator* — where the reproduction's own Python
code spends host wall-clock time.  Components bracket their hot
sections in scoped *regions*::

    with profiler.profile("core.mapping.solve"):
        mapping = mapper.map(sg, view)

Regions nest (the region stack mirrors the call stack), so every
region accumulates

* ``calls`` — how many times it was entered,
* ``cum`` — cumulative (inclusive) seconds, children included,
* ``self`` — seconds minus time spent in nested regions,

and every unique region *path* accumulates self-time separately, which
is exactly the collapsed-stack format flamegraph tooling consumes
(``sim.event.dispatch;netem.link.transmit 1234``).

The profiler is off by default and the disabled path is a single
attribute check — instrumentation stays in place permanently and the
no-profile dataplane cost is guarded below 5% by
``benchmarks/test_bench_observability.py``.  When enabled, the
profiler meters *its own* bookkeeping cost too (:attr:`overhead`):
telemetry that cannot account for itself would silently poison the
numbers it reports.
"""

import time
from typing import Any, Callable, Dict, List, Optional


class RegionStat:
    """Aggregate timing of one named region across all its entries."""

    __slots__ = ("name", "calls", "cum", "self_time")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.cum = 0.0
        self.self_time = 0.0

    @property
    def per_call(self) -> float:
        """Mean self seconds per entry."""
        return self.self_time / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"calls": self.calls, "cum_s": self.cum,
                "self_s": self.self_time, "per_call_s": self.per_call}

    def __repr__(self) -> str:
        return "RegionStat(%s, calls=%d, self=%.6fs, cum=%.6fs)" % (
            self.name, self.calls, self.self_time, self.cum)


class _NullRegion:
    """No-op stand-in handed out while the profiler is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NULL_REGION = _NullRegion()


class _Region:
    """One live region entry (context manager).

    Frame layout on the profiler stack: ``[name, start, child_seconds,
    path]``.  ``start`` is stamped *after* the enter bookkeeping and
    the exit timestamp is read *before* the exit bookkeeping, so the
    region's measured span excludes the profiler's own work — which is
    charged to :attr:`Profiler.overhead` instead.
    """

    __slots__ = ("profiler", "name")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name

    def __enter__(self) -> "_Region":
        prof = self.profiler
        clock = prof._clock
        t_in = clock()
        stack = prof._stack
        if stack:
            path = stack[-1][3] + ";" + self.name
        else:
            path = self.name
        frame = [self.name, 0.0, 0.0, path]
        stack.append(frame)
        start = clock()
        prof.overhead += start - t_in
        frame[1] = start
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        prof = self.profiler
        clock = prof._clock
        end = clock()
        stack = prof._stack
        # LIFO discipline is guaranteed by with-nesting; be lenient
        # about a foreign frame on top (a region closed twice).
        while stack:
            frame = stack.pop()
            if frame[0] == self.name:
                break
        else:
            return False
        elapsed = end - frame[1]
        if elapsed < 0.0:
            elapsed = 0.0
        self_time = elapsed - frame[2]
        if self_time < 0.0:
            self_time = 0.0
        stat = prof.stats.get(self.name)
        if stat is None:
            stat = prof.stats[self.name] = RegionStat(self.name)
        stat.calls += 1
        stat.cum += elapsed
        stat.self_time += self_time
        prof._paths[frame[3]] = prof._paths.get(frame[3], 0.0) + self_time
        if stack:
            stack[-1][2] += elapsed
        prof.entries += 1
        prof.overhead += clock() - end
        return False


class Profiler:
    """Scoped wall-clock regions with self/cumulative attribution.

    ``clock`` defaults to :func:`time.perf_counter`; tests inject a
    fake clock to make attribution assertions exact.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self.enabled = False
        self._stack: List[list] = []
        self.stats: Dict[str, RegionStat] = {}
        self._paths: Dict[str, float] = {}
        self.entries = 0          # region entries recorded
        self.overhead = 0.0       # seconds spent on profiler bookkeeping

    # -- control -----------------------------------------------------------

    def enable(self) -> "Profiler":
        self.enabled = True
        return self

    def disable(self) -> "Profiler":
        self.enabled = False
        self._stack = []
        return self

    def reset(self) -> None:
        """Drop every recorded sample (keeps the enabled state)."""
        self._stack = []
        self.stats = {}
        self._paths = {}
        self.entries = 0
        self.overhead = 0.0

    # -- recording ---------------------------------------------------------

    def profile(self, name: str):
        """A region context manager (:data:`NULL_REGION` when off)."""
        if not self.enabled:
            return NULL_REGION
        return _Region(self, name)

    # -- queries -----------------------------------------------------------

    def region(self, name: str) -> Optional[RegionStat]:
        return self.stats.get(name)

    def regions(self) -> List[RegionStat]:
        """All region stats, hottest (most self-time) first."""
        return sorted(self.stats.values(),
                      key=lambda stat: (-stat.self_time, stat.name))

    @property
    def total_self(self) -> float:
        return sum(stat.self_time for stat in self.stats.values())

    def report(self) -> Dict[str, Dict[str, Any]]:
        """{region name: stat dict} — the BENCH_profile.json payload."""
        return {name: stat.to_dict()
                for name, stat in sorted(self.stats.items())}

    def collapsed(self, unit: float = 1e-6) -> List[str]:
        """Collapsed-stack lines (``path value``), flamegraph.pl /
        speedscope compatible.  ``unit`` scales seconds to the integer
        sample value (default: microseconds)."""
        lines = []
        for path in sorted(self._paths):
            value = int(round(self._paths[path] / unit))
            lines.append("%s %d" % (path, value))
        return lines

    def render_flame(self) -> str:
        return "\n".join(self.collapsed())

    def render_top(self, limit: int = 10) -> str:
        """A ``top``-style hot-path table, most self-time first.
        ``limit=0`` shows every region."""
        regions = self.regions()
        if limit > 0:
            regions = regions[:limit]
        if not regions:
            return ("no profile data recorded "
                    "(profiler %s)" % ("on" if self.enabled else "off"))
        total = self.total_self or 1.0
        lines = ["%-36s %10s %12s %12s %8s %12s"
                 % ("region", "calls", "self(s)", "cum(s)", "self%",
                    "per-call")]
        for stat in regions:
            lines.append("%-36s %10d %12.6f %12.6f %7.1f%% %12.9f"
                         % (stat.name, stat.calls, stat.self_time,
                            stat.cum, 100.0 * stat.self_time / total,
                            stat.per_call))
        lines.append("profiler: %d entries, %.6fs self-overhead (%s)"
                     % (self.entries, self.overhead,
                        "on" if self.enabled else "off"))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Profiler(%s, %d regions, %d entries)" % (
            "on" if self.enabled else "off", len(self.stats),
            self.entries)


def profile(name: str):
    """Region on the *current* telemetry bundle's profiler — the
    convenience instrumentation points use."""
    from repro import telemetry
    return telemetry.current().profiler.profile(name)
