"""LLDP topology discovery (POX's ``openflow.discovery``).

Periodically floods LLDP probes out every switch port; probes arriving
at another switch produce adjacency entries, which together form the
switch-level topology graph the orchestrator's resource view consumes.
"""

from typing import Dict, Optional, Set, Tuple

from repro.openflow import Output, PacketOut
from repro.packet import Ethernet, LLDP
from repro.pox.events import (ConnectionUp, Event, EventMixin,
                              PacketInEvent)
from repro.pox.nexus import OpenFlowNexus

LLDP_DST = "01:80:c2:00:00:0e"


class LinkEvent(Event):
    """An inter-switch link was discovered or timed out."""

    def __init__(self, added: bool, dpid1: int, port1: int,
                 dpid2: int, port2: int):
        super().__init__()
        self.added = added
        self.dpid1 = dpid1
        self.port1 = port1
        self.dpid2 = dpid2
        self.port2 = port2

    def __repr__(self) -> str:
        sign = "+" if self.added else "-"
        return "LinkEvent(%s %d.%d <-> %d.%d)" % (sign, self.dpid1,
                                                  self.port1, self.dpid2,
                                                  self.port2)


class Discovery(EventMixin):
    """Maintains ``adjacency``: (dpid1, port1) -> (dpid2, port2)."""

    def __init__(self, nexus: OpenFlowNexus, send_interval: float = 1.0,
                 link_timeout: float = 6.0):
        super().__init__()
        self.nexus = nexus
        self.sim = nexus.core.sim
        self.send_interval = send_interval
        self.link_timeout = link_timeout
        self.adjacency: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._last_seen: Dict[Tuple[int, int], float] = {}
        self.probes_sent = 0
        self._started = False
        nexus.add_listener(ConnectionUp, self._handle_connection_up)
        nexus.add_listener(PacketInEvent, self._handle_packet_in)

    def _handle_connection_up(self, event: ConnectionUp) -> None:
        if not self._started:
            self._started = True
            self.sim.schedule(0.0, self._probe_round)

    def _probe_round(self) -> None:
        for dpid, connection in list(self.nexus.connections.items()):
            for desc in connection.ports:
                frame = Ethernet(
                    src=desc.hw_addr, dst=LLDP_DST,
                    type=Ethernet.LLDP_TYPE,
                    payload=LLDP.discovery_frame(dpid, desc.port_no))
                connection.send(PacketOut(actions=[Output(desc.port_no)],
                                          data=frame.pack()))
                self.probes_sent += 1
        self._expire_links()
        self.sim.schedule(self.send_interval, self._probe_round)

    def _expire_links(self) -> None:
        now = self.sim.now
        for key, seen in list(self._last_seen.items()):
            if now - seen > self.link_timeout:
                peer = self.adjacency.pop(key, None)
                del self._last_seen[key]
                if peer is not None:
                    self.raise_event(LinkEvent(False, key[0], key[1],
                                               peer[0], peer[1]))

    def _handle_packet_in(self, event: PacketInEvent) -> None:
        frame = event.parsed
        if frame is None or frame.type != Ethernet.LLDP_TYPE:
            return
        lldp = frame.find(LLDP)
        origin = lldp.discovery_origin() if lldp is not None else None
        if origin is None:
            return
        event.halt = True  # LLDP is consumed here, like POX's discovery
        src_dpid, src_port = origin
        key = (src_dpid, src_port)
        value = (event.dpid, event.port)
        self._last_seen[key] = self.sim.now
        if self.adjacency.get(key) != value:
            self.adjacency[key] = value
            self.raise_event(LinkEvent(True, src_dpid, src_port,
                                       event.dpid, event.port))

    # -- queries -----------------------------------------------------------

    def links(self) -> Set[Tuple[int, int, int, int]]:
        """Canonical (dpid1, port1, dpid2, port2) tuples, deduplicated
        across directions."""
        seen = set()
        for (dpid1, port1), (dpid2, port2) in self.adjacency.items():
            if (dpid2, port2, dpid1, port1) not in seen:
                seen.add((dpid1, port1, dpid2, port2))
        return seen

    def peer_of(self, dpid: int, port: int) -> Optional[Tuple[int, int]]:
        return self.adjacency.get((dpid, port))

    def __repr__(self) -> str:
        return "Discovery(%d adjacencies, %d probes)" % (
            len(self.adjacency), self.probes_sent)
