"""The POX ``core`` object: a named component registry."""

from typing import Any, Dict, Optional

from repro.sim import Simulator
from repro.telemetry import current as current_telemetry


class Core:
    """Component registry + shared simulator handle.

    POX components find each other through ``core.<name>``; here
    components are registered explicitly and looked up by attribute or
    :meth:`component`.
    """

    def __init__(self, sim: Optional[Simulator] = None):
        self.sim = sim or Simulator()
        self._components: Dict[str, Any] = {}
        # the telemetry bundle POX-side components report into
        self.telemetry = current_telemetry()

    def register(self, name: str, component: Any) -> Any:
        if name in self._components:
            raise ValueError("component %r already registered" % name)
        self._components[name] = component
        return component

    def has_component(self, name: str) -> bool:
        return name in self._components

    def component(self, name: str) -> Any:
        if name not in self._components:
            raise KeyError("no component registered as %r" % name)
        return self._components[name]

    def components(self) -> Dict[str, Any]:
        return dict(self._components)

    def __getattr__(self, name: str) -> Any:
        # Called only when normal attribute lookup fails.
        components = object.__getattribute__(self, "_components")
        if name in components:
            return components[name]
        raise AttributeError("core has no component %r" % name)

    def __repr__(self) -> str:
        return "Core(%s)" % ", ".join(sorted(self._components)) \
            if self._components else "Core()"
