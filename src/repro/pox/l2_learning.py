"""The stock L2 learning switch component (POX's ``l2_learning``).

Non-steered traffic in ESCAPE falls back to plain learning-switch
behaviour; the steering module installs its entries at a higher
priority, so chains win where they apply.
"""

from typing import Dict, Tuple

from repro.openflow import FlowMod, Match, Output, PacketOut, OFPP_FLOOD
from repro.packet import Ethernet
from repro.pox.events import ConnectionUp, PacketInEvent
from repro.pox.nexus import OpenFlowNexus

LEARNING_PRIORITY = 0x1000  # below steering entries


class L2LearningSwitch:
    """Learn source MACs per switch; install exact dl_dst forwards."""

    def __init__(self, nexus: OpenFlowNexus, idle_timeout: float = 10.0,
                 hard_timeout: float = 30.0):
        self.nexus = nexus
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        # (dpid, mac string) -> port
        self.mac_table: Dict[Tuple[int, str], int] = {}
        self.flows_installed = 0
        self.floods = 0
        nexus.add_listener(PacketInEvent, self._handle_packet_in)
        nexus.add_listener(ConnectionUp, self._handle_connection_up)

    def _handle_connection_up(self, event: ConnectionUp) -> None:
        # nothing to pre-install; the table-miss default (PacketIn) is
        # the OF 1.0 behaviour already.
        pass

    def _handle_packet_in(self, event: PacketInEvent) -> None:
        frame = event.parsed
        if frame is None:
            return
        if frame.type == Ethernet.LLDP_TYPE:
            return  # discovery's business
        self.mac_table[(event.dpid, str(frame.src))] = event.port
        out_port = self.mac_table.get((event.dpid, str(frame.dst)))
        if out_port is None or frame.dst.is_multicast \
                or frame.dst.is_broadcast:
            self.floods += 1
            event.connection.send(PacketOut(
                actions=[Output(OFPP_FLOOD)],
                buffer_id=event.ofp.buffer_id,
                data=None if event.ofp.buffer_id is not None else event.data,
                in_port=event.port))
            return
        self.flows_installed += 1
        event.connection.send(FlowMod(
            Match(dl_dst=frame.dst), [Output(out_port)],
            priority=LEARNING_PRIORITY,
            idle_timeout=self.idle_timeout,
            hard_timeout=self.hard_timeout,
            buffer_id=event.ofp.buffer_id))
        if event.ofp.buffer_id is None:
            event.connection.send(PacketOut(
                actions=[Output(out_port)], data=event.data,
                in_port=event.port))

    def __repr__(self) -> str:
        return "L2LearningSwitch(%d MACs, %d flows, %d floods)" % (
            len(self.mac_table), self.flows_installed, self.floods)
