"""Controller-side statistics collection.

The orchestration layer's "global network and resource view" needs more
than topology: it needs utilization.  This component polls every
connected switch for port and flow statistics on a fixed period and
derives rates from successive samples — the data a utilization-aware
mapper or a dashboard consumes.
"""

from typing import Dict, List, Optional, Tuple

from repro.openflow import FlowStatsRequest, PortStatsRequest
from repro.pox.events import (ConnectionUp, FlowStatsReceived,
                              PortStatsReceived)
from repro.pox.nexus import OpenFlowNexus


class PortSample:
    __slots__ = ("time", "rx_bytes", "tx_bytes", "rx_packets",
                 "tx_packets")

    def __init__(self, time, rx_bytes, tx_bytes, rx_packets, tx_packets):
        self.time = time
        self.rx_bytes = rx_bytes
        self.tx_bytes = tx_bytes
        self.rx_packets = rx_packets
        self.tx_packets = tx_packets


class StatsCollector:
    """Periodic OF stats polling with rate derivation.

    Queries:

    * :meth:`port_rate` — (rx bits/s, tx bits/s) over the last interval,
    * :meth:`port_counters` — latest absolute counters,
    * :meth:`flow_count` / :meth:`flow_entries` — table contents,
    * :meth:`busiest_ports` — top-N ports by tx rate.
    """

    def __init__(self, nexus: OpenFlowNexus, interval: float = 1.0):
        self.nexus = nexus
        self.sim = nexus.core.sim
        self.interval = interval
        # (dpid, port_no) -> [previous, latest] PortSample
        self._port_samples: Dict[Tuple[int, int], List[PortSample]] = {}
        self._flow_stats: Dict[int, list] = {}
        # poll_rounds lives in the metrics registry now; the property
        # below keeps the old attribute working (per-instance, via a
        # baseline offset, since the registry counter may be shared)
        self._m_poll_rounds = nexus.core.telemetry.metrics.counter(
            "pox.stats.poll_rounds", "OF statistics polling rounds")
        self._poll_rounds_base = self._m_poll_rounds.value
        self._started = False
        self._task = None
        nexus.add_listener(ConnectionUp, self._handle_connection_up)
        nexus.add_listener(PortStatsReceived, self._handle_port_stats)
        nexus.add_listener(FlowStatsReceived, self._handle_flow_stats)

    def _handle_connection_up(self, _event) -> None:
        if not self._started:
            self._started = True
            self._task = self.sim.schedule(0.0, self._poll_round)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self._started = False

    @property
    def poll_rounds(self) -> int:
        """Polling rounds run by *this* collector (compat attribute)."""
        return int(self._m_poll_rounds.value - self._poll_rounds_base)

    def _poll_round(self) -> None:
        self._m_poll_rounds.inc()
        for connection in list(self.nexus.connections.values()):
            connection.send(PortStatsRequest())
            connection.send(FlowStatsRequest())
        self._task = self.sim.schedule(self.interval, self._poll_round)

    def _handle_port_stats(self, event) -> None:
        for stat in event.stats:
            key = (event.dpid, stat.port_no)
            sample = PortSample(self.sim.now, stat.rx_bytes,
                                stat.tx_bytes, stat.rx_packets,
                                stat.tx_packets)
            window = self._port_samples.setdefault(key, [])
            window.append(sample)
            if len(window) > 2:
                del window[0]

    def _handle_flow_stats(self, event) -> None:
        self._flow_stats[event.dpid] = event.stats

    # -- queries -----------------------------------------------------------

    def port_rate(self, dpid: int,
                  port_no: int) -> Optional[Tuple[float, float]]:
        """(rx bits/s, tx bits/s) from the last two samples."""
        window = self._port_samples.get((dpid, port_no))
        if not window or len(window) < 2:
            return None
        previous, latest = window
        elapsed = latest.time - previous.time
        if elapsed <= 0:
            return None
        return ((latest.rx_bytes - previous.rx_bytes) * 8 / elapsed,
                (latest.tx_bytes - previous.tx_bytes) * 8 / elapsed)

    def port_counters(self, dpid: int,
                      port_no: int) -> Optional[PortSample]:
        window = self._port_samples.get((dpid, port_no))
        return window[-1] if window else None

    def flow_count(self, dpid: int) -> int:
        return len(self._flow_stats.get(dpid, []))

    def flow_entries(self, dpid: int) -> list:
        return list(self._flow_stats.get(dpid, []))

    def busiest_ports(self, top: int = 5) -> List[tuple]:
        """[(dpid, port, tx_bps)] sorted by tx rate, descending."""
        rates = []
        for (dpid, port_no) in self._port_samples:
            rate = self.port_rate(dpid, port_no)
            if rate is not None:
                rates.append((dpid, port_no, rate[1]))
        rates.sort(key=lambda item: -item[2])
        return rates[:top]

    def annotate_view(self, view, net) -> int:
        """Write measured tx rates onto the resource view's edges as
        ``measured_bps`` (max of both directions).  Returns the number
        of annotated edges."""
        from repro.netem.node import Switch
        annotated = 0
        for link in net.links:
            rates = []
            for intf in (link.intf1, link.intf2):
                node = intf.node
                if not isinstance(node, Switch):
                    continue
                rate = self.port_rate(node.dpid, node.port_number(intf))
                if rate is not None:
                    rates.append(rate[1])
            name1 = link.intf1.node.name
            name2 = link.intf2.node.name
            if rates and view.graph.has_edge(name1, name2):
                view.graph.edges[name1, name2]["measured_bps"] = \
                    max(rates)
                annotated += 1
        return annotated

    def __repr__(self) -> str:
        return "StatsCollector(%d rounds, %d ports tracked)" % (
            self.poll_rounds, len(self._port_samples))
