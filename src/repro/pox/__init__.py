"""POX-analog OpenFlow controller platform.

The paper steers traffic between VNFs with "a dedicated
easy-to-configure controller application (implemented in the POX
OpenFlow controller platform)".  This package reproduces the POX idioms
that application assumes:

* :mod:`~repro.pox.events` — revent-style event classes + EventMixin,
* :class:`~repro.pox.core.Core` — the component registry
  (``core.register("steering", ...)``),
* :class:`~repro.pox.nexus.OpenFlowNexus` — accepts switch connections,
  runs the OF handshake, fans PacketIn/ConnectionUp/... events out to
  components,
* :class:`~repro.pox.l2_learning.L2LearningSwitch` — the stock learning
  switch (the behaviour non-steered traffic falls back to),
* :class:`~repro.pox.discovery.Discovery` — LLDP topology discovery
  feeding the orchestrator's global network view,
* :class:`~repro.pox.steering.TrafficSteering` — ESCAPE's module: install
  / remove chain paths as flow entries, with per-hop or VLAN-tagged
  granularity.
"""

from repro.pox.core import Core
from repro.pox.discovery import Discovery, LinkEvent
from repro.pox.events import (BarrierIn, ConnectionDown, ConnectionUp,
                              Event, EventMixin, FlowRemovedEvent,
                              FlowStatsReceived, PacketInEvent,
                              PortStatsReceived, PortStatusEvent)
from repro.pox.l2_learning import L2LearningSwitch
from repro.pox.nexus import Connection, OpenFlowNexus
from repro.pox.stats import StatsCollector
from repro.pox.steering import PathHop, SteeringError, TrafficSteering

__all__ = [
    "BarrierIn",
    "Connection",
    "ConnectionDown",
    "ConnectionUp",
    "Core",
    "Discovery",
    "Event",
    "EventMixin",
    "FlowRemovedEvent",
    "FlowStatsReceived",
    "L2LearningSwitch",
    "LinkEvent",
    "OpenFlowNexus",
    "PacketInEvent",
    "PathHop",
    "PortStatsReceived",
    "PortStatusEvent",
    "StatsCollector",
    "SteeringError",
    "TrafficSteering",
]
