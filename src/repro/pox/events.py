"""revent-lite: typed events with listener registration."""

from typing import Callable, Dict, List, Type


class Event:
    """Base event.  Setting ``halt`` in a listener stops propagation."""

    def __init__(self):
        self.halt = False


class EventMixin:
    """Objects that raise events; listeners subscribe per event class."""

    def __init__(self):
        self._listeners: Dict[Type[Event], List[Callable]] = {}

    def add_listener(self, event_class: Type[Event],
                     callback: Callable[[Event], None]) -> Callable:
        """Subscribe; returns the callback for later removal."""
        self._listeners.setdefault(event_class, []).append(callback)
        return callback

    def remove_listener(self, event_class: Type[Event],
                        callback: Callable) -> None:
        listeners = self._listeners.get(event_class, [])
        if callback in listeners:
            listeners.remove(callback)

    def add_listeners(self, component) -> None:
        """POX idiom: methods named ``_handle_<EventClass>`` subscribe
        automatically."""
        for event_class in _all_event_classes():
            handler = getattr(component, "_handle_%s" % event_class.__name__,
                              None)
            if handler is not None:
                self.add_listener(event_class, handler)

    def raise_event(self, event: Event) -> Event:
        for callback in list(self._listeners.get(type(event), [])):
            callback(event)
            if event.halt:
                break
        return event


def _all_event_classes() -> List[Type[Event]]:
    def walk(cls):
        classes = [cls]
        for sub in cls.__subclasses__():
            classes.extend(walk(sub))
        return classes
    return walk(Event)[1:]  # skip the Event base itself


# -- OpenFlow-facing events ------------------------------------------------


class ConnectionUp(Event):
    """A switch finished the handshake (FeaturesReply received)."""

    def __init__(self, connection):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid


class ConnectionDown(Event):
    def __init__(self, connection):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid


class PacketInEvent(Event):
    """Wraps an OF PacketIn with the parsed frame."""

    def __init__(self, connection, packet_in, parsed):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid
        self.ofp = packet_in
        self.port = packet_in.in_port
        self.parsed = parsed  # Ethernet or None
        self.data = packet_in.data


class FlowRemovedEvent(Event):
    def __init__(self, connection, ofp):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid
        self.ofp = ofp


class PortStatusEvent(Event):
    def __init__(self, connection, ofp):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid
        self.ofp = ofp


class FlowStatsReceived(Event):
    def __init__(self, connection, stats):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid
        self.stats = stats


class PortStatsReceived(Event):
    def __init__(self, connection, stats):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid
        self.stats = stats


class BarrierIn(Event):
    def __init__(self, connection, ofp):
        super().__init__()
        self.connection = connection
        self.dpid = connection.dpid
        self.xid = ofp.xid
