"""ESCAPE's traffic steering module.

The orchestrator hands this component concrete paths — sequences of
(switch, in-port, out-port) hops produced by the mapping algorithm —
and it installs/removes the OpenFlow entries that pin chain traffic to
those paths.  Two granularities are supported (an ablation the
benchmarks compare):

* ``exact`` — every hop matches the full flow template plus its in-port,
* ``vlan``  — the first hop tags the chain's traffic with a dedicated
  VLAN id, core hops match only (vlan, in-port), the last hop strips the
  tag: fewer wide entries in the core at the cost of a tag namespace.
"""

import copy
from typing import Dict, List, Optional

from repro.openflow import (FlowMod, Group, GroupBucket, GroupMod, Match,
                            Output, SetVlan, StripVlan)
from repro.pox.nexus import OpenFlowNexus
from repro.telemetry import current as current_telemetry

STEERING_PRIORITY = 0x6000  # above l2_learning's 0x1000

MODE_EXACT = "exact"
MODE_VLAN = "vlan"


class SteeringError(Exception):
    pass


class PathHop:
    """One switch traversal of a steered path."""

    def __init__(self, dpid: int, in_port: int, out_port: int):
        self.dpid = dpid
        self.in_port = in_port
        self.out_port = out_port

    def __repr__(self) -> str:
        return "PathHop(dpid=%d, %d->%d)" % (self.dpid, self.in_port,
                                             self.out_port)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PathHop)
                and (self.dpid, self.in_port, self.out_port)
                == (other.dpid, other.in_port, other.out_port))


def _clone_match(match: Match, **overrides) -> Match:
    clone = copy.copy(match)
    for field, value in overrides.items():
        setattr(clone, field, value)
    return clone


class _InstalledPath:
    def __init__(self, path_id: str, hops: List[PathHop],
                 flow_mods: List[tuple], vlan: Optional[int],
                 group_mods: Optional[List[tuple]] = None,
                 backup_hops: Optional[List[PathHop]] = None):
        self.path_id = path_id
        self.hops = hops
        self.flow_mods = flow_mods  # (dpid, FlowMod) pairs, for removal
        self.vlan = vlan
        self.group_mods = group_mods or []  # (dpid, GroupMod) pairs
        self.backup_hops = backup_hops or []


class TrafficSteering:
    """Install and tear down chain paths as flow entries."""

    FIRST_VLAN = 100

    def __init__(self, nexus: OpenFlowNexus, mode: str = MODE_EXACT,
                 priority: int = STEERING_PRIORITY,
                 idle_timeout: float = 0.0, hard_timeout: float = 0.0,
                 restore: bool = True):
        if mode not in (MODE_EXACT, MODE_VLAN):
            raise SteeringError("unknown steering mode %r" % mode)
        self.nexus = nexus
        self.mode = mode
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        # self-healing: steering entries carry SEND_FLOW_REM, and any
        # FlowRemoved matching an installed path is re-installed — a
        # flushed table or an expired entry cannot silently break a
        # chain.
        self.restore = restore
        self.paths: Dict[str, _InstalledPath] = {}
        self._vlans_in_use: set = set()
        # benchmarks assert exact values on these plain ints; the
        # registry counters below mirror them for unified snapshots
        self.flow_mods_sent = 0
        self.group_mods_sent = 0
        self.restorations = 0
        # protection bookkeeping: fast-failover groups installed for a
        # path, and the reverse index a flip event resolves through
        self._next_group_id = 1
        self._group_index: Dict[tuple, str] = {}  # (dpid, gid) -> path
        self.telemetry = current_telemetry()
        metrics = self.telemetry.metrics
        self._m_flow_mods = metrics.counter(
            "pox.steering.flow_mods", "flow-mods sent by traffic steering")
        self._m_group_mods = metrics.counter(
            "pox.steering.group_mods",
            "group-mods sent for fast-failover protection")
        self._m_restorations = metrics.counter(
            "pox.steering.restorations",
            "self-healing re-installs after FlowRemoved")
        self._m_paths = metrics.gauge(
            "pox.steering.paths", "steered paths currently installed")
        self._m_paths.set_function(lambda: len(self.paths))
        if restore:
            from repro.pox.events import FlowRemovedEvent
            nexus.add_listener(FlowRemovedEvent,
                               self._handle_flow_removed)
        from repro.pox.events import PortStatusEvent
        nexus.add_listener(PortStatusEvent, self._handle_port_status)

    def _handle_flow_removed(self, event) -> None:
        if not self.restore:
            return
        for installed in self.paths.values():
            for dpid, flow_mod in installed.flow_mods:
                if dpid != event.dpid:
                    continue
                if flow_mod.priority != event.ofp.priority:
                    continue
                if flow_mod.match != event.ofp.match:
                    continue
                self.nexus.send(dpid, flow_mod)
                self.flow_mods_sent += 1
                self.restorations += 1
                self._m_flow_mods.inc()
                self._m_restorations.inc()
                # a chain entry vanished out from under us — restored,
                # but the operator should know the table was disturbed
                self.telemetry.events.warn(
                    "pox.steering", "steering.path_restored",
                    "re-installed %s entry on dpid=%d after FlowRemoved"
                    % (installed.path_id, dpid),
                    path=installed.path_id, dpid=dpid)
                return

    def _handle_port_status(self, event) -> None:
        """Deterministic PortStatus intake: correlate the port change
        with the installed paths crossing it and log a structured
        entry naming the affected chains — the trace the operator (and
        the recovery manager) pivots from."""
        desc = event.ofp.desc
        affected = sorted(
            path_id for path_id, installed in self.paths.items()
            if any(hop.dpid == event.dpid
                   and desc.port_no in (hop.in_port, hop.out_port)
                   for hop in installed.hops + installed.backup_hops))
        if not affected:
            return
        note = (self.telemetry.events.warn if desc.link_down
                else self.telemetry.events.info)
        note("pox.steering",
             "steering.port_down" if desc.link_down
             else "steering.port_up",
             "dpid=%d port %d (%s): %d path(s) cross it"
             % (event.dpid, desc.port_no, desc.name, len(affected)),
             dpid=event.dpid, port=desc.port_no,
             paths=",".join(affected),
             chains=",".join(sorted({path_id.split("/", 1)[0]
                                     for path_id in affected})))

    # -- path installation -------------------------------------------------

    def _register_expected_path(self, path_id: str, match: Match,
                                hops: List[PathHop],
                                backup_hops=None) -> None:
        """Tell the flow-telemetry conformance checker what path this
        match is *supposed* to take; the chain name is the path id's
        leading segment (``<chain>/<segment>``).  Backup dpids are
        registered as acceptable alternates so a fast-failover flip is
        not reported as mis-steering."""
        self.telemetry.flowtrace.register_path(
            path_id, path_id.split("/", 1)[0], match,
            [hop.dpid for hop in hops],
            alt_dpids=[hop.dpid for hop in (backup_hops or [])])

    def install_path(self, path_id: str, hops: List[PathHop],
                     match: Match) -> None:
        """Install flow entries steering ``match`` traffic along ``hops``.

        ``match`` should not constrain in_port or dl_vlan; the module
        owns those fields.
        """
        if path_id in self.paths:
            raise SteeringError("path %r already installed" % path_id)
        if not hops:
            raise SteeringError("path %r has no hops" % path_id)
        for hop in hops:
            if hop.dpid not in self.nexus.connections:
                raise SteeringError("switch dpid=%d not connected"
                                    % hop.dpid)
        if self.mode == MODE_VLAN and len(hops) > 1:
            vlan = self._allocate_vlan()
            flow_mods = self._vlan_flow_mods(hops, match, vlan)
        else:
            vlan = None
            flow_mods = self._exact_flow_mods(hops, match)
        tracer = self.telemetry.tracer
        with self.telemetry.profiler.profile("pox.steering.install"), \
                tracer.span("steering.install_path", path=path_id,
                            mode=self.mode, hops=len(hops)):
            for dpid, flow_mod in flow_mods:
                with tracer.span("openflow.flow_mod", dpid=dpid):
                    self.nexus.send(dpid, flow_mod)
                self.flow_mods_sent += 1
                self._m_flow_mods.inc()
        self.paths[path_id] = _InstalledPath(path_id, list(hops),
                                             flow_mods, vlan)
        self._register_expected_path(path_id, match, hops)
        self.telemetry.events.debug(
            "pox.steering", "steering.path_installed",
            "%s: %d hops, %d flow-mods" % (path_id, len(hops),
                                           len(flow_mods)),
            path=path_id, mode=self.mode)

    def install_protected_path(self, path_id: str, hops: List[PathHop],
                               backup_hops: List[PathHop],
                               match: Match) -> int:
        """Install a primary path plus its precomputed backup.

        Where the two paths diverge (same switch, same in-port,
        different out-port — the head end, for a link-disjoint backup)
        the primary entry forwards through a FAST_FAILOVER group whose
        first bucket watches the primary out-port and whose second
        points down the backup.  The backup's remaining entries are
        pre-installed, so when the watched port dies the very next
        frame already rides the alternate — repair happens in the
        dataplane, without a controller round trip.

        Returns the number of failover groups installed (0 means the
        paths never diverge on a shared switch and the path is
        effectively unprotected).  Exact-match steering only: the
        VLAN ablation re-tags per path and cannot share core entries
        between primary and backup.
        """
        if self.mode != MODE_EXACT:
            raise SteeringError("protected paths require exact steering")
        if path_id in self.paths:
            raise SteeringError("path %r already installed" % path_id)
        if not hops or not backup_hops:
            raise SteeringError("path %r needs primary and backup hops"
                                % path_id)
        for hop in list(hops) + list(backup_hops):
            if hop.dpid not in self.nexus.connections:
                raise SteeringError("switch dpid=%d not connected"
                                    % hop.dpid)
        backup_by_dpid = {hop.dpid: hop for hop in backup_hops}
        flow_mods: List[tuple] = []
        group_mods: List[tuple] = []
        diverging: set = set()  # (dpid, in_port) steered by a group
        for hop in hops:
            backup = backup_by_dpid.get(hop.dpid)
            hop_match = _clone_match(match, in_port=hop.in_port)
            if backup is not None and backup.in_port == hop.in_port \
                    and backup.out_port != hop.out_port:
                group_id = self._next_group_id
                self._next_group_id += 1
                group_mods.append((hop.dpid, GroupMod(
                    GroupMod.ADD, group_id,
                    buckets=[
                        GroupBucket([Output(hop.out_port)],
                                    watch_port=hop.out_port),
                        GroupBucket([Output(backup.out_port)],
                                    watch_port=backup.out_port),
                    ])))
                self._group_index[(hop.dpid, group_id)] = path_id
                diverging.add((hop.dpid, hop.in_port))
                actions = [Group(group_id)]
            else:
                actions = [Output(hop.out_port)]
            flow_mods.append((hop.dpid, FlowMod(
                hop_match, actions, priority=self.priority,
                idle_timeout=self.idle_timeout,
                hard_timeout=self.hard_timeout, flags=self._flags)))
        primary_inputs = {(hop.dpid, hop.in_port) for hop in hops}
        for hop in backup_hops:
            key = (hop.dpid, hop.in_port)
            if key in diverging:
                continue  # the failover group already steers here
            # a backup hop entering a switch on the same port as the
            # primary (e.g. shared attachment edges on a maximally-
            # disjoint backup) sits one priority below, so the primary
            # entry wins while it exists
            priority = (self.priority - 1 if key in primary_inputs
                        else self.priority)
            flow_mods.append((hop.dpid, FlowMod(
                _clone_match(match, in_port=hop.in_port),
                [Output(hop.out_port)], priority=priority,
                idle_timeout=self.idle_timeout,
                hard_timeout=self.hard_timeout, flags=self._flags)))
        tracer = self.telemetry.tracer
        with self.telemetry.profiler.profile("pox.steering.install"), \
                tracer.span("steering.install_protected_path",
                            path=path_id, hops=len(hops),
                            backup_hops=len(backup_hops),
                            groups=len(group_mods)):
            # groups first: the flow entries reference them
            for dpid, group_mod in group_mods:
                with tracer.span("openflow.group_mod", dpid=dpid):
                    self.nexus.send(dpid, group_mod)
                self.group_mods_sent += 1
                self._m_group_mods.inc()
            for dpid, flow_mod in flow_mods:
                with tracer.span("openflow.flow_mod", dpid=dpid):
                    self.nexus.send(dpid, flow_mod)
                self.flow_mods_sent += 1
                self._m_flow_mods.inc()
        self.paths[path_id] = _InstalledPath(
            path_id, list(hops), flow_mods, None,
            group_mods=group_mods, backup_hops=list(backup_hops))
        self._register_expected_path(path_id, match, hops,
                                     backup_hops=backup_hops)
        self.telemetry.events.debug(
            "pox.steering", "steering.path_installed",
            "%s: %d+%d hops, %d flow-mods, %d failover group(s)"
            % (path_id, len(hops), len(backup_hops), len(flow_mods),
               len(group_mods)),
            path=path_id, mode=self.mode, groups=len(group_mods))
        return len(group_mods)

    def path_for_group(self, dpid: int, group_id: int) -> Optional[str]:
        """The installed path a failover group belongs to (flip-event
        attribution), or None."""
        return self._group_index.get((dpid, group_id))

    def protected_paths(self) -> List[str]:
        """Path ids with at least one failover group installed."""
        return sorted(set(self._group_index.values()))

    @property
    def _flags(self) -> int:
        return FlowMod.SEND_FLOW_REM if self.restore else 0

    def _exact_flow_mods(self, hops: List[PathHop],
                         match: Match) -> List[tuple]:
        flow_mods = []
        for hop in hops:
            hop_match = _clone_match(match, in_port=hop.in_port)
            flow_mods.append((hop.dpid, FlowMod(
                hop_match, [Output(hop.out_port)], priority=self.priority,
                idle_timeout=self.idle_timeout,
                hard_timeout=self.hard_timeout, flags=self._flags)))
        return flow_mods

    def _vlan_flow_mods(self, hops: List[PathHop], match: Match,
                        vlan: int) -> List[tuple]:
        flow_mods = []
        first, last = hops[0], hops[-1]
        # ingress: classify + tag
        ingress_match = _clone_match(match, in_port=first.in_port)
        flow_mods.append((first.dpid, FlowMod(
            ingress_match, [SetVlan(vlan), Output(first.out_port)],
            priority=self.priority, idle_timeout=self.idle_timeout,
            hard_timeout=self.hard_timeout, flags=self._flags)))
        # core: match only the tag + in-port
        for hop in hops[1:-1]:
            flow_mods.append((hop.dpid, FlowMod(
                Match(in_port=hop.in_port, dl_vlan=vlan),
                [Output(hop.out_port)], priority=self.priority,
                idle_timeout=self.idle_timeout,
                hard_timeout=self.hard_timeout, flags=self._flags)))
        # egress: strip
        flow_mods.append((last.dpid, FlowMod(
            Match(in_port=last.in_port, dl_vlan=vlan),
            [StripVlan(), Output(last.out_port)], priority=self.priority,
            idle_timeout=self.idle_timeout,
            hard_timeout=self.hard_timeout, flags=self._flags)))
        return flow_mods

    def _allocate_vlan(self) -> int:
        vlan = self.FIRST_VLAN
        while vlan in self._vlans_in_use:
            vlan += 1
            if vlan >= 4096:
                raise SteeringError("VLAN space exhausted")
        self._vlans_in_use.add(vlan)
        return vlan

    # -- removal -----------------------------------------------------------

    def remove_path(self, path_id: str) -> None:
        installed = self.paths.pop(path_id, None)
        if installed is None:
            raise SteeringError("no path %r installed" % path_id)
        for dpid, flow_mod in installed.flow_mods:
            if dpid not in self.nexus.connections:
                continue
            self.nexus.send(dpid, FlowMod(
                flow_mod.match, command=FlowMod.DELETE_STRICT,
                priority=flow_mod.priority))
            self.flow_mods_sent += 1
            self._m_flow_mods.inc()
        for dpid, group_mod in installed.group_mods:
            self._group_index.pop((dpid, group_mod.group_id), None)
            if dpid not in self.nexus.connections:
                continue
            self.nexus.send(dpid, GroupMod(GroupMod.DELETE,
                                           group_mod.group_id))
            self.group_mods_sent += 1
            self._m_group_mods.inc()
        if installed.vlan is not None:
            self._vlans_in_use.discard(installed.vlan)
        self.telemetry.flowtrace.unregister_path(path_id)
        self.telemetry.events.debug("pox.steering",
                                    "steering.path_removed", path_id,
                                    path=path_id)

    def installed_paths(self) -> List[str]:
        return sorted(self.paths)

    def flow_mod_count(self, path_id: str) -> int:
        installed = self.paths.get(path_id)
        if installed is None:
            raise SteeringError("no path %r installed" % path_id)
        return len(installed.flow_mods)

    def __repr__(self) -> str:
        return "TrafficSteering(%s, %d paths, %d flow-mods)" % (
            self.mode, len(self.paths), self.flow_mods_sent)
