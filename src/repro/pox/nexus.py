"""The OpenFlow nexus: switch connections and event fan-out."""

from typing import Dict, Optional

from repro.openflow import (ControllerChannel, FeaturesReply,
                            FeaturesRequest, FlowMod, FlowRemoved,
                            FlowStatsReply, Hello, Match,
                            BarrierReply, PacketIn, PacketOut,
                            PortStatsReply, PortStatus)
from repro.packet import Ethernet
from repro.packet.base import PacketError
from repro.pox.core import Core
from repro.pox.events import (BarrierIn, ConnectionDown, ConnectionUp,
                              EventMixin, FlowRemovedEvent,
                              FlowStatsReceived, PacketInEvent,
                              PortStatsReceived, PortStatusEvent)


class Connection:
    """Controller-side view of one switch's control channel."""

    def __init__(self, nexus: "OpenFlowNexus", channel: ControllerChannel):
        self.nexus = nexus
        self.channel = channel
        self.dpid: Optional[int] = None
        self.ports = []  # PortDescription list from the FeaturesReply
        self.connected = False
        channel.set_controller_receiver(self._receive)

    def send(self, message) -> None:
        self.channel.send_to_controller  # attribute access keeps mypy honest
        self.channel.send_to_switch(message)

    def _receive(self, message) -> None:
        self.nexus._dispatch(self, message)

    def port_no_by_name(self, name: str) -> Optional[int]:
        for desc in self.ports:
            if desc.name == name:
                return desc.port_no
        return None

    def __repr__(self) -> str:
        return "Connection(dpid=%s, %s)" % (
            self.dpid, "up" if self.connected else "handshaking")


class OpenFlowNexus(EventMixin):
    """Accepts switch channels, performs the handshake, raises events.

    Components subscribe with ``add_listener(PacketInEvent, fn)`` or the
    ``add_listeners(self)`` naming convention.
    """

    def __init__(self, core: Core):
        super().__init__()
        self.core = core
        self.connections: Dict[int, Connection] = {}
        metrics = core.telemetry.metrics
        self._m_packet_in = metrics.counter(
            "pox.nexus.packet_in", "PacketIn messages received")
        self._m_messages = metrics.counter(
            "pox.nexus.messages", "control messages dispatched")

    # Network.add_controller calls this for each switch.
    def accept_connection(self, channel: ControllerChannel) -> Connection:
        return Connection(self, channel)

    def connection(self, dpid: int) -> Connection:
        connection = self.connections.get(dpid)
        if connection is None:
            raise KeyError("no connection for dpid %d" % dpid)
        return connection

    def send(self, dpid: int, message) -> None:
        self.connection(dpid).send(message)

    def disconnect(self, dpid: int) -> None:
        connection = self.connections.pop(dpid, None)
        if connection is not None:
            connection.connected = False
            connection.channel.disconnect()
            self.raise_event(ConnectionDown(connection))

    # -- message dispatch ---------------------------------------------------

    def _dispatch(self, connection: Connection, message) -> None:
        self._m_messages.inc()
        if isinstance(message, PacketIn):
            self._m_packet_in.inc()
        if isinstance(message, Hello):
            connection.send(Hello())
            connection.send(FeaturesRequest())
        elif isinstance(message, FeaturesReply):
            connection.dpid = message.dpid
            connection.ports = message.ports
            connection.connected = True
            self.connections[message.dpid] = connection
            self.raise_event(ConnectionUp(connection))
        elif isinstance(message, PacketIn):
            try:
                parsed = Ethernet.unpack(message.data)
            except PacketError:
                parsed = None
            self.raise_event(PacketInEvent(connection, message, parsed))
        elif isinstance(message, FlowRemoved):
            self.raise_event(FlowRemovedEvent(connection, message))
        elif isinstance(message, PortStatus):
            self.raise_event(PortStatusEvent(connection, message))
        elif isinstance(message, FlowStatsReply):
            self.raise_event(FlowStatsReceived(connection, message.stats))
        elif isinstance(message, PortStatsReply):
            self.raise_event(PortStatsReceived(connection, message.stats))
        elif isinstance(message, BarrierReply):
            self.raise_event(BarrierIn(connection, message))
        # EchoReply and unknown messages are ignored, like POX does.

    def __repr__(self) -> str:
        return "OpenFlowNexus(%d connections)" % len(self.connections)
