"""NETCONF subsystem exceptions."""

from typing import Optional


class NetconfError(Exception):
    """Base class for NETCONF failures."""


class FramingError(NetconfError):
    """Malformed RFC 6242 framing."""


class SessionError(NetconfError):
    """Protocol state violation (e.g. rpc before hello)."""


class RpcTimeout(NetconfError):
    """An RPC's reply did not arrive before its deadline.

    Raised exactly once per timed-out RPC: the pending handle expires,
    deregisters, and a late reply is counted but never resolves it.
    """


class RpcError(NetconfError):
    """An <rpc-error> reply, raised client-side.

    Mirrors the RFC 6241 error fields the server filled in.
    """

    def __init__(self, error_type: str = "application",
                 tag: str = "operation-failed",
                 severity: str = "error",
                 message: str = "", info: Optional[str] = None):
        super().__init__(message or tag)
        self.error_type = error_type
        self.tag = tag
        self.severity = severity
        self.message = message
        self.info = info

    def __repr__(self) -> str:
        return "RpcError(%s/%s: %s)" % (self.error_type, self.tag,
                                        self.message)
