"""YANG data modeling subset.

The paper: "The operation of the agent is described by the YANG data
modeling language".  This package parses YANG module text into a schema
and validates XML instance documents / RPC payloads against it.

Supported statements: ``module`` (namespace, prefix), ``typedef``,
``container``, ``list`` (+ ``key``), ``leaf``, ``leaf-list``, ``type``
(builtin integer family, string [+ length], boolean, enumeration,
decimal64, union-as-any), ``rpc`` (+ ``input``/``output``),
``mandatory``, ``default``, ``description``, ``range``.
"""

from repro.netconf.yang.model import (Container, Leaf, LeafList, ListNode,
                                      Module, Rpc, ValidationError,
                                      compile_module)
from repro.netconf.yang.parser import Statement, YangSyntaxError, parse_yang

__all__ = [
    "Container",
    "Leaf",
    "LeafList",
    "ListNode",
    "Module",
    "Rpc",
    "Statement",
    "ValidationError",
    "YangSyntaxError",
    "compile_module",
    "parse_yang",
]
