"""Tokenizer and statement-tree parser for YANG (RFC 6020 syntax).

YANG's concrete syntax is uniform: ``keyword [argument] ( ';' | '{'
statement* '}' )``.  Arguments are unquoted words or (concatenatable)
quoted strings.  This parser builds the generic statement tree;
:mod:`repro.netconf.yang.model` interprets it.
"""

import re
from typing import List, Optional, Tuple


class YangSyntaxError(Exception):
    pass


class Statement:
    """One YANG statement: keyword, optional argument, substatements."""

    def __init__(self, keyword: str, argument: Optional[str] = None,
                 children: Optional[List["Statement"]] = None):
        self.keyword = keyword
        self.argument = argument
        self.children = list(children or [])

    def find_all(self, keyword: str) -> List["Statement"]:
        return [child for child in self.children
                if child.keyword == keyword]

    def find_one(self, keyword: str) -> Optional["Statement"]:
        matches = self.find_all(keyword)
        return matches[0] if matches else None

    def arg_of(self, keyword: str,
               default: Optional[str] = None) -> Optional[str]:
        child = self.find_one(keyword)
        return child.argument if child is not None else default

    def __repr__(self) -> str:
        return "Statement(%s %r, %d children)" % (self.keyword,
                                                  self.argument,
                                                  len(self.children))


_TOKEN_RE = re.compile(r"""
    (?P<comment_line>//[^\n]*)
  | (?P<comment_block>/\*.*?\*/)
  | (?P<string>"(?:[^"\\]|\\.)*"|'[^']*')
  | (?P<brace_open>\{)
  | (?P<brace_close>\})
  | (?P<semi>;)
  | (?P<plus>\+)
  | (?P<word>[^\s{};"']+)
  | (?P<ws>\s+)
""", re.VERBOSE | re.DOTALL)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise YangSyntaxError("unexpected character %r at offset %d"
                                  % (text[pos], pos))
        kind = match.lastgroup
        if kind not in ("ws", "comment_line", "comment_block"):
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


def _unquote(token: str) -> str:
    if token.startswith('"'):
        body = token[1:-1]
        return re.sub(r"\\(.)",
                      lambda m: {"n": "\n", "t": "\t"}.get(m.group(1),
                                                           m.group(1)),
                      body)
    if token.startswith("'"):
        return token[1:-1]
    return token


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise YangSyntaxError("unexpected end of module")
        self.pos += 1
        return token

    def parse_statements(self) -> List[Statement]:
        statements = []
        while True:
            token = self.peek()
            if token is None or token[0] == "brace_close":
                return statements
            statements.append(self.parse_statement())

    def parse_statement(self) -> Statement:
        kind, keyword = self.next()
        if kind not in ("word",):
            raise YangSyntaxError("expected keyword, got %r" % keyword)
        argument = self._parse_argument()
        kind, token = self.next()
        if kind == "semi":
            return Statement(keyword, argument)
        if kind == "brace_open":
            children = self.parse_statements()
            kind, token = self.next()
            if kind != "brace_close":
                raise YangSyntaxError("expected '}', got %r" % token)
            return Statement(keyword, argument, children)
        raise YangSyntaxError("expected ';' or '{' after %s, got %r"
                              % (keyword, token))

    def _parse_argument(self) -> Optional[str]:
        token = self.peek()
        if token is None or token[0] in ("semi", "brace_open"):
            return None
        kind, text = self.next()
        if kind == "word":
            return text
        if kind == "string":
            parts = [_unquote(text)]
            while self.peek() is not None and self.peek()[0] == "plus":
                self.next()
                kind2, text2 = self.next()
                if kind2 != "string":
                    raise YangSyntaxError("expected string after '+'")
                parts.append(_unquote(text2))
            return "".join(parts)
        raise YangSyntaxError("expected argument, got %r" % text)


def parse_yang(text: str) -> Statement:
    """Parse YANG module text; returns the single top-level statement."""
    parser = _Parser(_tokenize(text))
    statements = parser.parse_statements()
    if parser.peek() is not None:
        raise YangSyntaxError("trailing tokens after module")
    if len(statements) != 1:
        raise YangSyntaxError("expected exactly one top-level statement, "
                              "got %d" % len(statements))
    root = statements[0]
    if root.keyword not in ("module", "submodule"):
        raise YangSyntaxError("top-level statement must be module, got %s"
                              % root.keyword)
    return root
