"""Compile a YANG statement tree into a schema and validate instances."""

import re
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from repro.netconf.messages import local_name
from repro.netconf.yang.parser import Statement, YangSyntaxError


class ValidationError(Exception):
    pass


_INT_RANGES = {
    "int8": (-128, 127), "int16": (-32768, 32767),
    "int32": (-2 ** 31, 2 ** 31 - 1), "int64": (-2 ** 63, 2 ** 63 - 1),
    "uint8": (0, 255), "uint16": (0, 65535),
    "uint32": (0, 2 ** 32 - 1), "uint64": (0, 2 ** 64 - 1),
}


class YangType:
    """A resolved leaf type."""

    def __init__(self, name: str, enums: Optional[List[str]] = None,
                 int_range: Optional[tuple] = None,
                 length: Optional[tuple] = None):
        self.name = name
        self.enums = enums
        self.int_range = int_range
        self.length = length

    def validate(self, text: Optional[str], context: str) -> None:
        value = (text or "").strip()
        if self.name in _INT_RANGES or self.int_range is not None:
            low, high = self.int_range or _INT_RANGES[self.name]
            try:
                number = int(value)
            except ValueError:
                raise ValidationError("%s: %r is not an integer"
                                      % (context, value))
            if not low <= number <= high:
                raise ValidationError("%s: %d outside [%d, %d]"
                                      % (context, number, low, high))
        elif self.name == "boolean":
            if value not in ("true", "false"):
                raise ValidationError("%s: %r is not a boolean"
                                      % (context, value))
        elif self.name == "decimal64":
            try:
                float(value)
            except ValueError:
                raise ValidationError("%s: %r is not a decimal"
                                      % (context, value))
        elif self.name == "enumeration":
            if value not in (self.enums or []):
                raise ValidationError("%s: %r not in enumeration %s"
                                      % (context, value, self.enums))
        elif self.name == "string":
            if self.length is not None:
                low, high = self.length
                if not low <= len(value) <= high:
                    raise ValidationError(
                        "%s: string length %d outside [%d, %d]"
                        % (context, len(value), low, high))
        elif self.name in ("empty",):
            if value:
                raise ValidationError("%s: empty leaf carries a value"
                                      % context)
        # any other type (union, identityref, ...) accepts anything

    def __repr__(self) -> str:
        return "YangType(%s)" % self.name


class SchemaNode:
    def __init__(self, name: str):
        self.name = name
        self.description = ""


class Leaf(SchemaNode):
    def __init__(self, name: str, yang_type: YangType,
                 mandatory: bool = False, default: Optional[str] = None):
        super().__init__(name)
        self.type = yang_type
        self.mandatory = mandatory
        self.default = default

    def __repr__(self) -> str:
        return "Leaf(%s: %s)" % (self.name, self.type.name)


class LeafList(SchemaNode):
    def __init__(self, name: str, yang_type: YangType):
        super().__init__(name)
        self.type = yang_type

    def __repr__(self) -> str:
        return "LeafList(%s: %s)" % (self.name, self.type.name)


class Container(SchemaNode):
    def __init__(self, name: str,
                 children: Optional[Dict[str, SchemaNode]] = None):
        super().__init__(name)
        self.children: Dict[str, SchemaNode] = dict(children or {})

    def __repr__(self) -> str:
        return "Container(%s, %d children)" % (self.name,
                                               len(self.children))


class ListNode(SchemaNode):
    def __init__(self, name: str, key: Optional[str],
                 children: Optional[Dict[str, SchemaNode]] = None):
        super().__init__(name)
        self.key = key
        self.children: Dict[str, SchemaNode] = dict(children or {})

    def __repr__(self) -> str:
        return "ListNode(%s, key=%s)" % (self.name, self.key)


class Rpc(SchemaNode):
    def __init__(self, name: str, input: Optional[Container] = None,
                 output: Optional[Container] = None):
        super().__init__(name)
        self.input = input
        self.output = output

    def __repr__(self) -> str:
        return "Rpc(%s)" % self.name


class Module:
    """A compiled YANG module."""

    def __init__(self, name: str, namespace: str, prefix: str):
        self.name = name
        self.namespace = namespace
        self.prefix = prefix
        self.top: Dict[str, SchemaNode] = {}
        self.rpcs: Dict[str, Rpc] = {}
        self.typedefs: Dict[str, YangType] = {}

    # -- queries -----------------------------------------------------------

    def rpc(self, name: str) -> Rpc:
        if name not in self.rpcs:
            raise ValidationError("module %s has no rpc %r"
                                  % (self.name, name))
        return self.rpcs[name]

    def list_keys(self) -> Dict[str, str]:
        """Map list-node name -> key-leaf name (for Datastore)."""
        keys: Dict[str, str] = {}

        def walk(node: SchemaNode) -> None:
            if isinstance(node, ListNode):
                if node.key:
                    keys[node.name] = node.key
                for child in node.children.values():
                    walk(child)
            elif isinstance(node, Container):
                for child in node.children.values():
                    walk(child)

        for node in self.top.values():
            walk(node)
        return keys

    # -- instance validation --------------------------------------------------

    def validate_data(self, element: ET.Element) -> None:
        """Validate a top-level data element against the module."""
        name = local_name(element.tag)
        node = self.top.get(name)
        if node is None:
            raise ValidationError("unknown top-level element <%s>" % name)
        self._validate_node(element, node, name)

    def validate_rpc_input(self, rpc_name: str,
                           element: ET.Element) -> None:
        """Validate an rpc invocation payload (children = input leaves)."""
        rpc = self.rpc(rpc_name)
        schema = rpc.input or Container(rpc_name)
        self._validate_children(element, schema.children,
                                "rpc %s" % rpc_name)

    def _validate_node(self, element: ET.Element, node: SchemaNode,
                       context: str) -> None:
        if isinstance(node, Leaf):
            node.type.validate(element.text, context)
        elif isinstance(node, LeafList):
            node.type.validate(element.text, context)
        elif isinstance(node, Container):
            self._validate_children(element, node.children, context)
        elif isinstance(node, ListNode):
            if node.key is not None:
                key_values = [child.text for child in element
                              if local_name(child.tag) == node.key]
                if not key_values:
                    raise ValidationError("%s: list entry missing key %r"
                                          % (context, node.key))
            self._validate_children(element, node.children, context)

    def _validate_children(self, element: ET.Element,
                           schema: Dict[str, SchemaNode],
                           context: str) -> None:
        seen = set()
        for child in element:
            name = local_name(child.tag)
            node = schema.get(name)
            if node is None:
                raise ValidationError("%s: unexpected element <%s>"
                                      % (context, name))
            seen.add(name)
            self._validate_node(child, node, "%s/%s" % (context, name))
        for name, node in schema.items():
            if isinstance(node, Leaf) and node.mandatory \
                    and name not in seen:
                raise ValidationError("%s: mandatory leaf %r missing"
                                      % (context, name))

    def __repr__(self) -> str:
        return "Module(%s, %d top nodes, %d rpcs)" % (
            self.name, len(self.top), len(self.rpcs))


# -- compilation --------------------------------------------------------------


def compile_module(root: Statement) -> Module:
    """Turn a parsed ``module`` statement into a :class:`Module`."""
    if root.keyword != "module":
        raise YangSyntaxError("expected a module statement")
    namespace = root.arg_of("namespace", "")
    prefix = root.arg_of("prefix", "")
    module = Module(root.argument or "", namespace, prefix)
    for stmt in root.find_all("typedef"):
        module.typedefs[stmt.argument] = _compile_type(
            stmt.find_one("type"), module)
    for stmt in root.children:
        if stmt.keyword in ("container", "list", "leaf", "leaf-list"):
            node = _compile_data_node(stmt, module)
            module.top[node.name] = node
        elif stmt.keyword == "rpc":
            rpc = _compile_rpc(stmt, module)
            module.rpcs[rpc.name] = rpc
    return module


def _compile_rpc(stmt: Statement, module: Module) -> Rpc:
    input_stmt = stmt.find_one("input")
    output_stmt = stmt.find_one("output")
    input_container = None
    output_container = None
    if input_stmt is not None:
        input_container = Container(
            "input", _compile_children(input_stmt, module))
    if output_stmt is not None:
        output_container = Container(
            "output", _compile_children(output_stmt, module))
    return Rpc(stmt.argument or "", input_container, output_container)


def _compile_children(stmt: Statement,
                      module: Module) -> Dict[str, SchemaNode]:
    children: Dict[str, SchemaNode] = {}
    for child in stmt.children:
        if child.keyword in ("container", "list", "leaf", "leaf-list"):
            node = _compile_data_node(child, module)
            children[node.name] = node
    return children


def _compile_data_node(stmt: Statement, module: Module) -> SchemaNode:
    name = stmt.argument or ""
    if stmt.keyword == "leaf":
        leaf = Leaf(name, _compile_type(stmt.find_one("type"), module),
                    mandatory=stmt.arg_of("mandatory") == "true",
                    default=stmt.arg_of("default"))
        leaf.description = stmt.arg_of("description", "")
        return leaf
    if stmt.keyword == "leaf-list":
        return LeafList(name, _compile_type(stmt.find_one("type"), module))
    if stmt.keyword == "container":
        return Container(name, _compile_children(stmt, module))
    if stmt.keyword == "list":
        return ListNode(name, stmt.arg_of("key"),
                        _compile_children(stmt, module))
    raise YangSyntaxError("unsupported data node %s" % stmt.keyword)


def _compile_type(type_stmt: Optional[Statement],
                  module: Module) -> YangType:
    if type_stmt is None:
        return YangType("string")
    name = type_stmt.argument or "string"
    # strip an optional prefix ("t:my-type")
    bare = name.split(":")[-1]
    if bare in module.typedefs:
        return module.typedefs[bare]
    if bare == "enumeration":
        enums = [enum.argument for enum in type_stmt.find_all("enum")]
        return YangType("enumeration", enums=enums)
    int_range = None
    range_stmt = type_stmt.find_one("range")
    if range_stmt is not None and bare in _INT_RANGES:
        int_range = _parse_range(range_stmt.argument, _INT_RANGES[bare])
    length = None
    length_stmt = type_stmt.find_one("length")
    if length_stmt is not None and bare == "string":
        length = _parse_range(length_stmt.argument, (0, 2 ** 64))
    return YangType(bare, int_range=int_range, length=length)


def _parse_range(text: Optional[str], bounds: tuple) -> tuple:
    if not text:
        return bounds
    match = re.match(r"\s*(\S+)\s*\.\.\s*(\S+)\s*$", text)
    if match is None:
        value = int(text.strip())
        return (value, value)
    low_text, high_text = match.group(1), match.group(2)
    low = bounds[0] if low_text == "min" else int(low_text)
    high = bounds[1] if high_text == "max" else int(high_text)
    return (low, high)
