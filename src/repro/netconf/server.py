"""NETCONF server (agent side).

Speaks hello + base operations over a transport, dispatches custom RPCs
to registered handlers, and serves get/get-config/edit-config from a
:class:`~repro.netconf.datastore.Datastore`.  After the hello exchange
the session upgrades to chunked framing when both peers advertise
:base:1.1, exactly as RFC 6242 prescribes.
"""

import itertools
import xml.etree.ElementTree as ET
from typing import Callable, Dict, List, Optional

from repro.netconf.datastore import Datastore, DatastoreError
from repro.netconf.errors import NetconfError, RpcError, SessionError
from repro.netconf.framing import ChunkedFramer, EomFramer
from repro.netconf import messages as nc
from repro.netconf.transport import InMemoryTransport

_session_ids = itertools.count(1)

RpcHandler = Callable[[ET.Element], Optional[List[ET.Element]]]


class NetconfServer:
    """One agent endpoint; create per accepted transport."""

    def __init__(self, transport: InMemoryTransport,
                 capabilities: Optional[List[str]] = None,
                 datastores: Optional[Dict[str, Datastore]] = None,
                 candidate: bool = True):
        self.transport = transport
        self.session_id = next(_session_ids)
        self.capabilities = list(capabilities or []) or [nc.CAP_BASE_10,
                                                         nc.CAP_BASE_11]
        self.datastores = datastores or {"running": Datastore("running")}
        if candidate and "candidate" not in self.datastores:
            self.datastores["candidate"] = Datastore("candidate")
            if nc.CAP_CANDIDATE not in self.capabilities:
                self.capabilities.append(nc.CAP_CANDIDATE)
        self.locks: Dict[str, int] = {}  # datastore -> session id
        self._rpc_handlers: Dict[str, RpcHandler] = {}
        self._rx_framer = EomFramer()
        self._tx_framer = EomFramer()
        self.peer_capabilities: Optional[List[str]] = None
        self.closed = False
        self.rpc_count = 0
        transport.set_receiver(self._receive)
        self._send(nc.build_hello(self.capabilities, self.session_id))

    # -- registration ----------------------------------------------------

    def register_rpc(self, name: str, handler: RpcHandler) -> None:
        """Handle a custom RPC by local name.  The handler receives the
        operation element and returns reply children (None = <ok/>)."""
        self._rpc_handlers[name] = handler

    def datastore(self, name: str) -> Datastore:
        store = self.datastores.get(name)
        if store is None:
            raise RpcError(tag="invalid-value",
                           message="no datastore %r" % name)
        return store

    # -- plumbing -----------------------------------------------------------

    def _send(self, element: ET.Element) -> None:
        if self.closed:
            return
        self.transport.send(self._tx_framer.frame(nc.to_xml(element)))

    def _receive(self, data: bytes) -> None:
        if self.closed:
            return
        for payload in self._rx_framer.feed(data):
            self._handle_message(payload)

    def _maybe_upgrade_framing(self) -> None:
        if (nc.CAP_BASE_11 in self.capabilities
                and self.peer_capabilities is not None
                and nc.CAP_BASE_11 in self.peer_capabilities):
            self._rx_framer = ChunkedFramer()
            self._tx_framer = ChunkedFramer()

    def _handle_message(self, payload: bytes) -> None:
        try:
            kind, root = nc.parse_message(payload)
        except NetconfError as exc:
            self._send(nc.build_rpc_error(None, RpcError(
                error_type="protocol", tag="malformed-message",
                message=str(exc))))
            return
        if kind == "hello":
            self.peer_capabilities = nc.hello_capabilities(root)
            self._maybe_upgrade_framing()
            return
        if kind != "rpc":
            return  # agents ignore stray rpc-replies
        if self.peer_capabilities is None:
            self._send(nc.build_rpc_error(None, RpcError(
                error_type="protocol", tag="operation-failed",
                message="rpc before hello")))
            return
        self._dispatch_rpc(root)

    # -- rpc dispatch ---------------------------------------------------------

    def _dispatch_rpc(self, rpc: ET.Element) -> None:
        self.rpc_count += 1
        try:
            message_id = nc.rpc_message_id(rpc)
        except NetconfError as exc:
            self._send(nc.build_rpc_error(None, RpcError(
                error_type="rpc", tag="missing-attribute",
                message=str(exc))))
            return
        try:
            operation = nc.rpc_operation(rpc)
            body = self._execute(operation)
            self._send(nc.build_rpc_reply(message_id, body))
        except RpcError as error:
            self._send(nc.build_rpc_error(message_id, error))
        except (NetconfError, DatastoreError) as exc:
            self._send(nc.build_rpc_error(message_id, RpcError(
                tag="operation-failed", message=str(exc))))

    def _execute(self, operation: ET.Element) -> Optional[List[ET.Element]]:
        name = nc.local_name(operation.tag)
        if name == "get":
            return self._op_get(operation, config_only=False)
        if name == "get-config":
            return self._op_get(operation, config_only=True)
        if name == "edit-config":
            return self._op_edit_config(operation)
        if name == "close-session":
            self._send_close_ok_then_close()
            return None
        if name == "commit":
            return self._op_commit()
        if name == "discard-changes":
            return self._op_discard()
        if name == "lock":
            return self._op_lock(operation, acquire=True)
        if name == "unlock":
            return self._op_lock(operation, acquire=False)
        if name == "validate":
            return None  # schema-backed stores validate on edit
        handler = self._rpc_handlers.get(name)
        if handler is None:
            raise RpcError(error_type="protocol",
                           tag="operation-not-supported",
                           message="unknown operation %r" % name)
        return handler(operation)

    def _send_close_ok_then_close(self) -> None:
        # reply is emitted by the dispatcher; close shortly after so the
        # <ok/> still goes out first.
        self.transport.sim.schedule(0.0, self.close)

    def _op_get(self, operation: ET.Element,
                config_only: bool) -> List[ET.Element]:
        source = "running"
        if config_only:
            source_el = operation.find(nc.qn("source"))
            if source_el is not None and len(source_el):
                source = nc.local_name(list(source_el)[0].tag)
        store = self.datastore(source)
        filter_el = operation.find(nc.qn("filter"))
        subtree = None
        if filter_el is not None and len(filter_el):
            subtree = list(filter_el)[0]
        return [store.get_subtree(subtree)]

    def _op_edit_config(self, operation: ET.Element) -> None:
        target_el = operation.find(nc.qn("target"))
        if target_el is None or not len(target_el):
            raise RpcError(tag="missing-element", message="no target")
        target = nc.local_name(list(target_el)[0].tag)
        holder = self.locks.get(target)
        if holder is not None and holder != self.session_id:
            raise RpcError(tag="lock-denied",
                           message="datastore %r locked by session %d"
                           % (target, holder), info=str(holder))
        default_op = "merge"
        default_el = operation.find(nc.qn("default-operation"))
        if default_el is not None and default_el.text:
            default_op = default_el.text.strip()
        config_el = operation.find(nc.qn("config"))
        if config_el is None:
            raise RpcError(tag="missing-element", message="no config")
        store = self.datastore(target)
        for fragment in config_el:
            store.edit(fragment, default_op)
        return None

    def _op_commit(self) -> None:
        """Copy candidate -> running (RFC 6241 §8.3)."""
        candidate = self.datastores.get("candidate")
        if candidate is None:
            raise RpcError(error_type="protocol",
                           tag="operation-not-supported",
                           message="no candidate datastore")
        self.datastore("running").copy_from(candidate)
        return None

    def _op_discard(self) -> None:
        """Reset candidate to the running configuration."""
        candidate = self.datastores.get("candidate")
        if candidate is None:
            raise RpcError(error_type="protocol",
                           tag="operation-not-supported",
                           message="no candidate datastore")
        candidate.copy_from(self.datastore("running"))
        return None

    def _op_lock(self, operation, acquire: bool) -> None:
        target_el = operation.find(nc.qn("target"))
        if target_el is None or not len(target_el):
            raise RpcError(tag="missing-element", message="no target")
        target = nc.local_name(list(target_el)[0].tag)
        self.datastore(target)  # existence check
        holder = self.locks.get(target)
        if acquire:
            if holder is not None and holder != self.session_id:
                raise RpcError(tag="lock-denied",
                               message="locked by session %d" % holder,
                               info=str(holder))
            self.locks[target] = self.session_id
        else:
            if holder is not None and holder != self.session_id:
                raise RpcError(tag="lock-denied",
                               message="locked by session %d" % holder)
            self.locks.pop(target, None)
        return None

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.transport.close()

    def __repr__(self) -> str:
        return "NetconfServer(session=%d, %d rpcs, %s)" % (
            self.session_id, self.rpc_count,
            "closed" if self.closed else "open")
