"""The VNF-container NETCONF agent (OpenYuma analog).

Wires the :data:`~repro.netconf.vnf_yang.VNF_YANG` model to a
:class:`~repro.netem.vnf.VNFContainer`: every RPC input is validated
against the YANG schema, then executed by the container's
instrumentation methods.  Migrating to a real platform would swap only
those instrumentation calls — the point the paper makes about its agent
design.
"""

import xml.etree.ElementTree as ET
from typing import List, Optional

from repro.click.element import HandlerError
from repro.click.errors import ClickError
from repro.netconf.errors import RpcError
from repro.netconf.messages import local_name, qn
from repro.netconf.server import NetconfServer
from repro.netconf.transport import InMemoryTransport
from repro.netconf.vnf_yang import VNF_NS, VNF_YANG
from repro.netconf.yang import ValidationError, compile_module, parse_yang
from repro.netem.resources import ResourceError
from repro.netem.vnf import VNFContainer
from repro.telemetry import current as current_telemetry

CAP_VNF = "urn:escape:capability:vnf:1.0"


class VNFAgent:
    """NETCONF agent managing one VNF container."""

    def __init__(self, container: VNFContainer,
                 transport: InMemoryTransport):
        self.container = container
        self.module = compile_module(parse_yang(VNF_YANG))
        from repro.netconf.messages import CAP_BASE_10, CAP_BASE_11
        self.server = NetconfServer(
            transport,
            capabilities=[CAP_BASE_10, CAP_BASE_11, CAP_VNF,
                          self.module.namespace])
        for rpc_name in ("startVNF", "stopVNF", "connectVNF",
                         "disconnectVNF", "getVNFInfo", "listHandlers",
                         "writeVNFHandler"):
            self.server.register_rpc(
                rpc_name,
                lambda op, name=rpc_name: self._invoke(name, op))
        metrics = current_telemetry().metrics
        self._m_rpcs = metrics.counter(
            "netconf.agent.rpcs", "custom RPCs handled by VNF agents")
        self._m_rpc_errors = metrics.counter(
            "netconf.agent.rpc_errors",
            "agent RPCs rejected (validation or operation failure)")
        self._profiler = current_telemetry().profiler
        # operational state is served through <get>: regenerate on demand
        self._install_state_hook()

    def _install_state_hook(self) -> None:
        original = self.server._op_get

        def op_get(operation, config_only):
            if not config_only:
                self._refresh_state()
            return original(operation, config_only)

        self.server._op_get = op_get

    # -- rpc execution ----------------------------------------------------

    def _invoke(self, name: str,
                operation: ET.Element) -> Optional[List[ET.Element]]:
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("netconf.rpc.dispatch"):
                return self._invoke_timed(name, operation)
        return self._invoke_timed(name, operation)

    def _invoke_timed(self, name: str,
                      operation: ET.Element) -> Optional[List[ET.Element]]:
        self._m_rpcs.inc()
        try:
            self.module.validate_rpc_input(name, operation)
        except ValidationError as exc:
            self._m_rpc_errors.inc()
            raise RpcError(error_type="application", tag="invalid-value",
                           message=str(exc))
        params = {local_name(child.tag): (child.text or "").strip()
                  for child in operation}
        try:
            return getattr(self, "_rpc_%s" % name)(params)
        except (ValueError, ResourceError, HandlerError,
                ClickError) as exc:
            self._m_rpc_errors.inc()
            raise RpcError(error_type="application",
                           tag="operation-failed", message=str(exc))

    def _rpc_startVNF(self, params) -> List[ET.Element]:
        devices = [dev.strip()
                   for dev in params.get("devices", "").split(",")
                   if dev.strip()]
        process = self.container.start_vnf(
            params["id"], params["click-config"], devices,
            cpu=float(params.get("cpu", 0.5)),
            mem=float(params.get("mem", 256.0)))
        status = ET.Element(qn("status", VNF_NS))
        status.text = process.status
        return [status]

    def _rpc_stopVNF(self, params) -> None:
        self.container.stop_vnf(params["id"])
        return None

    def _rpc_connectVNF(self, params) -> None:
        self.container.connect_vnf(params["id"], params["device"],
                                   params["interface"])
        return None

    def _rpc_disconnectVNF(self, params) -> None:
        self.container.disconnect_vnf(params["id"], params["device"])
        return None

    def _rpc_getVNFInfo(self, params) -> List[ET.Element]:
        process = self.container.get_vnf(params["id"])
        value = ET.Element(qn("value", VNF_NS))
        value.text = process.read_handler(params["handler"])
        return [value]

    def _rpc_listHandlers(self, params) -> List[ET.Element]:
        process = self.container.get_vnf(params["id"])
        lines = []
        for element_name, (reads, _writes) in sorted(
                process.handlers().items()):
            for handler in reads:
                lines.append("%s.%s" % (element_name, handler))
        value = ET.Element(qn("handlers", VNF_NS))
        value.text = "\n".join(lines)
        return [value]

    def _rpc_writeVNFHandler(self, params) -> None:
        process = self.container.get_vnf(params["id"])
        process.write_handler(params["handler"], params["value"])
        return None

    # -- operational state ----------------------------------------------------

    def _refresh_state(self) -> None:
        """Rebuild the <vnfs> and <capacity> subtrees in running."""
        store = self.server.datastores["running"]
        for tag in ("vnfs", "capacity"):
            existing = store.root.find(qn(tag, VNF_NS))
            if existing is not None:
                store.root.remove(existing)
        vnfs = ET.SubElement(store.root, qn("vnfs", VNF_NS))
        for vnf_id, info in sorted(
                self.container.status_report().items()):
            vnf = ET.SubElement(vnfs, qn("vnf", VNF_NS))
            ET.SubElement(vnf, qn("id", VNF_NS)).text = vnf_id
            ET.SubElement(vnf, qn("status", VNF_NS)).text = info["status"]
            ET.SubElement(vnf, qn("cpu", VNF_NS)).text = str(info["cpu"])
            ET.SubElement(vnf, qn("mem", VNF_NS)).text = str(info["mem"])
            ET.SubElement(vnf, qn("uptime", VNF_NS)).text = \
                "%.6f" % info["uptime"]
            for devname, intf in sorted(info["devices"].items()):
                device = ET.SubElement(vnf, qn("device", VNF_NS))
                ET.SubElement(device, qn("name", VNF_NS)).text = devname
                ET.SubElement(device, qn("interface", VNF_NS)).text = \
                    intf or ""
        capacity = ET.SubElement(store.root, qn("capacity", VNF_NS))
        snapshot = self.container.budget.snapshot()
        for key in ("cpu_capacity", "cpu_used", "mem_capacity", "mem_used"):
            tag = key.replace("_", "-")
            ET.SubElement(capacity, qn(tag, VNF_NS)).text = \
                "%.3f" % snapshot[key]

    def __repr__(self) -> str:
        return "VNFAgent(%s, session=%d)" % (self.container.name,
                                             self.server.session_id)
