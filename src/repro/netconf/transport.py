"""In-memory byte-stream transport (the SSH substitution).

A :class:`TransportPair` is a full-duplex pipe with per-direction
latency and optional byte-rate limiting, modelled on the simulator — so
NETCONF RPC round-trips cost simulated time the same way the paper's
management network does.  Delivery preserves ordering and segments the
stream arbitrarily (every write is one delivery), which exercises the
framers' reassembly logic.
"""

from typing import Callable, Optional

from repro.sim import Simulator


class InMemoryTransport:
    """One endpoint of the pipe."""

    def __init__(self, sim: Simulator, latency: float = 0.001,
                 byte_rate: Optional[float] = None):
        self.sim = sim
        self.latency = latency
        self.byte_rate = byte_rate
        self.peer: Optional["InMemoryTransport"] = None
        self.receiver: Optional[Callable[[bytes], None]] = None
        self.closed = False
        self.on_close: Optional[Callable[[], None]] = None
        self.tx_bytes = 0
        self.rx_bytes = 0
        self._busy_until = 0.0
        # fault-injection hooks (repro.chaos): a blackholed endpoint
        # silently eats writes; ``fault_latency`` adds one-way delay
        # (transport "slowness") on top of the configured latency
        self.blackhole = False
        self.fault_latency = 0.0
        self.blackholed_bytes = 0

    def set_receiver(self, callback: Callable[[bytes], None]) -> None:
        self.receiver = callback

    def send(self, data: bytes) -> None:
        if self.closed or self.peer is None:
            return
        if self.blackhole:
            self.blackholed_bytes += len(data)
            return
        self.tx_bytes += len(data)
        now = self.sim.now
        if self.byte_rate is not None:
            serialization = len(data) / self.byte_rate
            depart = max(now, self._busy_until) + serialization
            self._busy_until = depart
        else:
            depart = now
        self.sim.schedule(depart - now + self.latency
                          + self.fault_latency,
                          self.peer._deliver, data)

    def _deliver(self, data: bytes) -> None:
        if self.closed:
            return
        self.rx_bytes += len(data)
        if self.receiver is not None:
            self.receiver(data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.on_close is not None:
            self.on_close()
        if self.peer is not None and not self.peer.closed:
            self.sim.schedule(self.latency, self.peer.close)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return "InMemoryTransport(%s, tx=%d, rx=%d)" % (state,
                                                        self.tx_bytes,
                                                        self.rx_bytes)


class TransportPair:
    """Create both ends of a pipe: ``.client`` and ``.server``."""

    def __init__(self, sim: Simulator, latency: float = 0.001,
                 byte_rate: Optional[float] = None):
        self.client = InMemoryTransport(sim, latency, byte_rate)
        self.server = InMemoryTransport(sim, latency, byte_rate)
        self.client.peer = self.server
        self.server.peer = self.client

    def __repr__(self) -> str:
        return "TransportPair(client=%r, server=%r)" % (self.client,
                                                        self.server)
