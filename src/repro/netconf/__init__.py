"""NETCONF + YANG management stack (the OpenYuma analog).

The paper manages VNF containers through NETCONF: an agent on each
container exposes RPCs — described in YANG, implemented by "low-level
instrumentation codes" — that the orchestrator's NETCONF client calls
to start/stop VNFs and connect/disconnect them to/from switches.

This package implements the protocol subset that workflow needs:

* RFC 6242 framing (end-of-message and chunked) over an in-memory
  latency-modelled transport (the SSH substitution),
* hello/capability exchange, ``get``, ``get-config``, ``edit-config``,
  ``close-session`` and custom RPC dispatch with proper ``rpc-reply`` /
  ``rpc-error`` envelopes (:mod:`~repro.netconf.messages`),
* running/candidate datastores with merge/replace/delete edit-config
  semantics (:mod:`~repro.netconf.datastore`),
* a YANG subset parser + instance validator
  (:mod:`repro.netconf.yang`),
* the VNF-container agent and its YANG module
  (:mod:`~repro.netconf.agent`, :data:`~repro.netconf.vnf_yang.VNF_YANG`),
* the orchestrator-side client (:mod:`~repro.netconf.client`).
"""

from repro.netconf.agent import VNFAgent
from repro.netconf.client import NetconfClient, PendingReply
from repro.netconf.datastore import Datastore, DatastoreError
from repro.netconf.errors import (FramingError, NetconfError, RpcError,
                                  RpcTimeout, SessionError)
from repro.netconf.framing import (ChunkedFramer, EomFramer)
from repro.netconf.messages import (BASE_NS, build_hello, build_rpc,
                                    build_rpc_error, build_rpc_reply,
                                    parse_message, to_xml, from_xml)
from repro.netconf.server import NetconfServer
from repro.netconf.transport import InMemoryTransport, TransportPair
from repro.netconf.vnf_yang import VNF_YANG

__all__ = [
    "BASE_NS",
    "ChunkedFramer",
    "Datastore",
    "DatastoreError",
    "EomFramer",
    "FramingError",
    "InMemoryTransport",
    "NetconfClient",
    "NetconfError",
    "NetconfServer",
    "PendingReply",
    "RpcError",
    "RpcTimeout",
    "SessionError",
    "TransportPair",
    "VNFAgent",
    "VNF_YANG",
    "build_hello",
    "build_rpc",
    "build_rpc_error",
    "build_rpc_reply",
    "from_xml",
    "parse_message",
    "to_xml",
]
