"""RFC 6242 message framing.

Two framers, matching the RFC:

* :class:`EomFramer` — ``]]>]]>`` end-of-message delimiter (the :base:1.0
  mechanism, mandatory for the hello exchange),
* :class:`ChunkedFramer` — ``\\n#<len>\\n...\\n##\\n`` chunks (the
  :base:1.1 mechanism used after both peers advertise it).

Both expose ``frame(payload) -> bytes`` and a stateful
``feed(data) -> list of payloads`` that tolerates arbitrary stream
segmentation.
"""

import re
from typing import List

from repro.netconf.errors import FramingError

EOM = b"]]>]]>"

_CHUNK_HEADER_RE = re.compile(rb"\n#(\d+)\n")
_CHUNK_END = b"\n##\n"
MAX_CHUNK = 4294967295


class EomFramer:
    """]]>]]>-delimited framing."""

    def __init__(self):
        self._buffer = b""

    def frame(self, payload: bytes) -> bytes:
        if EOM in payload:
            raise FramingError("payload contains the EOM delimiter")
        return payload + EOM

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer += data
        messages = []
        while True:
            index = self._buffer.find(EOM)
            if index < 0:
                break
            messages.append(self._buffer[:index])
            self._buffer = self._buffer[index + len(EOM):]
        return messages


class ChunkedFramer:
    """RFC 6242 §4.2 chunked framing."""

    def __init__(self):
        self._buffer = b""
        self._chunks: List[bytes] = []

    def frame(self, payload: bytes) -> bytes:
        if not payload:
            raise FramingError("cannot frame an empty message")
        if len(payload) > MAX_CHUNK:
            raise FramingError("message exceeds maximum chunk size")
        return b"\n#%d\n" % len(payload) + payload + _CHUNK_END

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer += data
        messages: List[bytes] = []
        while self._buffer:
            if self._buffer.startswith(_CHUNK_END):
                messages.append(b"".join(self._chunks))
                self._chunks = []
                self._buffer = self._buffer[len(_CHUNK_END):]
                continue
            match = _CHUNK_HEADER_RE.match(self._buffer)
            if match is None:
                if len(self._buffer) >= 12 and not _could_be_header(
                        self._buffer):
                    raise FramingError("malformed chunk header: %r"
                                       % self._buffer[:12])
                break  # need more data
            length = int(match.group(1))
            if length < 1 or length > MAX_CHUNK:
                raise FramingError("chunk length out of range: %d" % length)
            start = match.end()
            if len(self._buffer) < start + length:
                break  # chunk body incomplete
            self._chunks.append(self._buffer[start:start + length])
            self._buffer = self._buffer[start + length:]
        return messages


def _could_be_header(buffer: bytes) -> bool:
    """Whether ``buffer`` could still grow into a valid header/end."""
    prefixes = (b"\n#", b"\n")
    return any(buffer.startswith(prefix) or prefix.startswith(buffer)
               for prefix in prefixes)
