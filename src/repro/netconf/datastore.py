"""Configuration datastores with edit-config semantics.

A datastore holds an XML tree rooted at ``<data>``.  ``edit-config``
applies a config fragment with per-node ``operation`` attributes
(merge / replace / create / delete / remove) on top of the request's
default operation, per RFC 6241 §7.2.  List entries are identified by
their key leaves when the schema provides them, else by full equality.
"""

import copy
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from repro.netconf.errors import NetconfError
from repro.netconf.messages import BASE_NS, local_name, qn

OPERATION_ATTR = qn("operation", BASE_NS)


class DatastoreError(NetconfError):
    pass


class Datastore:
    """One named datastore (running / candidate / startup).

    ``list_keys`` maps an element local-name to the local-name of its
    key leaf, enabling list-entry matching (e.g. ``{"vnf": "id"}``).
    """

    def __init__(self, name: str = "running",
                 list_keys: Optional[Dict[str, str]] = None):
        self.name = name
        self.root = ET.Element(qn("data"))
        self.list_keys = dict(list_keys or {})

    def copy_from(self, other: "Datastore") -> None:
        """Replace contents with a deep copy of ``other`` (commit)."""
        self.root = copy.deepcopy(other.root)

    def get(self) -> ET.Element:
        return copy.deepcopy(self.root)

    def get_subtree(self, filter_element: Optional[ET.Element]
                    ) -> ET.Element:
        """Subtree-filtered copy (exact-tag selection, one level)."""
        if filter_element is None:
            return self.get()
        result = ET.Element(qn("data"))
        for child in self.root:
            if child.tag == filter_element.tag:
                result.append(copy.deepcopy(child))
        return result

    # -- edit-config --------------------------------------------------------

    def edit(self, config: ET.Element,
             default_operation: str = "merge") -> None:
        """Apply a ``<config>`` child fragment to this datastore."""
        if default_operation not in ("merge", "replace", "none"):
            raise DatastoreError("bad default-operation %r"
                                 % default_operation)
        self._merge_children(self.root, [config], default_operation)

    def _merge_children(self, target: ET.Element,
                        fragments: List[ET.Element],
                        default_op: str) -> None:
        for fragment in fragments:
            operation = fragment.get(OPERATION_ATTR, default_op)
            existing = self._find_match(target, fragment)
            if operation in ("delete", "remove"):
                if existing is None:
                    if operation == "delete":
                        raise DatastoreError(
                            "cannot delete missing node <%s>"
                            % local_name(fragment.tag))
                    continue
                target.remove(existing)
                continue
            if operation == "create" and existing is not None:
                raise DatastoreError("node <%s> already exists"
                                     % local_name(fragment.tag))
            if operation == "replace" and existing is not None:
                target.remove(existing)
                existing = None
            if existing is None:
                clone = copy.deepcopy(fragment)
                _strip_operation_attrs(clone)
                target.append(clone)
                continue
            # merge: text overrides, children recurse
            if fragment.text is not None and fragment.text.strip():
                existing.text = fragment.text
            child_fragments = list(fragment)
            if child_fragments:
                self._merge_children(existing, child_fragments, "merge")

    def _find_match(self, parent: ET.Element,
                    fragment: ET.Element) -> Optional[ET.Element]:
        """Locate the existing child ``fragment`` refers to."""
        name = local_name(fragment.tag)
        key_leaf = self.list_keys.get(name)
        for child in parent:
            if child.tag != fragment.tag:
                continue
            if key_leaf is None:
                return child
            if self._key_value(child, key_leaf) == \
                    self._key_value(fragment, key_leaf):
                return child
        return None

    @staticmethod
    def _key_value(element: ET.Element, key_leaf: str) -> Optional[str]:
        for child in element:
            if local_name(child.tag) == key_leaf:
                return (child.text or "").strip()
        return None

    def __repr__(self) -> str:
        return "Datastore(%s, %d top-level nodes)" % (self.name,
                                                      len(self.root))


def _strip_operation_attrs(element: ET.Element) -> None:
    element.attrib.pop(OPERATION_ATTR, None)
    for child in element:
        _strip_operation_attrs(child)
