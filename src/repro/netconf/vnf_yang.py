"""The VNF-container YANG module.

This is the data model the paper describes: "The operation of the agent
is described by the YANG data modeling language and implemented by
low-level instrumentation codes."  RPCs: initiate (start), terminate
(stop), connect/disconnect VNF ports, plus a state container the
orchestrator's <get> reads for "real-time management information on
running VNFs".
"""

VNF_NS = "urn:escape:params:xml:ns:yang:vnf"

VNF_YANG = """
module vnf {
  namespace "urn:escape:params:xml:ns:yang:vnf";
  prefix "vnf";

  description
    "Management model for ESCAPE VNF containers: start/stop Click-based
     VNFs, splice their virtual devices to switch-facing interfaces, and
     expose per-VNF status and Clicky-style handlers.";

  typedef vnf-status {
    type enumeration {
      enum INITIALIZING;
      enum UP;
      enum STOPPED;
      enum FAILED;
    }
  }

  container vnfs {
    description "Operational state of hosted VNFs.";
    list vnf {
      key id;
      leaf id { type string; }
      leaf status { type vnf-status; }
      leaf cpu { type decimal64; }
      leaf mem { type decimal64; }
      leaf uptime { type decimal64; }
      list device {
        key name;
        leaf name { type string; }
        leaf interface { type string; }
      }
    }
  }

  container capacity {
    description "cgroup budget of the container.";
    leaf cpu-capacity { type decimal64; }
    leaf cpu-used { type decimal64; }
    leaf mem-capacity { type decimal64; }
    leaf mem-used { type decimal64; }
  }

  rpc startVNF {
    description "Launch a Click-based VNF in this container.";
    input {
      leaf id { type string; mandatory true; }
      leaf click-config { type string; mandatory true; }
      leaf devices { type string;
        description "comma-separated virtual device names"; }
      leaf cpu { type decimal64; default "0.5"; }
      leaf mem { type decimal64; default "256"; }
    }
    output {
      leaf status { type vnf-status; }
    }
  }

  rpc stopVNF {
    input {
      leaf id { type string; mandatory true; }
    }
  }

  rpc connectVNF {
    description "Splice a VNF device to a switch-facing interface.";
    input {
      leaf id { type string; mandatory true; }
      leaf device { type string; mandatory true; }
      leaf interface { type string; mandatory true; }
    }
  }

  rpc disconnectVNF {
    input {
      leaf id { type string; mandatory true; }
      leaf device { type string; mandatory true; }
    }
  }

  rpc getVNFInfo {
    description "Read one Clicky handler of a running VNF.";
    input {
      leaf id { type string; mandatory true; }
      leaf handler { type string; mandatory true; }
    }
    output {
      leaf value { type string; }
    }
  }

  rpc listHandlers {
    description "Enumerate the read handlers of a running VNF.";
    input {
      leaf id { type string; mandatory true; }
    }
    output {
      leaf handlers { type string;
        description "newline-separated element.handler paths"; }
    }
  }

  rpc writeVNFHandler {
    description "Write one handler of a running VNF (reconfigure).";
    input {
      leaf id { type string; mandatory true; }
      leaf handler { type string; mandatory true; }
      leaf value { type string; mandatory true; }
    }
  }
}
"""
