"""NETCONF transport over raw Ethernet frames (the in-band control
network).

Duck-type compatible with :class:`~repro.netconf.transport.
InMemoryTransport`: ``send`` / ``set_receiver`` / ``close`` / ``sim``.
Byte streams are chunked into frames of a locally-administered
EtherType on an emulated interface; links preserve ordering, so the
receive side simply concatenates — the RFC 6242 framers on top recover
message boundaries exactly as they do over TCP.
"""

from typing import Callable, Optional, Union

from repro.netem.interface import Interface
from repro.packet import EthAddr, Ethernet
from repro.packet.base import PacketError

ETHERTYPE_MGMT = 0x88B5  # IEEE 802 local experimental
DEFAULT_MTU = 1400


class EthTransport:
    """One endpoint of a management session riding an interface."""

    def __init__(self, intf: Interface, peer_mac: Union[str, EthAddr],
                 mtu: int = DEFAULT_MTU):
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        self.intf = intf
        self.sim = intf.node.sim
        self.peer_mac = EthAddr(peer_mac)
        self.mtu = mtu
        self.closed = False
        self.receiver: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.tx_bytes = 0
        self.rx_bytes = 0
        intf.set_receiver(self._receive_frame)

    def set_receiver(self, callback: Callable[[bytes], None]) -> None:
        self.receiver = callback

    def send(self, data: bytes) -> None:
        if self.closed:
            return
        self.tx_bytes += len(data)
        for start in range(0, len(data), self.mtu):
            frame = Ethernet(src=self.intf.mac, dst=self.peer_mac,
                             type=ETHERTYPE_MGMT,
                             payload=data[start:start + self.mtu])
        # single-chunk fast path falls through the loop naturally
            self.intf.send(frame.pack())

    def _receive_frame(self, _intf: Interface, wire: bytes) -> None:
        if self.closed:
            return
        try:
            frame = Ethernet.unpack(wire)
        except PacketError:
            return
        if frame.type != ETHERTYPE_MGMT:
            return
        if frame.dst != self.intf.mac:
            return  # hub traffic for another agent
        if frame.src != self.peer_mac:
            return  # not our session peer
        payload = frame.raw_payload()
        self.rx_bytes += len(payload)
        if self.receiver is not None:
            self.receiver(payload)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.on_close is not None:
            self.on_close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return "EthTransport(%s via %s, %s)" % (self.peer_mac,
                                                self.intf.name, state)
