"""NETCONF client (the orchestrator's manager side)."""

import itertools
import xml.etree.ElementTree as ET
from typing import Callable, Dict, List, Optional

from repro.netconf.errors import NetconfError, RpcError, SessionError
from repro.netconf.framing import ChunkedFramer, EomFramer
from repro.netconf import messages as nc
from repro.netconf.transport import InMemoryTransport
from repro.sim import Simulator
from repro.telemetry import current as current_telemetry


class PendingReply:
    """Future-like handle for an in-flight RPC.

    Fills in when the rpc-reply arrives; :meth:`result` pumps the
    simulator until then (usable from top-level driver code, not from
    inside sim callbacks).  ``on_done`` callbacks support fully
    event-driven callers.
    """

    def __init__(self, message_id: int):
        self.message_id = message_id
        self.sent_at: Optional[float] = None
        self.done = False
        self.reply: Optional[ET.Element] = None
        self.error: Optional[RpcError] = None
        self._callbacks: List[Callable[["PendingReply"], None]] = []

    def on_done(self, callback: Callable[["PendingReply"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _resolve(self, reply: ET.Element) -> None:
        self.reply = reply
        self.error = nc.parse_rpc_error(reply)
        self.done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def result(self, sim: Simulator, timeout: float = 10.0) -> ET.Element:
        """Run the simulation until the reply lands; raises RpcError on
        an error reply, NetconfError on timeout."""
        deadline = sim.now + timeout
        while not self.done:
            next_time = sim.peek()
            if next_time is None or next_time > deadline:
                raise NetconfError("rpc %d timed out" % self.message_id)
            sim.step()
        if self.error is not None:
            raise self.error
        return self.reply

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return "PendingReply(id=%d, %s)" % (self.message_id, state)


class NetconfClient:
    """Manager endpoint: hello, rpc issue/track, convenience operations."""

    def __init__(self, transport: InMemoryTransport,
                 capabilities: Optional[List[str]] = None):
        self.transport = transport
        self.sim = transport.sim
        self.capabilities = list(capabilities or []) or [nc.CAP_BASE_10,
                                                         nc.CAP_BASE_11]
        self.server_capabilities: Optional[List[str]] = None
        self.session_id: Optional[int] = None
        self._rx_framer = EomFramer()
        self._tx_framer = EomFramer()
        self._message_ids = itertools.count(101)
        self._pending: Dict[int, PendingReply] = {}
        self.closed = False
        self.rpcs_sent = 0
        metrics = current_telemetry().metrics
        self._m_rpcs = metrics.counter(
            "netconf.client.rpcs", "RPCs issued by the orchestrator")
        self._m_rpc_errors = metrics.counter(
            "netconf.client.rpc_errors", "rpc-replies carrying rpc-error")
        self._m_rpc_latency = metrics.histogram(
            "netconf.client.rpc_latency",
            "simulated request-to-reply seconds")
        transport.set_receiver(self._receive)
        self.transport.send(self._tx_framer.frame(
            nc.to_xml(nc.build_hello(self.capabilities))))

    @property
    def connected(self) -> bool:
        return self.session_id is not None and not self.closed

    # -- plumbing -----------------------------------------------------------

    def _receive(self, data: bytes) -> None:
        if self.closed:
            return
        for payload in self._rx_framer.feed(data):
            self._handle_message(payload)

    def _handle_message(self, payload: bytes) -> None:
        kind, root = nc.parse_message(payload)
        if kind == "hello":
            self.server_capabilities = nc.hello_capabilities(root)
            self.session_id = nc.hello_session_id(root)
            if (nc.CAP_BASE_11 in self.capabilities
                    and nc.CAP_BASE_11 in self.server_capabilities):
                self._rx_framer = ChunkedFramer()
                self._tx_framer = ChunkedFramer()
            return
        if kind != "rpc-reply":
            return
        message_id_text = root.get("message-id")
        if message_id_text is None:
            return  # unsolicited error without id: nothing to match
        pending = self._pending.pop(int(message_id_text), None)
        if pending is not None:
            sent_at = getattr(pending, "sent_at", None)
            if sent_at is not None:
                self._m_rpc_latency.observe(self.sim.now - sent_at)
            pending._resolve(root)
            if pending.error is not None:
                self._m_rpc_errors.inc()

    # -- rpc issue ------------------------------------------------------------

    def request(self, operation: ET.Element) -> PendingReply:
        """Send one RPC; returns the pending reply handle."""
        if self.closed:
            raise SessionError("session is closed")
        if self.session_id is None:
            raise SessionError("hello exchange not complete yet "
                               "(run the simulator first)")
        message_id = next(self._message_ids)
        pending = PendingReply(message_id)
        pending.sent_at = self.sim.now
        self._pending[message_id] = pending
        self.rpcs_sent += 1
        self._m_rpcs.inc()
        self.transport.send(self._tx_framer.frame(
            nc.to_xml(nc.build_rpc(message_id, operation))))
        return pending

    def call(self, operation: ET.Element,
             timeout: float = 10.0) -> ET.Element:
        """request() + result(): the blocking-style convenience."""
        return self.request(operation).result(self.sim, timeout)

    def wait_connected(self, timeout: float = 5.0) -> None:
        """Pump the simulator until the hello exchange completes."""
        deadline = self.sim.now + timeout
        while self.session_id is None:
            next_time = self.sim.peek()
            if next_time is None or next_time > deadline:
                raise SessionError("hello exchange timed out")
            self.sim.step()

    # -- convenience operations -----------------------------------------------

    def get(self, filter_element: Optional[ET.Element] = None
            ) -> PendingReply:
        return self.request(nc.build_get(filter_element))

    def get_config(self, source: str = "running",
                   filter_element: Optional[ET.Element] = None
                   ) -> PendingReply:
        return self.request(nc.build_get_config(source, filter_element))

    def edit_config(self, config: ET.Element, target: str = "running",
                    default_operation: str = "merge") -> PendingReply:
        return self.request(nc.build_edit_config(config, target,
                                                 default_operation))

    def rpc(self, name: str, namespace: str,
            params: Optional[Dict[str, str]] = None) -> PendingReply:
        """Invoke a custom RPC with simple leaf parameters."""
        operation = ET.Element(nc.qn(name, namespace))
        for key, value in (params or {}).items():
            ET.SubElement(operation, nc.qn(key, namespace)).text = str(value)
        return self.request(operation)

    def commit(self) -> PendingReply:
        """candidate -> running."""
        return self.request(ET.Element(nc.qn("commit")))

    def discard_changes(self) -> PendingReply:
        return self.request(ET.Element(nc.qn("discard-changes")))

    def lock(self, target: str = "running") -> PendingReply:
        operation = ET.Element(nc.qn("lock"))
        target_el = ET.SubElement(operation, nc.qn("target"))
        ET.SubElement(target_el, nc.qn(target))
        return self.request(operation)

    def unlock(self, target: str = "running") -> PendingReply:
        operation = ET.Element(nc.qn("unlock"))
        target_el = ET.SubElement(operation, nc.qn("target"))
        ET.SubElement(target_el, nc.qn(target))
        return self.request(operation)

    def close(self) -> PendingReply:
        pending = self.request(nc.build_close_session())
        pending.on_done(lambda _reply: self._mark_closed())
        return pending

    def _mark_closed(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return "NetconfClient(session=%s, %d rpcs, %s)" % (
            self.session_id, self.rpcs_sent,
            "closed" if self.closed else "open")
