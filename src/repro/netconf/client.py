"""NETCONF client (the orchestrator's manager side).

Resilience model (exercised by :mod:`repro.chaos`):

* every RPC can carry a per-request deadline — on expiry the pending
  handle fails exactly once, deregisters, and any late reply is
  counted (``netconf.client.late_replies``) but never resolves it,
* :meth:`rpc_retry` / :meth:`call_with_retry` wrap an operation in
  exponential-backoff retries (timeouts and transport failures retry;
  application ``rpc-error`` replies do not),
* :meth:`reconnect` abandons a dead session and re-runs the hello
  exchange over a fresh transport produced by an installed factory —
  the in-memory analog of re-dialing SSH after a manager crash.
"""

import itertools
import xml.etree.ElementTree as ET
from typing import Callable, Dict, List, Optional

from repro.netconf.errors import (NetconfError, RpcError, RpcTimeout,
                                  SessionError)
from repro.netconf.framing import ChunkedFramer, EomFramer
from repro.netconf import messages as nc
from repro.netconf.transport import InMemoryTransport
from repro.sim import Simulator
from repro.telemetry import current as current_telemetry


class PendingReply:
    """Future-like handle for an in-flight RPC.

    Fills in when the rpc-reply arrives; :meth:`result` pumps the
    simulator until then (usable from top-level driver code *and* from
    inside sim callbacks — the simulator supports nested stepping).
    ``on_done`` callbacks support fully event-driven callers.
    """

    def __init__(self, message_id: int):
        self.message_id = message_id
        self.sent_at: Optional[float] = None
        self.done = False
        self.reply: Optional[ET.Element] = None
        self.error: Optional[NetconfError] = None
        self._callbacks: List[Callable[["PendingReply"], None]] = []
        self._expiry = None  # scheduled expiry Event, if a timeout is set
        self._owner: Optional["NetconfClient"] = None  # for deregistration

    def on_done(self, callback: Callable[["PendingReply"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _settle(self) -> None:
        self.done = True
        if self._expiry is not None:
            self._expiry.cancel()
            self._expiry = None
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _resolve(self, reply: ET.Element) -> None:
        self.reply = reply
        self.error = nc.parse_rpc_error(reply)
        self._settle()

    def _fail(self, error: NetconfError) -> None:
        """Terminal failure without a reply (timeout, session loss)."""
        self.error = error
        self._settle()

    def result(self, sim: Simulator, timeout: float = 10.0) -> ET.Element:
        """Run the simulation until the reply lands; raises RpcError on
        an error reply, RpcTimeout when the deadline passes."""
        deadline = sim.now + timeout
        while not self.done:
            next_time = sim.peek()
            if next_time is None or next_time > deadline:
                if self._owner is not None:
                    # deregister too — a late reply must not find us
                    self._owner._expire(self.message_id)
                else:
                    self._fail(RpcTimeout("rpc %d timed out after %.3fs"
                                          % (self.message_id, timeout)))
                break
            sim.step()
        if self.error is not None:
            raise self.error
        return self.reply

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return "PendingReply(id=%d, %s)" % (self.message_id, state)


class NetconfClient:
    """Manager endpoint: hello, rpc issue/track, convenience operations.

    ``default_timeout`` (None = no per-RPC deadline) applies to every
    request that does not pass its own; expired RPCs raise
    :class:`RpcTimeout` once and count ``netconf.client.rpc_timeouts``.
    """

    def __init__(self, transport: InMemoryTransport,
                 capabilities: Optional[List[str]] = None,
                 default_timeout: Optional[float] = None):
        self.transport = transport
        self.sim = transport.sim
        self.capabilities = list(capabilities or []) or [nc.CAP_BASE_10,
                                                         nc.CAP_BASE_11]
        self.server_capabilities: Optional[List[str]] = None
        self.session_id: Optional[int] = None
        self.default_timeout = default_timeout
        self._rx_framer = EomFramer()
        self._tx_framer = EomFramer()
        self._message_ids = itertools.count(101)
        self._pending: Dict[int, PendingReply] = {}
        self._transport_factory: Optional[
            Callable[[], InMemoryTransport]] = None
        self.closed = False
        self.rpcs_sent = 0
        self.reconnects = 0
        metrics = current_telemetry().metrics
        self._m_rpcs = metrics.counter(
            "netconf.client.rpcs", "RPCs issued by the orchestrator")
        self._m_rpc_errors = metrics.counter(
            "netconf.client.rpc_errors", "rpc-replies carrying rpc-error")
        self._m_rpc_timeouts = metrics.counter(
            "netconf.client.rpc_timeouts",
            "RPCs that expired before their reply arrived")
        self._m_late_replies = metrics.counter(
            "netconf.client.late_replies",
            "replies that arrived after their RPC already timed out")
        self._m_retries = metrics.counter(
            "netconf.client.rpc_retries",
            "RPC attempts re-issued after a timeout/transport failure")
        self._m_reconnects = metrics.counter(
            "netconf.client.reconnects",
            "sessions re-established over a fresh transport")
        self._m_rpc_latency = metrics.histogram(
            "netconf.client.rpc_latency",
            "simulated request-to-reply seconds")
        self._profiler = current_telemetry().profiler
        transport.set_receiver(self._receive)
        self.transport.send(self._tx_framer.frame(
            nc.to_xml(nc.build_hello(self.capabilities))))

    @property
    def connected(self) -> bool:
        return self.session_id is not None and not self.closed

    # -- plumbing -----------------------------------------------------------

    def _receive(self, data: bytes) -> None:
        if self.closed:
            return
        for payload in self._rx_framer.feed(data):
            self._handle_message(payload)

    def _handle_message(self, payload: bytes) -> None:
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("netconf.rpc.decode"):
                kind, root = nc.parse_message(payload)
        else:
            kind, root = nc.parse_message(payload)
        if kind == "hello":
            self.server_capabilities = nc.hello_capabilities(root)
            self.session_id = nc.hello_session_id(root)
            if (nc.CAP_BASE_11 in self.capabilities
                    and nc.CAP_BASE_11 in self.server_capabilities):
                self._rx_framer = ChunkedFramer()
                self._tx_framer = ChunkedFramer()
            return
        if kind != "rpc-reply":
            return
        message_id_text = root.get("message-id")
        if message_id_text is None:
            return  # unsolicited error without id: nothing to match
        pending = self._pending.pop(int(message_id_text), None)
        if pending is None or pending.done:
            # the RPC already expired (or was never ours): the reply is
            # late — count it, never resolve the dead handle
            self._m_late_replies.inc()
            return
        sent_at = getattr(pending, "sent_at", None)
        if sent_at is not None:
            self._m_rpc_latency.observe(self.sim.now - sent_at)
        pending._resolve(root)
        if pending.error is not None:
            self._m_rpc_errors.inc()

    def _expire(self, message_id: int) -> None:
        """Deadline passed: deregister and fail the pending handle."""
        pending = self._pending.pop(message_id, None)
        if pending is None or pending.done:
            return
        self._m_rpc_timeouts.inc()
        current_telemetry().events.warn(
            "netconf.client", "rpc.timeout",
            "rpc %d expired unanswered" % message_id,
            message_id=message_id, session=self.session_id)
        pending._fail(RpcTimeout("rpc %d timed out" % message_id))

    # -- rpc issue ------------------------------------------------------------

    def request(self, operation: ET.Element,
                timeout: Optional[float] = None) -> PendingReply:
        """Send one RPC; returns the pending reply handle.

        ``timeout`` (or the client's ``default_timeout``) arms a
        deadline: on expiry the handle fails with :class:`RpcTimeout`
        and is deregistered, so a late reply cannot resolve it.
        """
        if self.closed:
            raise SessionError("session is closed")
        if self.session_id is None:
            raise SessionError("hello exchange not complete yet "
                               "(run the simulator first)")
        message_id = next(self._message_ids)
        pending = PendingReply(message_id)
        pending.sent_at = self.sim.now
        pending._owner = self
        self._pending[message_id] = pending
        deadline = timeout if timeout is not None else self.default_timeout
        if deadline is not None:
            pending._expiry = self.sim.schedule(deadline, self._expire,
                                                message_id)
        self.rpcs_sent += 1
        self._m_rpcs.inc()
        profiler = self._profiler
        if profiler.enabled:
            with profiler.profile("netconf.rpc.encode"):
                frame = self._tx_framer.frame(
                    nc.to_xml(nc.build_rpc(message_id, operation)))
        else:
            frame = self._tx_framer.frame(
                nc.to_xml(nc.build_rpc(message_id, operation)))
        self.transport.send(frame)
        return pending

    def call(self, operation: ET.Element,
             timeout: float = 10.0) -> ET.Element:
        """request() + result(): the blocking-style convenience."""
        pending = self.request(operation, timeout=timeout)
        try:
            return pending.result(self.sim, timeout)
        finally:
            # whatever ended the wait, never leave the handle registered
            self._pending.pop(pending.message_id, None)

    def call_with_retry(self, operation: ET.Element, timeout: float = 5.0,
                        retries: int = 3, backoff: float = 0.25,
                        backoff_factor: float = 2.0) -> ET.Element:
        """``call`` with exponential-backoff retries.

        Timeouts and transport/session failures retry (reconnecting
        first when the session died and a transport factory is
        installed); an application ``rpc-error`` reply is final and
        raises immediately.  The last failure propagates after
        ``retries`` re-attempts.
        """
        attempt = 0
        while True:
            try:
                if not self.connected and self._transport_factory:
                    self.reconnect()
                return self.call(operation, timeout=timeout)
            except RpcError:
                raise  # the server answered: retrying cannot help
            except NetconfError:
                attempt += 1
                if attempt > retries:
                    raise
                delay = backoff * (backoff_factor ** (attempt - 1))
                self._m_retries.inc()
                current_telemetry().events.warn(
                    "netconf.client", "rpc.retry",
                    "attempt %d/%d in %.3fs" % (attempt, retries, delay),
                    attempt=attempt, backoff=delay,
                    session=self.session_id)
                self._sleep(delay)

    def _sleep(self, delay: float) -> None:
        """Advance simulated time by ``delay`` (nested-pump safe)."""
        fired: List[bool] = []
        self.sim.schedule(delay, fired.append, True)
        while not fired:
            if not self.sim.step():
                break

    def wait_connected(self, timeout: float = 5.0) -> None:
        """Pump the simulator until the hello exchange completes."""
        deadline = self.sim.now + timeout
        while self.session_id is None:
            next_time = self.sim.peek()
            if next_time is None or next_time > deadline:
                raise SessionError("hello exchange timed out")
            self.sim.step()

    # -- session recovery ------------------------------------------------------

    def set_transport_factory(
            self, factory: Callable[[], InMemoryTransport]) -> None:
        """Install the re-dial hook: ``factory()`` must return a fresh
        transport already wired to a listening server endpoint."""
        self._transport_factory = factory

    def reconnect(self, timeout: float = 5.0) -> None:
        """Abandon the current session and re-run the hello exchange
        over a fresh transport.  Every in-flight RPC fails with
        SessionError (their replies, if any, would arrive on the dead
        pipe)."""
        if self._transport_factory is None:
            raise SessionError("no transport factory installed; "
                               "cannot reconnect")
        for pending in list(self._pending.values()):
            pending._fail(SessionError("session re-established; rpc %d "
                                       "abandoned" % pending.message_id))
        self._pending.clear()
        old = self.transport
        old.receiver = None
        if not old.closed:
            old.close()
        self.transport = self._transport_factory()
        self.sim = self.transport.sim
        self.session_id = None
        self.server_capabilities = None
        self.closed = False
        self._rx_framer = EomFramer()
        self._tx_framer = EomFramer()
        self.reconnects += 1
        self._m_reconnects.inc()
        current_telemetry().events.warn(
            "netconf.client", "session.reconnect",
            "re-dialing over a fresh transport",
            reconnects=self.reconnects)
        self.transport.set_receiver(self._receive)
        self.transport.send(self._tx_framer.frame(
            nc.to_xml(nc.build_hello(self.capabilities))))
        self.wait_connected(timeout)

    # -- convenience operations -----------------------------------------------

    def get(self, filter_element: Optional[ET.Element] = None
            ) -> PendingReply:
        return self.request(nc.build_get(filter_element))

    def get_config(self, source: str = "running",
                   filter_element: Optional[ET.Element] = None
                   ) -> PendingReply:
        return self.request(nc.build_get_config(source, filter_element))

    def edit_config(self, config: ET.Element, target: str = "running",
                    default_operation: str = "merge") -> PendingReply:
        return self.request(nc.build_edit_config(config, target,
                                                 default_operation))

    def _build_custom(self, name: str, namespace: str,
                      params: Optional[Dict[str, str]]) -> ET.Element:
        operation = ET.Element(nc.qn(name, namespace))
        for key, value in (params or {}).items():
            ET.SubElement(operation, nc.qn(key, namespace)).text = str(value)
        return operation

    def rpc(self, name: str, namespace: str,
            params: Optional[Dict[str, str]] = None) -> PendingReply:
        """Invoke a custom RPC with simple leaf parameters."""
        return self.request(self._build_custom(name, namespace, params))

    def rpc_retry(self, name: str, namespace: str,
                  params: Optional[Dict[str, str]] = None,
                  timeout: float = 5.0, retries: int = 3,
                  backoff: float = 0.25) -> ET.Element:
        """Custom RPC via :meth:`call_with_retry` (blocking style)."""
        return self.call_with_retry(
            self._build_custom(name, namespace, params),
            timeout=timeout, retries=retries, backoff=backoff)

    def commit(self) -> PendingReply:
        """candidate -> running."""
        return self.request(ET.Element(nc.qn("commit")))

    def discard_changes(self) -> PendingReply:
        return self.request(ET.Element(nc.qn("discard-changes")))

    def lock(self, target: str = "running") -> PendingReply:
        operation = ET.Element(nc.qn("lock"))
        target_el = ET.SubElement(operation, nc.qn("target"))
        ET.SubElement(target_el, nc.qn(target))
        return self.request(operation)

    def unlock(self, target: str = "running") -> PendingReply:
        operation = ET.Element(nc.qn("unlock"))
        target_el = ET.SubElement(operation, nc.qn("target"))
        ET.SubElement(target_el, nc.qn(target))
        return self.request(operation)

    def close(self) -> PendingReply:
        pending = self.request(nc.build_close_session())
        pending.on_done(lambda _reply: self._mark_closed())
        return pending

    def _mark_closed(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return "NetconfClient(session=%s, %d rpcs, %s)" % (
            self.session_id, self.rpcs_sent,
            "closed" if self.closed else "open")
