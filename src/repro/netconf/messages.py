"""NETCONF XML message construction and parsing (RFC 6241 envelopes)."""

import xml.etree.ElementTree as ET
from typing import List, Optional, Tuple, Union

from repro.netconf.errors import NetconfError, RpcError

BASE_NS = "urn:ietf:params:xml:ns:netconf:base:1.0"
CAP_BASE_10 = "urn:ietf:params:netconf:base:1.0"
CAP_BASE_11 = "urn:ietf:params:netconf:base:1.1"
CAP_CANDIDATE = "urn:ietf:params:netconf:capability:candidate:1.0"


def qn(tag: str, ns: str = BASE_NS) -> str:
    """Qualified tag name in Clark notation."""
    return "{%s}%s" % (ns, tag)


def local_name(tag: str) -> str:
    """Strip the namespace from a Clark-notation tag."""
    return tag.rsplit("}", 1)[-1]


def namespace_of(tag: str) -> Optional[str]:
    if tag.startswith("{"):
        return tag[1:].split("}", 1)[0]
    return None


def to_xml(element: ET.Element) -> bytes:
    return ET.tostring(element, encoding="utf-8",
                       xml_declaration=True)


def from_xml(data: Union[bytes, str]) -> ET.Element:
    try:
        return ET.fromstring(data)
    except ET.ParseError as exc:
        raise NetconfError("malformed XML: %s" % exc)


# -- message builders ---------------------------------------------------


def build_hello(capabilities: List[str],
                session_id: Optional[int] = None) -> ET.Element:
    hello = ET.Element(qn("hello"))
    caps = ET.SubElement(hello, qn("capabilities"))
    for capability in capabilities:
        ET.SubElement(caps, qn("capability")).text = capability
    if session_id is not None:
        ET.SubElement(hello, qn("session-id")).text = str(session_id)
    return hello


def build_rpc(message_id: int, operation: ET.Element) -> ET.Element:
    rpc = ET.Element(qn("rpc"), {"message-id": str(message_id)})
    rpc.append(operation)
    return rpc


def build_rpc_reply(message_id: int,
                    body: Optional[List[ET.Element]] = None) -> ET.Element:
    reply = ET.Element(qn("rpc-reply"), {"message-id": str(message_id)})
    if body:
        for element in body:
            reply.append(element)
    else:
        ET.SubElement(reply, qn("ok"))
    return reply


def build_rpc_error(message_id: Optional[int],
                    error: RpcError) -> ET.Element:
    attrs = {"message-id": str(message_id)} if message_id is not None else {}
    reply = ET.Element(qn("rpc-reply"), attrs)
    err = ET.SubElement(reply, qn("rpc-error"))
    ET.SubElement(err, qn("error-type")).text = error.error_type
    ET.SubElement(err, qn("error-tag")).text = error.tag
    ET.SubElement(err, qn("error-severity")).text = error.severity
    if error.message:
        ET.SubElement(err, qn("error-message")).text = error.message
    if error.info:
        ET.SubElement(err, qn("error-info")).text = error.info
    return reply


def parse_rpc_error(reply: ET.Element) -> Optional[RpcError]:
    """Extract an RpcError from an rpc-reply, or None when it is ok."""
    err = reply.find(qn("rpc-error"))
    if err is None:
        return None

    def text(tag: str, default: str = "") -> str:
        node = err.find(qn(tag))
        return node.text or default if node is not None else default

    return RpcError(error_type=text("error-type", "application"),
                    tag=text("error-tag", "operation-failed"),
                    severity=text("error-severity", "error"),
                    message=text("error-message"),
                    info=text("error-info") or None)


# -- operation payload builders ------------------------------------------


def build_get(filter_element: Optional[ET.Element] = None) -> ET.Element:
    get = ET.Element(qn("get"))
    if filter_element is not None:
        filt = ET.SubElement(get, qn("filter"), {"type": "subtree"})
        filt.append(filter_element)
    return get


def build_get_config(source: str = "running",
                     filter_element: Optional[ET.Element] = None
                     ) -> ET.Element:
    get_config = ET.Element(qn("get-config"))
    source_el = ET.SubElement(get_config, qn("source"))
    ET.SubElement(source_el, qn(source))
    if filter_element is not None:
        filt = ET.SubElement(get_config, qn("filter"), {"type": "subtree"})
        filt.append(filter_element)
    return get_config


def build_edit_config(config: ET.Element, target: str = "running",
                      default_operation: str = "merge") -> ET.Element:
    edit = ET.Element(qn("edit-config"))
    target_el = ET.SubElement(edit, qn("target"))
    ET.SubElement(target_el, qn(target))
    ET.SubElement(edit, qn("default-operation")).text = default_operation
    config_el = ET.SubElement(edit, qn("config"))
    config_el.append(config)
    return edit


def build_close_session() -> ET.Element:
    return ET.Element(qn("close-session"))


# -- message classification ------------------------------------------------


def parse_message(data: Union[bytes, str]) -> Tuple[str, ET.Element]:
    """Classify an incoming frame: ("hello"|"rpc"|"rpc-reply", root)."""
    root = from_xml(data)
    kind = local_name(root.tag)
    if kind not in ("hello", "rpc", "rpc-reply"):
        raise NetconfError("unexpected NETCONF message <%s>" % kind)
    return kind, root


def hello_capabilities(hello: ET.Element) -> List[str]:
    return [cap.text or ""
            for cap in hello.findall("%s/%s" % (qn("capabilities"),
                                                qn("capability")))]


def hello_session_id(hello: ET.Element) -> Optional[int]:
    node = hello.find(qn("session-id"))
    return int(node.text) if node is not None and node.text else None


def rpc_message_id(rpc: ET.Element) -> int:
    value = rpc.get("message-id")
    if value is None:
        raise NetconfError("rpc without message-id")
    return int(value)


def rpc_operation(rpc: ET.Element) -> ET.Element:
    children = list(rpc)
    if len(children) != 1:
        raise NetconfError("rpc must contain exactly one operation, got %d"
                           % len(children))
    return children[0]
