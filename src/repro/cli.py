"""The ``escape`` command-line entry point.

::

    escape scenario run  <scenario.(yaml|json)> [--seed N]... \\
                         [--results-dir DIR] [--no-gate] [--quiet]
    escape scenario list [DIR]...
    escape scenario report <bundle.json|results-dir>... \\
                           [--format table|json|csv]
    escape perf report <source> [--json] [--limit N]
    escape perf diff <baseline> <current> [--threshold F] \\
                     [--json] [--no-gate]
    escape flowtrace <bundle.json|flowtrace.jsonl|results-dir> \\
                     [--chain NAME] [--json]

``scenario run`` executes the campaign (every ``--seed``, or the
scenario's own ``seeds:`` list), writes one result bundle per run,
prints the cross-seed comparison table and — unless ``--no-gate`` —
exits non-zero when any chain deploy failed, any chain stayed
unrecovered, or the workload delivered nothing (the CI scenario-smoke
criterion).

``perf report`` renders one perf-attribution report (dispatch
accounting + profiler regions + throughput); ``perf diff`` compares
two and exits non-zero when a guarded region or throughput floor
regressed beyond the threshold.  Both accept an attribution report, a
``BENCH_profile.json`` snapshot, a result ``bundle.json``, or a
results directory holding exactly one bundle.

``flowtrace`` renders the per-chain hop-latency breakdown (p50/p99
per hop, attributed share of one-way delay, conformance counts) from
a flowtrace-enabled run — a ``bundle.json``, a raw ``flowtrace.jsonl``
postcard log, or a results directory containing either.

Also reachable as ``python -m repro ...`` when the package is on
``PYTHONPATH`` but not installed.
"""

import argparse
import os
import sys
from typing import List, Optional


def _add_scenario_parser(subparsers) -> None:
    scenario = subparsers.add_parser(
        "scenario", help="declarative experiment campaigns")
    actions = scenario.add_subparsers(dest="action")

    run = actions.add_parser("run", help="execute a scenario campaign")
    run.add_argument("spec", help="scenario file (.yaml/.yml/.json)")
    run.add_argument("--seed", type=int, action="append", default=None,
                     metavar="N", dest="seeds",
                     help="run this seed (repeatable; default: the "
                          "scenario's seeds list)")
    run.add_argument("--results-dir", default="results", metavar="DIR",
                     help="bundle output root (default: results)")
    run.add_argument("--no-gate", action="store_true",
                     help="exit 0 even when a run failed its gate")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-run progress lines")

    listing = actions.add_parser(
        "list", help="list scenario files, topologies and templates")
    listing.add_argument("paths", nargs="*", default=None,
                         help="directories to scan "
                              "(default: examples/scenarios)")

    report = actions.add_parser(
        "report", help="aggregate result bundles across seeds")
    report.add_argument("paths", nargs="+",
                        help="bundle files or results directories")
    report.add_argument("--format", choices=("table", "json", "csv"),
                        default=None, dest="format",
                        help="output format (default: table)")
    report.add_argument("--json", action="store_true",
                        help="shorthand for --format json")


def _add_perf_parser(subparsers) -> None:
    perf = subparsers.add_parser(
        "perf", help="perf attribution reports and cross-run diffing")
    actions = perf.add_subparsers(dest="action")

    report = actions.add_parser(
        "report", help="render one attribution report")
    report.add_argument("source",
                        help="attribution report, BENCH_profile.json, "
                             "bundle.json, or a results dir with one "
                             "bundle")
    report.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    report.add_argument("--limit", type=int, default=12, metavar="N",
                        help="rows per table (0 = all; default 12)")

    diff = actions.add_parser(
        "diff", help="calibration-normalized delta of two perf sources")
    diff.add_argument("baseline", help="baseline perf source")
    diff.add_argument("current", help="current perf source")
    diff.add_argument("--threshold", type=float, default=0.15,
                      metavar="F",
                      help="guarded regression threshold "
                           "(default 0.15 = 15%%)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff as JSON")
    diff.add_argument("--no-gate", action="store_true",
                      help="exit 0 even when the gate found "
                           "regressions")


def _add_flowtrace_parser(subparsers) -> None:
    flowtrace = subparsers.add_parser(
        "flowtrace", help="per-chain hop-latency breakdown from "
                          "sampled path traces")
    flowtrace.add_argument("source",
                           help="bundle.json, flowtrace.jsonl, or a "
                                "results dir containing either")
    flowtrace.add_argument("--chain", default=None, metavar="NAME",
                           help="show a single chain")
    flowtrace.add_argument("--json", action="store_true",
                           help="emit the report as JSON")


def _cmd_flowtrace(args) -> int:
    import json
    from repro.telemetry.flowtrace import (FlowTraceError,
                                           load_flowtrace_report,
                                           render_flowtrace_report)
    try:
        report = load_flowtrace_report(args.source)
    except (FlowTraceError, OSError, ValueError) as exc:
        print("*** %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_flowtrace_report(report, chain=args.chain))
    return 0


def _cmd_scenario_run(args) -> int:
    from repro.scenario import CampaignRunner, render_report
    printer = (lambda _line: None) if args.quiet else print
    runner = CampaignRunner(args.spec, results_dir=args.results_dir,
                            printer=printer)
    runner.run(seeds=args.seeds)
    print(render_report(runner.bundles))
    for bundle in runner.bundles:
        if "events" in bundle:
            print("bundle: %s" % os.path.join(
                runner.run_dir(bundle["seed"]), "bundle.json"))
    problems = runner.gate()
    if problems:
        for problem in problems:
            print("GATE: %s" % problem, file=sys.stderr)
        if not args.no_gate:
            return 1
    return 0


def _cmd_scenario_list(args) -> int:
    from repro.scenario import CHAIN_TEMPLATES, TOPOLOGY_KINDS
    from repro.scenario.spec import SpecError, load_scenario
    paths = args.paths or ["examples/scenarios"]
    found = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith((".yaml", ".yml", ".json")):
                    found.append(os.path.join(path, name))
        elif os.path.isfile(path):
            found.append(path)
    if found:
        print("scenarios:")
        for name in found:
            try:
                scenario = load_scenario(name)
                print("  %-40s %s topology, %.3gs, seeds %r"
                      % (name, scenario.topology.get("kind"),
                         scenario.duration, scenario.seeds))
            except (SpecError, OSError) as exc:
                print("  %-40s UNREADABLE: %s" % (name, exc))
    else:
        print("no scenario files under: %s" % ", ".join(paths))
    print("topology kinds:  %s" % ", ".join(sorted(TOPOLOGY_KINDS)))
    print("chain templates: %s" % ", ".join(sorted(CHAIN_TEMPLATES)))
    return 0


def _cmd_scenario_report(args) -> int:
    import json
    from repro.scenario import load_bundles, render_csv, render_report
    from repro.scenario.analyzer import AnalyzerError, report_dict
    fmt = args.format or ("json" if args.json else "table")
    try:
        bundles = load_bundles(args.paths)
    except AnalyzerError as exc:
        print("*** %s" % exc, file=sys.stderr)
        return 2
    if fmt == "json":
        print(json.dumps(report_dict(bundles), indent=2, sort_keys=True))
    elif fmt == "csv":
        print(render_csv(bundles))
    else:
        print(render_report(bundles))
    return 0


def _cmd_perf_report(args) -> int:
    import json
    from repro.telemetry.introspect import (IntrospectError, load_report,
                                            render_report)
    try:
        report = load_report(args.source)
    except IntrospectError as exc:
        print("*** %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report, limit=args.limit))
    return 0


def _cmd_perf_diff(args) -> int:
    import json
    from repro.telemetry.introspect import (IntrospectError, diff_reports,
                                            load_report, render_diff)
    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
        diff = diff_reports(baseline, current, threshold=args.threshold)
    except IntrospectError as exc:
        print("*** %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(render_diff(diff))
    if diff["findings"] and not args.no_gate:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="escape",
        description="ESCAPE service-chain prototyping environment")
    subparsers = parser.add_subparsers(dest="command")
    _add_scenario_parser(subparsers)
    _add_perf_parser(subparsers)
    _add_flowtrace_parser(subparsers)
    args = parser.parse_args(argv)
    if args.command == "scenario":
        if args.action == "run":
            return _cmd_scenario_run(args)
        if args.action == "list":
            return _cmd_scenario_list(args)
        if args.action == "report":
            return _cmd_scenario_report(args)
        parser.parse_args(["scenario", "--help"])
        return 2
    if args.command == "perf":
        if args.action == "report":
            return _cmd_perf_report(args)
        if args.action == "diff":
            return _cmd_perf_diff(args)
        parser.parse_args(["perf", "--help"])
        return 2
    if args.command == "flowtrace":
        return _cmd_flowtrace(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
