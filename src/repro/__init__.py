"""ESCAPE reproduction — Extensible Service ChAin Prototyping Environment.

A pure-Python reproduction of Csoma et al., "ESCAPE: Extensible Service
ChAin Prototyping Environment using Mininet, Click, NETCONF and POX"
(SIGCOMM 2014 demo), with every substrate re-implemented on a
deterministic discrete-event simulator:

=================  ==========================================
paper component    this package
=================  ==========================================
Mininet            :mod:`repro.netem`
Click + Clicky     :mod:`repro.click` (+ :mod:`repro.core.monitor`)
Open vSwitch       :mod:`repro.openflow`
POX                :mod:`repro.pox`
OpenYuma/NETCONF   :mod:`repro.netconf`
ESCAPE itself      :mod:`repro.core`
=================  ==========================================

Entry point: :class:`repro.core.ESCAPE`.
"""

__version__ = "1.0.0"

from repro.core.escape import ESCAPE

__all__ = ["ESCAPE", "__version__"]
