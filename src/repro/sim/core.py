"""Heap-driven discrete-event simulator with generator processes."""

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for illegal simulator operations (e.g. scheduling in
    the past)."""


class Event:
    """A callback scheduled at a simulated time.

    Events are created through :meth:`Simulator.schedule` and may be
    cancelled with :meth:`Simulator.cancel` (or :meth:`cancel`) any time
    before they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop skips it when it pops."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%.9f, %s, %s)" % (self.time, state,
                                          getattr(self.callback, "__name__",
                                                  self.callback))


class Signal:
    """One-shot wakeup primitive.

    A :class:`Process` can ``yield`` a signal to suspend until someone
    calls :meth:`fire`.  The value passed to ``fire`` becomes the result
    of the ``yield`` expression inside the process.
    """

    __slots__ = ("sim", "_waiters", "fired", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiters: list = []
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        """Wake every process waiting on this signal (idempotent)."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.schedule(0.0, proc._resume, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self.fired:
            self.sim.schedule(0.0, proc._resume, self.value)
        else:
            self._waiters.append(proc)


class Process:
    """A generator-based coroutine running in simulated time.

    The generator may yield:

    * a number — sleep that many simulated seconds,
    * a :class:`Signal` — suspend until it fires,
    * another :class:`Process` — suspend until that process finishes,
    * ``None`` — yield the floor (resume on the next event tick).

    When the generator returns, :attr:`done` becomes ``True`` and the
    completion signal fires with the generator's return value.
    """

    def __init__(self, sim: "Simulator",
                 gen: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.completion = Signal(sim)
        self._pending_event: Optional[Event] = None

    def start(self) -> "Process":
        """Schedule the first step of the generator at the current time."""
        self.sim.schedule(0.0, self._resume, None)
        return self

    def interrupt(self) -> None:
        """Stop the process; its generator is closed, completion fires."""
        if self.done:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self.gen.close()
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.completion.fire(result)

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._pending_event = None
        try:
            target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if target is None:
            self._pending_event = self.sim.schedule(0.0, self._resume, None)
        elif isinstance(target, (int, float)):
            self._pending_event = self.sim.schedule(
                float(target), self._resume, None)
        elif isinstance(target, Signal):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target.completion._add_waiter(self)
        else:
            raise SimulationError(
                "process %r yielded unsupported value %r"
                % (self.name, target))

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return "Process(%s, %s)" % (self.name, state)


class Simulator:
    """Deterministic discrete-event loop with a floating-point clock."""

    def __init__(self):
        self._heap: list = []
        self._seq = itertools.count()
        self.now = 0.0
        self._running = False
        self._processed = 0
        # optional repro.telemetry Profiler (duck-typed to avoid a
        # sim->telemetry dependency); when set and enabled, every event
        # callback runs inside a "sim.event.dispatch" region — the root
        # of the framework's flamegraph
        self.profiler = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule %.9fs in the past" % delay)
        event = Event(self.now + delay, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event.cancel()

    def process(self, gen: Generator[Any, Any, Any],
                name: str = "") -> Process:
        """Wrap a generator into a :class:`Process` and start it."""
        return Process(self, gen, name).start()

    def signal(self) -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self)

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Runs until the heap empties, the clock would pass ``until``, or
        ``max_events`` callbacks have executed.  Returns the number of
        callbacks executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    # nested step() pumping (e.g. a recovery action
                    # blocking on an RPC reply) may already have moved
                    # the clock past the horizon; never rewind it
                    self.now = max(self.now, until)
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                profiler = self.profiler
                if profiler is not None and profiler.enabled:
                    with profiler.profile("sim.event.dispatch"):
                        event.callback(*event.args)
                else:
                    event.callback(*event.args)
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
            self._processed += executed
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event; return False when idle.

        Unlike :meth:`run`, ``step`` is safe to call from *inside* a
        running simulation: blocking-style code (``PendingReply.
        result``, recovery actions reacting to fault events) pumps the
        shared heap one event at a time until its condition holds.
        Events pop in time order, so nested pumping never reorders or
        rewinds the clock — it only advances it early.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = event.time
        profiler = self.profiler
        if profiler is not None and profiler.enabled:
            with profiler.profile("sim.event.dispatch"):
                event.callback(*event.args)
        else:
            event.callback(*event.args)
        self._processed += 1
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        """Total callbacks executed over the simulator's lifetime."""
        return self._processed

    def run_all(self, batches: Iterable[float] = ()) -> int:
        """Convenience: run to exhaustion (optionally in until= batches)."""
        total = 0
        for until in batches:
            total += self.run(until=until)
        total += self.run()
        return total

    def __repr__(self) -> str:
        return "Simulator(now=%.9f, pending=%d)" % (self.now, self.pending)
