"""Heap-driven discrete-event simulator with generator processes."""

import functools
import heapq
import time
from collections import deque
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for illegal simulator operations (e.g. scheduling in
    the past)."""


class Event:
    """A callback scheduled at a simulated time.

    Events are created through :meth:`Simulator.schedule` and may be
    cancelled with :meth:`Simulator.cancel` (or :meth:`cancel`) any time
    before they fire, or moved with :meth:`reschedule` /
    :meth:`reschedule_at`.

    The heap stores ``(time, seq, event)`` tuples, so ordering is
    decided by C-level tuple comparison — the event object itself never
    participates in heap sift comparisons.  ``time`` on the event is the
    *target* fire time; ``_key_time`` is the time of the heap entry that
    currently carries the event.  Rescheduling to a later time only
    moves ``time`` (the stale entry re-keys itself lazily when it pops);
    rescheduling earlier pushes a fresh entry under a fresh ``seq`` and
    the old entry is skipped as stale when it surfaces.
    """

    __slots__ = ("sim", "time", "seq", "callback", "args",
                 "cancelled", "fired", "_key_time")

    def __init__(self, sim: "Simulator", time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.sim = sim
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._key_time = time

    def cancel(self) -> None:
        """Mark the event so the loop skips (and counts) it when it
        pops.  Idempotent; a no-op once the event has fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self.sim
        sim._live -= 1
        sim._note_dead()

    def reschedule(self, delay: float) -> "Event":
        """Move a pending event to ``now + delay`` without cancel/
        re-schedule churn (see :meth:`reschedule_at`)."""
        return self.reschedule_at(self.sim.now + delay)

    def reschedule_at(self, when: float) -> "Event":
        """Move a pending event to absolute time ``when``.

        Moving *later* is free: only the target time changes, and the
        existing heap entry lazily re-keys itself when it pops.  Moving
        *earlier* pushes one fresh heap entry (the old one is skipped as
        stale when it surfaces).  Raises if the event already fired or
        was cancelled — a fired event cannot be revived (arm a fresh
        one; :class:`Wakeup` does exactly that).
        """
        if self.fired:
            raise SimulationError("cannot reschedule fired %r" % self)
        if self.cancelled:
            raise SimulationError("cannot reschedule cancelled %r" % self)
        sim = self.sim
        if when < sim.now:
            raise SimulationError(
                "cannot reschedule to %.9f, %.9fs in the past"
                % (when, sim.now - when))
        if when == self.time:
            return self
        if when >= self._key_time:
            # deferred: the queued entry pops at _key_time and re-keys
            # itself to the new target — no heap operation now
            self.time = when
            return self
        # earlier than the queued entry: re-key under a fresh seq; the
        # old entry goes stale and is skipped when it pops
        self.time = when
        self._key_time = when
        self.seq = sim._seq
        sim._seq += 1
        heapq.heappush(sim._heap, (when, self.seq, self))
        sim._note_dead()
        return self

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.fired:
            state = "fired"
        else:
            state = "pending"
        return "Event(t=%.9f, seq=%d, %s, %s)" % (
            self.time, self.seq, state, classify_callback(self.callback))


class Wakeup:
    """A re-armable timer for recurring consumers.

    One-shot :class:`Signal` does not fit a consumer that sleeps and
    wakes thousands of times (a pull driver parked on an empty queue):
    every fire would need a fresh signal plus re-subscription.  A
    ``Wakeup`` wraps one callback and keeps re-arming cheap:

    * :meth:`arm` / :meth:`arm_at` — schedule the callback; if already
      armed, the pending event is *rescheduled* (no cancel churn; see
      :meth:`Event.reschedule_at`).
    * :meth:`arm_before` — only pull an armed deadline earlier, never
      push it later (the "wake me no later than" operation a notifier
      listener wants).
    * :meth:`disarm` — cancel the pending shot, keep the wakeup.

    The scheduled callback is the consumer's own bound method, so
    dispatch accounting attributes the work to the consumer, not to
    this wrapper.
    """

    __slots__ = ("sim", "callback", "args", "event")

    def __init__(self, sim: "Simulator", callback: Callable[..., Any],
                 *args: Any):
        self.sim = sim
        self.callback = callback
        self.args = args
        self.event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        event = self.event
        return (event is not None and not event.fired
                and not event.cancelled)

    def arm(self, delay: float) -> Event:
        """Fire ``delay`` seconds from now (move the shot if armed)."""
        return self.arm_at(self.sim.now + delay)

    def arm_at(self, when: float) -> Event:
        """Fire at absolute time ``when`` (move the shot if armed)."""
        sim = self.sim
        if when < sim.now:
            when = sim.now
        event = self.event
        if event is not None and not event.fired and not event.cancelled:
            return event.reschedule_at(when)
        event = sim.schedule_at(when, self.callback, *self.args)
        self.event = event
        return event

    def arm_before(self, when: float) -> Event:
        """Ensure the wakeup fires no later than ``when`` — arms if
        idle, pulls an armed shot earlier, never pushes it later."""
        event = self.event
        if (event is not None and not event.fired
                and not event.cancelled and event.time <= when):
            return event
        return self.arm_at(when)

    def disarm(self) -> None:
        event = self.event
        if event is not None:
            event.cancel()
            self.event = None

    def __repr__(self) -> str:
        state = "armed@%.9f" % self.event.time if self.armed else "idle"
        return "Wakeup(%s, %s)" % (classify_callback(self.callback), state)


def classify_callback(callback: Callable[..., Any]) -> str:
    """The *kind* of an event: ``module.Qualname`` of the callback's
    owner, with the package prefix dropped — a link delivery event
    classifies as ``netem.link.Link._deliver``, a Click timer as
    ``click.element.Element._on_timer``, and so on.  Partials are
    unwrapped to the function they carry."""
    while isinstance(callback, functools.partial):
        callback = callback.func
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", "") or ""
    name = (getattr(func, "__qualname__", None)
            or getattr(func, "__name__", None)
            or type(callback).__name__)
    if module.startswith("repro."):
        module = module[len("repro."):]
    elif module in ("builtins", "__main__"):
        module = ""
    return "%s.%s" % (module, name) if module else name


class KindStat:
    """Dispatch totals for one event kind (callback owner)."""

    __slots__ = ("kind", "count", "self_seconds")

    def __init__(self, kind: str):
        self.kind = kind
        self.count = 0
        self.self_seconds = 0.0

    @property
    def per_call(self) -> float:
        """Mean self seconds per dispatch of this kind."""
        return self.self_seconds / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "self_s": self.self_seconds,
                "per_call_s": self.per_call}

    def __repr__(self) -> str:
        return "KindStat(%s, count=%d, self=%.6fs)" % (
            self.kind, self.count, self.self_seconds)


class DispatchAccounting:
    """Event-loop introspection: who the dispatcher works for.

    The profiler answers *how much* time ``sim.event.dispatch`` burns;
    this layer answers *on what*.  When enabled, every dispatched event
    is classified by its callback owner (see :func:`classify_callback`)
    and charged wall-clock self-time — nested dispatches (``step``
    pumping inside a callback) are subtracted from the outer event, so
    kind self-times sum to the loop's inclusive dispatch time without
    double counting.  Alongside the per-kind table it tracks:

    * *coalescability* — events that fire at exactly the timestamp of
      the event dispatched before them.  This is the packet-train
      headroom number: a batch dispatcher could hand all such events to
      their callbacks without re-entering the heap.
    * *scheduling lag* — how late an event fired relative to its
      scheduled time.  Zero today (pops are time-ordered and the clock
      only advances); the histogram is the tripwire for a batching
      dispatcher that would run events at a clock already past their
      timestamp.
    * *cancelled churn* — cancelled events the loop popped and threw
      away, plus dead entries swept by heap compaction (counted even
      while accounting is disabled: the discards happen regardless and
      the counter costs nothing on the live path).
    * *wakeups vs polls* — pull-driver activations split by cause:
      notifier-driven wakeups and exact rate-credit shots versus blind
      interval polls (counted always-on by the Click drivers; the
      event-driven pull path should drive polls to ~zero).
    * *peak heap depth* — the deepest backlog observed while enabled.

    Off by default.  The disabled dispatch path pays a single attribute
    check, the same contract (and the same <5% benchmark guard) as the
    profiler.
    """

    LAG_WINDOW = 2048  # positive lags kept for percentile queries

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self.enabled = False
        self.kinds: Dict[str, KindStat] = {}
        self._kind_cache: Dict[Any, str] = {}
        self._stack: List[list] = []
        self.dispatched = 0
        self.self_seconds = 0.0
        self.coalescable = 0
        self._last_time: Optional[float] = None
        self.cancelled_popped = 0
        self.wakeups = 0
        self.polls = 0
        self.late = 0
        self.lag_sum = 0.0
        self.lag_max = 0.0
        self._lags: deque = deque(maxlen=self.LAG_WINDOW)
        self.max_heap_depth = 0

    # -- control -----------------------------------------------------------

    def enable(self) -> "DispatchAccounting":
        self.enabled = True
        return self

    def disable(self) -> "DispatchAccounting":
        self.enabled = False
        self._stack = []
        return self

    def reset(self) -> None:
        """Drop every recorded number (keeps the enabled state and the
        kind cache — classifications do not go stale)."""
        self._stack = []
        self.kinds = {}
        self.dispatched = 0
        self.self_seconds = 0.0
        self.coalescable = 0
        self._last_time = None
        self.cancelled_popped = 0
        self.wakeups = 0
        self.polls = 0
        self.late = 0
        self.lag_sum = 0.0
        self.lag_max = 0.0
        self._lags.clear()
        self.max_heap_depth = 0

    # -- recording (called by the Simulator loop) --------------------------

    def begin(self, event: Event, now: float,
              heap_depth: int = 0) -> list:
        """Pre-dispatch bookkeeping; returns the frame for
        :meth:`finish`.  ``now`` is the clock *before* it advances to
        the event's timestamp; ``heap_depth`` is the backlog left
        behind the popped event (sampled here so the disabled
        ``schedule`` path stays untouched)."""
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth
        time_stamp = event.time
        if time_stamp == self._last_time:
            self.coalescable += 1
        self._last_time = time_stamp
        lag = now - time_stamp
        if lag > 0.0:
            self.late += 1
            self.lag_sum += lag
            if lag > self.lag_max:
                self.lag_max = lag
            self._lags.append(lag)
        callback = event.callback
        func = getattr(callback, "__func__", callback)
        try:
            kind = self._kind_cache.get(func)
            if kind is None:
                kind = classify_callback(callback)
                self._kind_cache[func] = kind
        except TypeError:  # unhashable callable: classify uncached
            kind = classify_callback(callback)
        frame = [kind, self._clock(), 0.0]
        self._stack.append(frame)
        return frame

    def finish(self, frame: list, end: Optional[float] = None) -> None:
        if end is None:
            end = self._clock()
        stack = self._stack
        if stack:
            stack.pop()
        elapsed = end - frame[1]
        if elapsed < 0.0:
            elapsed = 0.0
        self_s = elapsed - frame[2]
        if self_s < 0.0:
            self_s = 0.0
        kind = frame[0]
        stat = self.kinds.get(kind)
        if stat is None:
            stat = self.kinds[kind] = KindStat(kind)
        stat.count += 1
        stat.self_seconds += self_s
        self.dispatched += 1
        self.self_seconds += self_s
        if stack:
            stack[-1][2] += elapsed

    # -- queries -----------------------------------------------------------

    def kind_stats(self) -> List[KindStat]:
        """All kinds, hottest (most self-time) first."""
        return sorted(self.kinds.values(),
                      key=lambda stat: (-stat.self_seconds, stat.kind))

    @property
    def coalescable_ratio(self) -> float:
        """Fraction of dispatched events sharing a timestamp with their
        predecessor — the same-timestamp batching headroom."""
        return self.coalescable / self.dispatched if self.dispatched \
            else 0.0

    def _lag_percentile(self, p: float) -> Optional[float]:
        if not self._lags:
            return None
        ordered = sorted(self._lags)
        rank = max(1, int(-(-p * len(ordered) // 100)))  # ceil
        return ordered[rank - 1]

    def report(self) -> Dict[str, Any]:
        """The machine-readable dispatch section (bundle schema 2 /
        attribution reports)."""
        total = self.self_seconds
        kinds: Dict[str, Any] = {}
        for stat in self.kind_stats():
            entry = stat.to_dict()
            entry["share"] = stat.self_seconds / total if total else 0.0
            kinds[stat.kind] = entry
        return {
            "enabled": self.enabled,
            "dispatched": self.dispatched,
            "self_seconds": self.self_seconds,
            "kinds": kinds,
            "coalescable": self.coalescable,
            "coalescable_ratio": self.coalescable_ratio,
            "cancelled_popped": self.cancelled_popped,
            "wakeups": self.wakeups,
            "polls": self.polls,
            "lag": {
                "late": self.late,
                "sum_s": self.lag_sum,
                "max_s": self.lag_max,
                "p50_s": self._lag_percentile(50),
                "p99_s": self._lag_percentile(99),
                "window": len(self._lags),
            },
            "heap": {"max_depth": self.max_heap_depth},
        }

    def render_top(self, limit: int = 10) -> str:
        """A ``top``-style per-kind table, most self-time first.
        ``limit=0`` shows every kind."""
        stats = self.kind_stats()
        if limit > 0:
            stats = stats[:limit]
        if not stats:
            return ("no dispatch accounting recorded "
                    "(accounting %s)" % ("on" if self.enabled else "off"))
        total = self.self_seconds or 1.0
        lines = ["%-44s %10s %12s %8s %12s"
                 % ("event kind", "count", "self(s)", "self%",
                    "per-call")]
        for stat in stats:
            lines.append("%-44s %10d %12.6f %7.1f%% %12.9f"
                         % (stat.kind, stat.count, stat.self_seconds,
                            100.0 * stat.self_seconds / total,
                            stat.per_call))
        lines.append(
            "dispatched %d event(s), %.6fs self; coalescable %d "
            "(%.1f%%), cancelled churn %d, wakeups %d / polls %d, "
            "late %d (max lag %.6fs), peak heap %d"
            % (self.dispatched, self.self_seconds, self.coalescable,
               100.0 * self.coalescable_ratio, self.cancelled_popped,
               self.wakeups, self.polls,
               self.late, self.lag_max, self.max_heap_depth))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "DispatchAccounting(%s, %d kinds, %d dispatched)" % (
            "on" if self.enabled else "off", len(self.kinds),
            self.dispatched)


class Signal:
    """One-shot wakeup primitive.

    A :class:`Process` can ``yield`` a signal to suspend until someone
    calls :meth:`fire`.  The value passed to ``fire`` becomes the result
    of the ``yield`` expression inside the process.
    """

    __slots__ = ("sim", "_waiters", "fired", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiters: list = []
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        """Wake every process waiting on this signal (idempotent).
        Waiters resume in the order they started waiting: each gets a
        fresh zero-delay event, and the heap breaks timestamp ties by
        schedule sequence."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.schedule(0.0, proc._resume, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self.fired:
            self.sim.schedule(0.0, proc._resume, self.value)
        else:
            self._waiters.append(proc)


class Process:
    """A generator-based coroutine running in simulated time.

    The generator may yield:

    * a number — sleep that many simulated seconds,
    * a :class:`Signal` — suspend until it fires,
    * another :class:`Process` — suspend until that process finishes,
    * ``None`` — yield the floor (resume on the next event tick).

    When the generator returns, :attr:`done` becomes ``True`` and the
    completion signal fires with the generator's return value.
    """

    def __init__(self, sim: "Simulator",
                 gen: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.completion = Signal(sim)
        self._pending_event: Optional[Event] = None

    def start(self) -> "Process":
        """Schedule the first step of the generator at the current time."""
        self.sim.schedule(0.0, self._resume, None)
        return self

    def interrupt(self) -> None:
        """Stop the process; its generator is closed, completion fires."""
        if self.done:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self.gen.close()
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.completion.fire(result)

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._pending_event = None
        try:
            target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if target is None:
            self._pending_event = self.sim.schedule(0.0, self._resume, None)
        elif isinstance(target, (int, float)):
            self._pending_event = self.sim.schedule(
                float(target), self._resume, None)
        elif isinstance(target, Signal):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target.completion._add_waiter(self)
        else:
            raise SimulationError(
                "process %r yielded unsupported value %r"
                % (self.name, target))

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return "Process(%s, %s)" % (self.name, state)


class Simulator:
    """Deterministic discrete-event loop with a floating-point clock.

    The heap holds ``(time, seq, event)`` tuples so sift comparisons
    stay in C.  Entries can go *dead* without being popped: a cancelled
    event, or the stale entry left behind by an earlier-bound
    :meth:`Event.reschedule_at`.  Dead entries are skipped (and
    counted) when they surface; when they outnumber live entries the
    heap is compacted in place so a cancel-heavy workload can't bloat
    the backlog.  A live-entry counter keeps :attr:`pending` O(1) — it
    is sampled into gauges every 0.25s of sim time by the recurring
    series sampler, which used to make it an O(n) scan on the hot path.
    """

    COMPACT_MIN = 64  # never bother compacting tiny heaps

    def __init__(self):
        self._heap: list = []
        self._seq = 0
        self.now = 0.0
        self._running = False
        self._processed = 0
        self._live = 0   # not-cancelled events still queued
        self._dead = 0   # cancelled + stale entries awaiting discard
        self.compactions = 0
        # optional repro.telemetry Profiler (duck-typed to avoid a
        # sim->telemetry dependency); when set and enabled, every event
        # callback runs inside a "sim.event.dispatch" region — the root
        # of the framework's flamegraph
        self.profiler = None
        # dispatch accounting: always present, off by default — the
        # flight deck enables it to attribute dispatch time to event
        # kinds (see DispatchAccounting)
        self.accounting = DispatchAccounting()

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule %.9fs in the past" % delay)
        when = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(self, when, seq, callback, args)
        heapq.heappush(self._heap, (when, seq, event))
        self._live += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event.cancel()

    def wakeup(self, callback: Callable[..., Any], *args: Any) -> Wakeup:
        """Create a re-armable :class:`Wakeup` around ``callback``."""
        return Wakeup(self, callback, *args)

    def process(self, gen: Generator[Any, Any, Any],
                name: str = "") -> Process:
        """Wrap a generator into a :class:`Process` and start it."""
        return Process(self, gen, name).start()

    def signal(self) -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self)

    # -- heap hygiene ------------------------------------------------------

    def _note_dead(self) -> None:
        """One more heap entry went dead (cancel or stale reschedule);
        compact when the dead outnumber the live."""
        self._dead += 1
        if self._dead * 2 > len(self._heap) and \
                len(self._heap) >= self.COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap in place, dropping dead entries.

        Cancelled events swept here count into the always-on
        ``cancelled_popped`` churn counter exactly as if the loop had
        popped them.  Deferred entries (target time moved later) are
        re-keyed at their target so they stop surfacing early.
        """
        heap = self._heap
        live: list = []
        swept_cancelled = 0
        for entry in heap:
            event = entry[2]
            if event.cancelled:
                swept_cancelled += 1
                continue
            if event.fired or entry[1] != event.seq:
                continue  # stale duplicate from an earlier reschedule
            if event.time > entry[0]:
                event._key_time = event.time
                live.append((event.time, entry[1], event))
            else:
                live.append(entry)
        heap[:] = live
        heapq.heapify(heap)
        self._dead = 0
        self.compactions += 1
        self.accounting.cancelled_popped += swept_cancelled

    def _surface(self) -> Optional[tuple]:
        """Discard dead heap heads and lazily re-key deferred ones;
        return the live head entry (still queued) or None."""
        heap = self._heap
        acct = self.accounting
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                acct.cancelled_popped += 1
                continue
            if event.fired or entry[1] != event.seq:
                heapq.heappop(heap)  # stale reschedule leftover
                self._dead -= 1
                continue
            if event.time > entry[0]:
                # deferred: re-key at the target time, keep the seq
                heapq.heappop(heap)
                event._key_time = event.time
                heapq.heappush(heap, (event.time, event.seq, event))
                continue
            return entry
        return None

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Runs until the heap empties, the clock would pass ``until``, or
        ``max_events`` callbacks have executed.  Returns the number of
        callbacks executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        acct = self.accounting
        surface = self._surface
        pop = heapq.heappop
        # the dispatch region is a per-name singleton on the profiler;
        # resolve it once per run instead of per event (re-resolved if
        # a callback swaps self.profiler mid-run)
        region = None
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                entry = surface()
                if entry is None:
                    break
                event = entry[2]
                if until is not None and entry[0] > until:
                    # nested step() pumping (e.g. a recovery action
                    # blocking on an RPC reply) may already have moved
                    # the clock past the horizon; never rewind it
                    self.now = max(self.now, until)
                    break
                pop(heap)
                event.fired = True
                self._live -= 1
                if acct.enabled:
                    frame = acct.begin(event, self.now, len(heap) + 1)
                    self.now = entry[0]
                    profiler = self.profiler
                    if profiler is not None and profiler.enabled:
                        # fused path: accounting already stamped the
                        # start (frame[1]); share one clock pair
                        # between the kind stats and the
                        # sim.event.dispatch region instead of four
                        # reads per event
                        pframe = profiler.open_frame(
                            "sim.event.dispatch", frame[1])
                        try:
                            event.callback(*event.args)
                        finally:
                            end = acct._clock()
                            profiler.close_frame(pframe, end)
                            acct.finish(frame, end)
                    else:
                        event.callback(*event.args)
                        acct.finish(frame)
                else:
                    self.now = entry[0]
                    profiler = self.profiler
                    if profiler is not None and profiler.enabled:
                        if region is None or region.profiler is not profiler:
                            region = profiler.profile("sim.event.dispatch")
                        with region:
                            event.callback(*event.args)
                    else:
                        event.callback(*event.args)
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
            if not heap and until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            self._processed += executed
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event; return False when idle.

        Unlike :meth:`run`, ``step`` is safe to call from *inside* a
        running simulation: blocking-style code (``PendingReply.
        result``, recovery actions reacting to fault events) pumps the
        shared heap one event at a time until its condition holds.
        Events pop in time order, so nested pumping never reorders or
        rewinds the clock — it only advances it early.
        """
        entry = self._surface()
        if entry is None:
            return False
        heapq.heappop(self._heap)
        event = entry[2]
        event.fired = True
        self._live -= 1
        acct = self.accounting
        if acct.enabled:
            frame = acct.begin(event, self.now, len(self._heap) + 1)
            self.now = entry[0]
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                # same fused clock pair as the run() loop
                pframe = profiler.open_frame("sim.event.dispatch",
                                             frame[1])
                try:
                    event.callback(*event.args)
                finally:
                    end = acct._clock()
                    profiler.close_frame(pframe, end)
                    acct.finish(frame, end)
            else:
                event.callback(*event.args)
                acct.finish(frame)
        else:
            self.now = entry[0]
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                with profiler.profile("sim.event.dispatch"):
                    event.callback(*event.args)
            else:
                event.callback(*event.args)
        self._processed += 1
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when the heap is empty."""
        entry = self._surface()
        return entry[0] if entry is not None else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1) — a
        live counter, not a heap scan)."""
        return self._live

    @property
    def heap_depth(self) -> int:
        """Raw heap length, cancelled entries included — the backlog
        the dispatcher actually wades through."""
        return len(self._heap)

    @property
    def scheduled(self) -> int:
        """Total events ever scheduled on this simulator."""
        return self._seq

    @property
    def processed(self) -> int:
        """Total callbacks executed over the simulator's lifetime."""
        return self._processed

    def run_all(self, batches: Iterable[float] = ()) -> int:
        """Convenience: run to exhaustion (optionally in until= batches)."""
        total = 0
        for until in batches:
            total += self.run(until=until)
        total += self.run()
        return total

    def __repr__(self) -> str:
        return "Simulator(now=%.9f, pending=%d)" % (self.now, self.pending)
