"""Heap-driven discrete-event simulator with generator processes."""

import functools
import heapq
import time
from collections import deque
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for illegal simulator operations (e.g. scheduling in
    the past)."""


class Event:
    """A callback scheduled at a simulated time.

    Events are created through :meth:`Simulator.schedule` and may be
    cancelled with :meth:`Simulator.cancel` (or :meth:`cancel`) any time
    before they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop skips (and counts) it when it
        pops."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return "Event(t=%.9f, seq=%d, %s, %s)" % (
            self.time, self.seq, state, classify_callback(self.callback))


def classify_callback(callback: Callable[..., Any]) -> str:
    """The *kind* of an event: ``module.Qualname`` of the callback's
    owner, with the package prefix dropped — a link delivery event
    classifies as ``netem.link.Link._deliver``, a Click timer as
    ``click.element.Element._on_timer``, and so on.  Partials are
    unwrapped to the function they carry."""
    while isinstance(callback, functools.partial):
        callback = callback.func
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", "") or ""
    name = (getattr(func, "__qualname__", None)
            or getattr(func, "__name__", None)
            or type(callback).__name__)
    if module.startswith("repro."):
        module = module[len("repro."):]
    elif module in ("builtins", "__main__"):
        module = ""
    return "%s.%s" % (module, name) if module else name


class KindStat:
    """Dispatch totals for one event kind (callback owner)."""

    __slots__ = ("kind", "count", "self_seconds")

    def __init__(self, kind: str):
        self.kind = kind
        self.count = 0
        self.self_seconds = 0.0

    @property
    def per_call(self) -> float:
        """Mean self seconds per dispatch of this kind."""
        return self.self_seconds / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "self_s": self.self_seconds,
                "per_call_s": self.per_call}

    def __repr__(self) -> str:
        return "KindStat(%s, count=%d, self=%.6fs)" % (
            self.kind, self.count, self.self_seconds)


class DispatchAccounting:
    """Event-loop introspection: who the dispatcher works for.

    The profiler answers *how much* time ``sim.event.dispatch`` burns;
    this layer answers *on what*.  When enabled, every dispatched event
    is classified by its callback owner (see :func:`classify_callback`)
    and charged wall-clock self-time — nested dispatches (``step``
    pumping inside a callback) are subtracted from the outer event, so
    kind self-times sum to the loop's inclusive dispatch time without
    double counting.  Alongside the per-kind table it tracks:

    * *coalescability* — events that fire at exactly the timestamp of
      the event dispatched before them.  This is the packet-train
      headroom number: a batch dispatcher could hand all such events to
      their callbacks without re-entering the heap.
    * *scheduling lag* — how late an event fired relative to its
      scheduled time.  Zero today (pops are time-ordered and the clock
      only advances); the histogram is the tripwire for a batching
      dispatcher that would run events at a clock already past their
      timestamp.
    * *cancelled churn* — cancelled events the loop popped and threw
      away (counted even while accounting is disabled: the pops happen
      regardless and the counter costs nothing on the live path).
    * *peak heap depth* — the deepest backlog observed while enabled.

    Off by default.  The disabled dispatch path pays a single attribute
    check, the same contract (and the same <5% benchmark guard) as the
    profiler.
    """

    LAG_WINDOW = 2048  # positive lags kept for percentile queries

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.perf_counter
        self.enabled = False
        self.kinds: Dict[str, KindStat] = {}
        self._kind_cache: Dict[Any, str] = {}
        self._stack: List[list] = []
        self.dispatched = 0
        self.self_seconds = 0.0
        self.coalescable = 0
        self._last_time: Optional[float] = None
        self.cancelled_popped = 0
        self.late = 0
        self.lag_sum = 0.0
        self.lag_max = 0.0
        self._lags: deque = deque(maxlen=self.LAG_WINDOW)
        self.max_heap_depth = 0

    # -- control -----------------------------------------------------------

    def enable(self) -> "DispatchAccounting":
        self.enabled = True
        return self

    def disable(self) -> "DispatchAccounting":
        self.enabled = False
        self._stack = []
        return self

    def reset(self) -> None:
        """Drop every recorded number (keeps the enabled state and the
        kind cache — classifications do not go stale)."""
        self._stack = []
        self.kinds = {}
        self.dispatched = 0
        self.self_seconds = 0.0
        self.coalescable = 0
        self._last_time = None
        self.cancelled_popped = 0
        self.late = 0
        self.lag_sum = 0.0
        self.lag_max = 0.0
        self._lags.clear()
        self.max_heap_depth = 0

    # -- recording (called by the Simulator loop) --------------------------

    def begin(self, event: Event, now: float,
              heap_depth: int = 0) -> list:
        """Pre-dispatch bookkeeping; returns the frame for
        :meth:`finish`.  ``now`` is the clock *before* it advances to
        the event's timestamp; ``heap_depth`` is the backlog left
        behind the popped event (sampled here so the disabled
        ``schedule`` path stays untouched)."""
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth
        time_stamp = event.time
        if time_stamp == self._last_time:
            self.coalescable += 1
        self._last_time = time_stamp
        lag = now - time_stamp
        if lag > 0.0:
            self.late += 1
            self.lag_sum += lag
            if lag > self.lag_max:
                self.lag_max = lag
            self._lags.append(lag)
        callback = event.callback
        func = getattr(callback, "__func__", callback)
        try:
            kind = self._kind_cache.get(func)
            if kind is None:
                kind = classify_callback(callback)
                self._kind_cache[func] = kind
        except TypeError:  # unhashable callable: classify uncached
            kind = classify_callback(callback)
        frame = [kind, self._clock(), 0.0]
        self._stack.append(frame)
        return frame

    def finish(self, frame: list) -> None:
        end = self._clock()
        stack = self._stack
        if stack:
            stack.pop()
        elapsed = end - frame[1]
        if elapsed < 0.0:
            elapsed = 0.0
        self_s = elapsed - frame[2]
        if self_s < 0.0:
            self_s = 0.0
        kind = frame[0]
        stat = self.kinds.get(kind)
        if stat is None:
            stat = self.kinds[kind] = KindStat(kind)
        stat.count += 1
        stat.self_seconds += self_s
        self.dispatched += 1
        self.self_seconds += self_s
        if stack:
            stack[-1][2] += elapsed

    # -- queries -----------------------------------------------------------

    def kind_stats(self) -> List[KindStat]:
        """All kinds, hottest (most self-time) first."""
        return sorted(self.kinds.values(),
                      key=lambda stat: (-stat.self_seconds, stat.kind))

    @property
    def coalescable_ratio(self) -> float:
        """Fraction of dispatched events sharing a timestamp with their
        predecessor — the same-timestamp batching headroom."""
        return self.coalescable / self.dispatched if self.dispatched \
            else 0.0

    def _lag_percentile(self, p: float) -> Optional[float]:
        if not self._lags:
            return None
        ordered = sorted(self._lags)
        rank = max(1, int(-(-p * len(ordered) // 100)))  # ceil
        return ordered[rank - 1]

    def report(self) -> Dict[str, Any]:
        """The machine-readable dispatch section (bundle schema 2 /
        attribution reports)."""
        total = self.self_seconds
        kinds: Dict[str, Any] = {}
        for stat in self.kind_stats():
            entry = stat.to_dict()
            entry["share"] = stat.self_seconds / total if total else 0.0
            kinds[stat.kind] = entry
        return {
            "enabled": self.enabled,
            "dispatched": self.dispatched,
            "self_seconds": self.self_seconds,
            "kinds": kinds,
            "coalescable": self.coalescable,
            "coalescable_ratio": self.coalescable_ratio,
            "cancelled_popped": self.cancelled_popped,
            "lag": {
                "late": self.late,
                "sum_s": self.lag_sum,
                "max_s": self.lag_max,
                "p50_s": self._lag_percentile(50),
                "p99_s": self._lag_percentile(99),
                "window": len(self._lags),
            },
            "heap": {"max_depth": self.max_heap_depth},
        }

    def render_top(self, limit: int = 10) -> str:
        """A ``top``-style per-kind table, most self-time first.
        ``limit=0`` shows every kind."""
        stats = self.kind_stats()
        if limit > 0:
            stats = stats[:limit]
        if not stats:
            return ("no dispatch accounting recorded "
                    "(accounting %s)" % ("on" if self.enabled else "off"))
        total = self.self_seconds or 1.0
        lines = ["%-44s %10s %12s %8s %12s"
                 % ("event kind", "count", "self(s)", "self%",
                    "per-call")]
        for stat in stats:
            lines.append("%-44s %10d %12.6f %7.1f%% %12.9f"
                         % (stat.kind, stat.count, stat.self_seconds,
                            100.0 * stat.self_seconds / total,
                            stat.per_call))
        lines.append(
            "dispatched %d event(s), %.6fs self; coalescable %d "
            "(%.1f%%), cancelled churn %d, late %d (max lag %.6fs), "
            "peak heap %d"
            % (self.dispatched, self.self_seconds, self.coalescable,
               100.0 * self.coalescable_ratio, self.cancelled_popped,
               self.late, self.lag_max, self.max_heap_depth))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "DispatchAccounting(%s, %d kinds, %d dispatched)" % (
            "on" if self.enabled else "off", len(self.kinds),
            self.dispatched)


class Signal:
    """One-shot wakeup primitive.

    A :class:`Process` can ``yield`` a signal to suspend until someone
    calls :meth:`fire`.  The value passed to ``fire`` becomes the result
    of the ``yield`` expression inside the process.
    """

    __slots__ = ("sim", "_waiters", "fired", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiters: list = []
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        """Wake every process waiting on this signal (idempotent).
        Waiters resume in the order they started waiting: each gets a
        fresh zero-delay event, and the heap breaks timestamp ties by
        schedule sequence."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.schedule(0.0, proc._resume, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self.fired:
            self.sim.schedule(0.0, proc._resume, self.value)
        else:
            self._waiters.append(proc)


class Process:
    """A generator-based coroutine running in simulated time.

    The generator may yield:

    * a number — sleep that many simulated seconds,
    * a :class:`Signal` — suspend until it fires,
    * another :class:`Process` — suspend until that process finishes,
    * ``None`` — yield the floor (resume on the next event tick).

    When the generator returns, :attr:`done` becomes ``True`` and the
    completion signal fires with the generator's return value.
    """

    def __init__(self, sim: "Simulator",
                 gen: Generator[Any, Any, Any], name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.completion = Signal(sim)
        self._pending_event: Optional[Event] = None

    def start(self) -> "Process":
        """Schedule the first step of the generator at the current time."""
        self.sim.schedule(0.0, self._resume, None)
        return self

    def interrupt(self) -> None:
        """Stop the process; its generator is closed, completion fires."""
        if self.done:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self.gen.close()
        self._finish(None)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.completion.fire(result)

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._pending_event = None
        try:
            target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if target is None:
            self._pending_event = self.sim.schedule(0.0, self._resume, None)
        elif isinstance(target, (int, float)):
            self._pending_event = self.sim.schedule(
                float(target), self._resume, None)
        elif isinstance(target, Signal):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target.completion._add_waiter(self)
        else:
            raise SimulationError(
                "process %r yielded unsupported value %r"
                % (self.name, target))

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return "Process(%s, %s)" % (self.name, state)


class Simulator:
    """Deterministic discrete-event loop with a floating-point clock."""

    def __init__(self):
        self._heap: list = []
        self._seq = 0
        self.now = 0.0
        self._running = False
        self._processed = 0
        # optional repro.telemetry Profiler (duck-typed to avoid a
        # sim->telemetry dependency); when set and enabled, every event
        # callback runs inside a "sim.event.dispatch" region — the root
        # of the framework's flamegraph
        self.profiler = None
        # dispatch accounting: always present, off by default — the
        # flight deck enables it to attribute dispatch time to event
        # kinds (see DispatchAccounting)
        self.accounting = DispatchAccounting()

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError("cannot schedule %.9fs in the past" % delay)
        event = Event(self.now + delay, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event.cancel()

    def process(self, gen: Generator[Any, Any, Any],
                name: str = "") -> Process:
        """Wrap a generator into a :class:`Process` and start it."""
        return Process(self, gen, name).start()

    def signal(self) -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self)

    # -- running ---------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Runs until the heap empties, the clock would pass ``until``, or
        ``max_events`` callbacks have executed.  Returns the number of
        callbacks executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        acct = self.accounting
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    acct.cancelled_popped += 1
                    continue
                if until is not None and event.time > until:
                    # nested step() pumping (e.g. a recovery action
                    # blocking on an RPC reply) may already have moved
                    # the clock past the horizon; never rewind it
                    self.now = max(self.now, until)
                    break
                heapq.heappop(self._heap)
                if acct.enabled:
                    frame = acct.begin(event, self.now,
                                       len(self._heap) + 1)
                    self.now = event.time
                    profiler = self.profiler
                    if profiler is not None and profiler.enabled:
                        with profiler.profile("sim.event.dispatch"):
                            event.callback(*event.args)
                    else:
                        event.callback(*event.args)
                    acct.finish(frame)
                else:
                    self.now = event.time
                    profiler = self.profiler
                    if profiler is not None and profiler.enabled:
                        with profiler.profile("sim.event.dispatch"):
                            event.callback(*event.args)
                    else:
                        event.callback(*event.args)
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
            self._processed += executed
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event; return False when idle.

        Unlike :meth:`run`, ``step`` is safe to call from *inside* a
        running simulation: blocking-style code (``PendingReply.
        result``, recovery actions reacting to fault events) pumps the
        shared heap one event at a time until its condition holds.
        Events pop in time order, so nested pumping never reorders or
        rewinds the clock — it only advances it early.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self.accounting.cancelled_popped += 1
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        acct = self.accounting
        if acct.enabled:
            frame = acct.begin(event, self.now, len(self._heap) + 1)
            self.now = event.time
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                with profiler.profile("sim.event.dispatch"):
                    event.callback(*event.args)
            else:
                event.callback(*event.args)
            acct.finish(frame)
        else:
            self.now = event.time
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                with profiler.profile("sim.event.dispatch"):
                    event.callback(*event.args)
            else:
                event.callback(*event.args)
        self._processed += 1
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self.accounting.cancelled_popped += 1
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def heap_depth(self) -> int:
        """Raw heap length, cancelled entries included — the backlog
        the dispatcher actually wades through."""
        return len(self._heap)

    @property
    def scheduled(self) -> int:
        """Total events ever scheduled on this simulator."""
        return self._seq

    @property
    def processed(self) -> int:
        """Total callbacks executed over the simulator's lifetime."""
        return self._processed

    def run_all(self, batches: Iterable[float] = ()) -> int:
        """Convenience: run to exhaustion (optionally in until= batches)."""
        total = 0
        for until in batches:
            total += self.run(until=until)
        total += self.run()
        return total

    def __repr__(self) -> str:
        return "Simulator(now=%.9f, pending=%d)" % (self.now, self.pending)
