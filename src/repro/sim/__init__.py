"""Discrete-event simulation core.

Every substrate in this reproduction (the network emulator, the OpenFlow
channel, the NETCONF transport, Click packet scheduling) runs on this
event loop instead of kernel time.  That keeps experiments deterministic
and lets a laptop-scale run emulate hundreds of nodes, which is exactly
the property the paper inherits from Mininet.

The API is intentionally small:

* :class:`Simulator` — heap-driven event loop with a virtual clock.
* :class:`Event` — a scheduled callback, cancellable.
* :class:`Process` — a generator-based coroutine; ``yield <seconds>``
  suspends it for simulated time, ``yield wait_event`` suspends it until
  the event is triggered.
* :class:`Signal` — a one-shot wakeup primitive processes can wait on.
* :class:`Wakeup` — a re-armable timer for recurring consumers
  (event-driven pull drivers sleep/wake through one of these).
"""

from repro.sim.core import (DispatchAccounting, Event, KindStat, Process,
                            Signal, SimulationError, Simulator, Wakeup,
                            classify_callback)

__all__ = [
    "DispatchAccounting",
    "Event",
    "KindStat",
    "Process",
    "Signal",
    "SimulationError",
    "Simulator",
    "Wakeup",
    "classify_callback",
]
