"""Declarative chaos scenarios.

A scenario is a named, seeded fault schedule::

    {
      "name": "crash-and-flap",
      "seed": 42,
      "faults": [
        {"kind": "vnf_crash", "at": 1.0},
        {"kind": "link_down", "at": 2.0, "duration": 3.0,
         "target": "s1-eth2<->s2-eth1"},
        {"kind": "netconf_blackhole", "at": 4.0, "duration": 2.0,
         "target": "nfpd1"}
      ]
    }

``target`` is optional — omitted (or ``"random"``) targets are picked
by the engine's seeded RNG among the fault's sorted candidates, so the
same seed always yields the same schedule.
"""

import json
from typing import Any, Dict, List, Union

from repro.chaos.faults import FAULT_KINDS, Fault, FaultError


class ChaosScenario:
    """A named list of faults plus the seed that resolves them."""

    def __init__(self, name: str, faults: List[Fault], seed: int = 0):
        self.name = name
        self.seed = seed
        self.faults = sorted(faults, key=lambda fault: fault.at)

    @property
    def duration(self) -> float:
        """When the last scheduled action (inject or heal) fires."""
        end = 0.0
        for fault in self.faults:
            end = max(end, fault.at + (fault.duration or 0.0))
        return end

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosScenario":
        if "faults" not in data:
            raise FaultError("scenario needs a 'faults' list")
        faults = []
        for index, entry in enumerate(data["faults"]):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            fault_cls = FAULT_KINDS.get(kind)
            if fault_cls is None:
                raise FaultError(
                    "fault #%d: unknown kind %r (have: %s)"
                    % (index, kind, ", ".join(sorted(FAULT_KINDS))))
            if "at" not in entry:
                raise FaultError("fault #%d (%s): missing 'at'"
                                 % (index, kind))
            target = entry.pop("target", None)
            if target == "random":
                target = None
            try:
                faults.append(fault_cls(entry.pop("at"), target=target,
                                        **entry))
            except TypeError as exc:
                raise FaultError("fault #%d (%s): %s" % (index, kind, exc))
        return cls(data.get("name", "chaos"), faults,
                   seed=int(data.get("seed", 0)))

    @classmethod
    def load(cls, source: Union[str, Dict[str, Any]]) -> "ChaosScenario":
        """Parse a scenario from a dict, a JSON string, or a file path."""
        if isinstance(source, dict):
            return cls.from_dict(source)
        text = source
        if not source.lstrip().startswith("{"):
            with open(source) as handle:
                text = handle.read()
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed,
                "faults": [fault.describe() for fault in self.faults]}

    def __repr__(self) -> str:
        return "ChaosScenario(%s, %d faults, seed=%d)" % (
            self.name, len(self.faults), self.seed)
