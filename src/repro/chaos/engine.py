"""The chaos engine: runs a scenario against a live ESCAPE instance.

``arm()`` schedules every fault of the scenario on the simulator clock
(offsets are relative to the arming time); injections and heals then
fire as the simulation advances — interleaved with the recovery they
provoke.  Target resolution uses one ``random.Random(seed)`` consumed
in schedule order, so a seeded scenario produces an identical
``injections`` ledger on every run — the property chaos regression
tests assert on.
"""

import random
from typing import Any, Dict, List, Optional

from repro.chaos.faults import Fault, FaultError
from repro.chaos.scenario import ChaosScenario
from repro.telemetry import current as current_telemetry


class ChaosEngine:
    """Binds one scenario to one ESCAPE instance."""

    def __init__(self, escape, scenario: ChaosScenario):
        self.escape = escape
        self.sim = escape.sim
        self.scenario = scenario
        self.rng = random.Random(scenario.seed)
        self.armed = False
        # the deterministic ledger: one dict per attempted injection
        self.injections: List[Dict[str, Any]] = []
        self.active: List[Dict[str, Any]] = []  # injected, not healed
        self.telemetry = current_telemetry()
        metrics = self.telemetry.metrics
        self._m_injected = metrics.counter(
            "chaos.engine.faults_injected", "faults injected")
        self._m_healed = metrics.counter(
            "chaos.engine.faults_healed", "faults healed (reverted)")
        self._m_skipped = metrics.counter(
            "chaos.engine.faults_skipped",
            "faults with no resolvable target at fire time")

    def arm(self) -> "ChaosEngine":
        """Schedule the whole scenario starting now; returns self."""
        if self.armed:
            raise FaultError("scenario %r is already armed"
                             % self.scenario.name)
        self.armed = True
        for fault in self.scenario.faults:
            self.sim.schedule(fault.at, self._fire, fault)
        self.telemetry.events.info(
            "chaos.engine", "chaos.armed",
            "%s: %d faults, seed %d" % (self.scenario.name,
                                        len(self.scenario.faults),
                                        self.scenario.seed),
            scenario=self.scenario.name, seed=self.scenario.seed,
            faults=len(self.scenario.faults))
        return self

    # -- firing -------------------------------------------------------------

    def _resolve_target(self, fault: Fault) -> Optional[str]:
        if fault.target is not None:
            return fault.target
        candidates = fault.candidates(self.escape)
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _fire(self, fault: Fault) -> None:
        target = self._resolve_target(fault)
        record = {"time": self.sim.now, "kind": fault.kind,
                  "target": target}
        if target is None:
            record["skipped"] = "no candidates"
            self.injections.append(record)
            self._m_skipped.inc()
            self.telemetry.events.warn(
                "chaos.engine", "chaos.skipped",
                "%s: no target available" % fault.kind, kind=fault.kind)
            return
        try:
            state = fault.inject(self.escape, target)
        except Exception as exc:
            record["skipped"] = str(exc)
            self.injections.append(record)
            self._m_skipped.inc()
            self.telemetry.events.warn(
                "chaos.engine", "chaos.skipped",
                "%s on %s failed: %s" % (fault.kind, target, exc),
                kind=fault.kind, target=target)
            return
        self.injections.append(record)
        self._m_injected.inc()
        entry = {"fault": fault, "target": target, "state": state,
                 "kind": fault.kind, "since": self.sim.now}
        self.active.append(entry)
        self.telemetry.events.warn(
            "chaos.engine", "chaos.inject",
            "%s on %s" % (fault.kind, target),
            kind=fault.kind, target=target,
            duration=fault.duration if fault.duration is not None else "")
        if fault.duration is not None:
            self.sim.schedule(fault.duration, self._heal, entry)

    def _heal(self, entry: Dict[str, Any]) -> None:
        if entry not in self.active:
            return
        self.active.remove(entry)
        fault: Fault = entry["fault"]
        try:
            fault.heal(self.escape, entry["target"], entry["state"])
        except Exception as exc:
            self.telemetry.events.error(
                "chaos.engine", "chaos.heal_failed",
                "%s on %s: %s" % (fault.kind, entry["target"], exc),
                kind=fault.kind, target=entry["target"])
            return
        self._m_healed.inc()
        self.telemetry.events.info(
            "chaos.engine", "chaos.heal",
            "%s on %s reverted" % (fault.kind, entry["target"]),
            kind=fault.kind, target=entry["target"])

    def heal_all(self) -> int:
        """Immediately revert every still-active fault; returns count."""
        count = 0
        for entry in list(self.active):
            self._heal(entry)
            count += 1
        return count

    def signature(self) -> List[tuple]:
        """Hashable injection summary for determinism assertions."""
        return [(round(record["time"], 9), record["kind"],
                 record["target"]) for record in self.injections]

    def __repr__(self) -> str:
        return "ChaosEngine(%s, %d injected, %d active)" % (
            self.scenario.name, len(self.injections), len(self.active))
